//! Typed workload specifications: models, datasets and estimator clusters.
//!
//! The scenario API describes *what the honest workers compute* as data, not
//! code: a [`ModelSpec`] names a model architecture, a [`DataSpec`] names a
//! synthetic dataset, and an [`EstimatorSpec`] combines them into the full
//! worker-side workload. [`EstimatorSpec::build`] is the factory the
//! distributed runtime calls: it deterministically (from a seed) generates
//! the data, shards it across the honest workers and returns one
//! [`GradientEstimator`] per worker plus the probe/metrics hooks as a
//! [`Workload`]. Everything is serde round-trippable so a scenario file can
//! pin the whole experiment.

use krum_data::{generators, partition, BatchSampler, Dataset};
use krum_tensor::{InitStrategy, Vector};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

use crate::error::ModelError;
use crate::estimator::{BatchGradientEstimator, GaussianEstimator, GradientEstimator};
use crate::linear::{LinearRegression, LogisticRegression};
use crate::mlp::{Mlp, MlpBuilder};
use crate::model::{accuracy, Model};
use crate::quadratic::QuadraticCost;
use crate::softmax::SoftmaxRegression;

/// Held-out accuracy probe produced by a workload: maps a parameter vector to
/// test-set accuracy (`None` when the model/labels make accuracy undefined).
pub type AccuracyFn = Box<dyn Fn(&Vector) -> Option<f64> + Send + Sync>;

/// A typed, serialisable specification of a model architecture.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum ModelSpec {
    /// Linear regression on `features` inputs (`d = features + 1`).
    Linear {
        /// Number of input features.
        features: usize,
    },
    /// Logistic regression on `features` inputs (`d = features + 1`).
    Logistic {
        /// Number of input features.
        features: usize,
    },
    /// Softmax regression over `classes` classes.
    Softmax {
        /// Number of input features.
        features: usize,
        /// Number of classes.
        classes: usize,
    },
    /// Multi-layer perceptron with the given hidden widths.
    Mlp {
        /// Number of input features.
        inputs: usize,
        /// Hidden-layer widths, in order.
        hidden: Vec<usize>,
        /// Number of output classes.
        classes: usize,
    },
}

/// One concrete model behind a [`ModelSpec`] — enum dispatch keeps the
/// builders monomorphic without requiring `Model` to be boxed.
enum BuiltModel {
    Linear(LinearRegression),
    Logistic(LogisticRegression),
    Softmax(SoftmaxRegression),
    Mlp(Mlp),
}

impl ModelSpec {
    fn build_model(&self) -> Result<BuiltModel, ModelError> {
        match self {
            Self::Linear { features } => Ok(BuiltModel::Linear(LinearRegression::new(*features))),
            Self::Logistic { features } => {
                Ok(BuiltModel::Logistic(LogisticRegression::new(*features)))
            }
            Self::Softmax { features, classes } => Ok(BuiltModel::Softmax(SoftmaxRegression::new(
                *features, *classes,
            )?)),
            Self::Mlp {
                inputs,
                hidden,
                classes,
            } => {
                let mut builder = MlpBuilder::new(*inputs, *classes);
                for &width in hidden {
                    builder.hidden_layer(width);
                }
                Ok(BuiltModel::Mlp(builder.build()?))
            }
        }
    }

    /// Parameter dimension `d` of the model.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError`] when the architecture itself is invalid (e.g.
    /// a zero-class softmax).
    pub fn dim(&self) -> Result<usize, ModelError> {
        Ok(match self.build_model()? {
            BuiltModel::Linear(m) => m.dim(),
            BuiltModel::Logistic(m) => m.dim(),
            BuiltModel::Softmax(m) => m.dim(),
            BuiltModel::Mlp(m) => m.dim(),
        })
    }

    /// Number of input features the model consumes.
    pub fn input_dim(&self) -> usize {
        match self {
            Self::Linear { features } | Self::Logistic { features } => *features,
            Self::Softmax { features, .. } => *features,
            Self::Mlp { inputs, .. } => *inputs,
        }
    }

    /// A mini-batch gradient estimator of this model over `sampler`.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError`] when the architecture is invalid.
    pub fn estimator(
        &self,
        sampler: BatchSampler,
    ) -> Result<Box<dyn GradientEstimator>, ModelError> {
        Ok(match self.build_model()? {
            BuiltModel::Linear(m) => Box::new(BatchGradientEstimator::new(m, sampler)?),
            BuiltModel::Logistic(m) => Box::new(BatchGradientEstimator::new(m, sampler)?),
            BuiltModel::Softmax(m) => Box::new(BatchGradientEstimator::new(m, sampler)?),
            BuiltModel::Mlp(m) => Box::new(BatchGradientEstimator::new(m, sampler)?),
        })
    }

    /// Samples initial parameters with `strategy` from a seeded RNG.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError`] when the architecture is invalid.
    pub fn init_params(&self, strategy: InitStrategy, seed: u64) -> Result<Vector, ModelError> {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        Ok(match self.build_model()? {
            BuiltModel::Linear(m) => m.init_parameters(strategy, &mut rng),
            BuiltModel::Logistic(m) => m.init_parameters(strategy, &mut rng),
            BuiltModel::Softmax(m) => m.init_parameters(strategy, &mut rng),
            BuiltModel::Mlp(m) => m.init_parameters(strategy, &mut rng),
        })
    }

    /// A held-out accuracy probe of this model over `test`.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError`] when the architecture is invalid.
    pub fn accuracy_probe(&self, test: Dataset) -> Result<AccuracyFn, ModelError> {
        let model = self.build_model()?;
        Ok(Box::new(move |params: &Vector| match &model {
            BuiltModel::Linear(m) => accuracy(m, params, &test).ok().flatten(),
            BuiltModel::Logistic(m) => accuracy(m, params, &test).ok().flatten(),
            BuiltModel::Softmax(m) => accuracy(m, params, &test).ok().flatten(),
            BuiltModel::Mlp(m) => accuracy(m, params, &test).ok().flatten(),
        }))
    }
}

/// A typed, serialisable specification of a synthetic dataset.
///
/// The feature dimension is supplied at build time (from the paired
/// [`ModelSpec`]) so the two cannot disagree.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum DataSpec {
    /// `generators::linear_regression`: a noisy linear teacher.
    LinearRegression {
        /// Number of samples to generate.
        samples: usize,
        /// Label noise standard deviation.
        noise: f64,
    },
    /// `generators::logistic_regression`: a logistic teacher.
    LogisticRegression {
        /// Number of samples to generate.
        samples: usize,
    },
    /// `generators::synthetic_digits`: the MNIST-like 10-class digit task on
    /// a `side × side` grid (the paired model must consume `side²` inputs).
    SyntheticDigits {
        /// Number of samples to generate.
        samples: usize,
        /// Pixel noise standard deviation.
        noise: f64,
    },
}

impl DataSpec {
    /// Generates the dataset for a model consuming `input_dim` features.
    fn build(&self, input_dim: usize, rng: &mut ChaCha8Rng) -> Result<Dataset, ModelError> {
        let data = match *self {
            Self::LinearRegression { samples, noise } => {
                generators::linear_regression(samples, input_dim, noise, rng).map(|(d, _, _)| d)
            }
            Self::LogisticRegression { samples } => {
                generators::logistic_regression(samples, input_dim, rng).map(|(d, _, _)| d)
            }
            Self::SyntheticDigits { samples, noise } => {
                let side = (input_dim as f64).sqrt().round() as usize;
                if side * side != input_dim {
                    return Err(ModelError::BadConfig(format!(
                        "synthetic-digits needs a square input dimension, got {input_dim}"
                    )));
                }
                generators::synthetic_digits(samples, side, noise, rng)
            }
        };
        data.map_err(|e| ModelError::BadConfig(format!("data generation failed: {e}")))
    }
}

/// A typed, serialisable specification of the honest workers' computation —
/// the factory behind `Scenario`'s propose phase.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum EstimatorSpec {
    /// The theory-facing workload: `G(x, ξ) = ∇Q(x) + N(0, σ²·I_d)` around an
    /// isotropic quadratic centred at the origin, realising exactly the
    /// `E‖G − g‖² = d·σ²` assumption of Proposition 4.2. The optimum is known
    /// (`x* = 0`), so scenarios can track `‖x_t − x*‖`.
    GaussianQuadratic {
        /// Model dimension `d`.
        dim: usize,
        /// Per-coordinate noise standard deviation σ.
        sigma: f64,
    },
    /// The realistic workload: a model trained on i.i.d. shards of a
    /// generated dataset, one mini-batch estimator per honest worker, with a
    /// held-out split for the accuracy probe.
    Synthetic {
        /// The model every worker trains.
        model: ModelSpec,
        /// The dataset generator.
        data: DataSpec,
        /// Mini-batch size per gradient estimate.
        batch: usize,
        /// Fraction of the dataset held out for the accuracy probe, in
        /// `[0, 1)`; `0` keeps everything for training and disables the
        /// probe.
        holdout: f64,
    },
}

/// Everything [`EstimatorSpec::build`] produces for the distributed runtime.
pub struct Workload {
    /// One gradient estimator per honest worker.
    pub estimators: Vec<Box<dyn GradientEstimator>>,
    /// Dedicated probe estimator serving metrics/adversary queries (loss and
    /// true gradient over the *full* training set), when the workload
    /// distinguishes one.
    pub probe: Option<Box<dyn GradientEstimator>>,
    /// Model dimension `d`.
    pub dim: usize,
    /// The analytic optimum `x*`, when the workload knows one.
    pub optimum: Option<Vector>,
    /// Held-out accuracy probe, when the workload carries labelled test data.
    pub accuracy: Option<AccuracyFn>,
}

impl EstimatorSpec {
    /// Model dimension `d` of the workload.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError`] when the underlying model spec is invalid.
    pub fn dim(&self) -> Result<usize, ModelError> {
        match self {
            Self::GaussianQuadratic { dim, .. } => Ok(*dim),
            Self::Synthetic { model, .. } => model.dim(),
        }
    }

    /// Validates the specification without building it.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::BadConfig`] for out-of-range parameters.
    pub fn validate(&self) -> Result<(), ModelError> {
        match self {
            Self::GaussianQuadratic { dim, sigma } => {
                if *dim == 0 {
                    return Err(ModelError::BadConfig(
                        "gaussian-quadratic needs dim >= 1".into(),
                    ));
                }
                if *sigma < 0.0 || !sigma.is_finite() {
                    return Err(ModelError::BadConfig(format!(
                        "sigma must be finite and >= 0, got {sigma}"
                    )));
                }
            }
            Self::Synthetic {
                model,
                batch,
                holdout,
                ..
            } => {
                model.dim()?;
                if *batch == 0 {
                    return Err(ModelError::BadConfig("batch size must be >= 1".into()));
                }
                if !(0.0..1.0).contains(holdout) {
                    return Err(ModelError::BadConfig(format!(
                        "holdout must be in [0, 1), got {holdout}"
                    )));
                }
            }
        }
        Ok(())
    }

    /// Builds the workload for `honest` workers, deterministically from
    /// `seed` (data generation, shuffling and sharding all derive from it).
    ///
    /// # Errors
    ///
    /// Returns [`ModelError`] for invalid parameters or when the dataset is
    /// too small to shard across the workers.
    pub fn build(&self, honest: usize, seed: u64) -> Result<Workload, ModelError> {
        self.validate()?;
        if honest == 0 {
            return Err(ModelError::BadConfig(
                "workloads need at least one honest worker".into(),
            ));
        }
        match self {
            Self::GaussianQuadratic { dim, sigma } => {
                let make = || -> Result<Box<dyn GradientEstimator>, ModelError> {
                    Ok(Box::new(GaussianEstimator::new(
                        QuadraticCost::isotropic(Vector::zeros(*dim), 0.0),
                        *sigma,
                    )?))
                };
                let estimators = (0..honest).map(|_| make()).collect::<Result<Vec<_>, _>>()?;
                Ok(Workload {
                    estimators,
                    probe: None,
                    dim: *dim,
                    optimum: Some(Vector::zeros(*dim)),
                    accuracy: None,
                })
            }
            Self::Synthetic {
                model,
                data,
                batch,
                holdout,
            } => {
                let mut rng = ChaCha8Rng::seed_from_u64(seed);
                let dataset = data.build(model.input_dim(), &mut rng)?;
                let (train, test) = if *holdout > 0.0 {
                    let (train, test) = dataset
                        .shuffled(&mut rng)
                        .split(1.0 - holdout)
                        .map_err(|e| ModelError::BadConfig(format!("holdout split failed: {e}")))?;
                    (train, Some(test))
                } else {
                    (dataset, None)
                };
                let shards = partition::iid_shards(&train, honest, &mut rng)
                    .map_err(|e| ModelError::BadConfig(format!("sharding failed: {e}")))?;
                let estimators = shards
                    .into_iter()
                    .map(|shard| {
                        let size = (*batch).min(shard.len()).max(1);
                        let sampler = BatchSampler::new(shard, size)
                            .map_err(|e| ModelError::BadConfig(format!("bad shard: {e}")))?;
                        model.estimator(sampler)
                    })
                    .collect::<Result<Vec<_>, _>>()?;
                // The probe sees the full training set: full-batch gradients
                // and losses, exactly the omniscient adversary's knowledge.
                let probe_sampler = BatchSampler::new(train.clone(), train.len())
                    .map_err(|e| ModelError::BadConfig(format!("bad probe batch: {e}")))?;
                let probe = model.estimator(probe_sampler)?;
                let accuracy = test.map(|t| model.accuracy_probe(t)).transpose()?;
                Ok(Workload {
                    estimators,
                    probe: Some(probe),
                    dim: model.dim()?,
                    optimum: None,
                    accuracy,
                })
            }
        }
    }

    /// Samples initial parameters for this workload with `strategy`.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError`] when the underlying model spec is invalid.
    pub fn init_params(&self, strategy: InitStrategy, seed: u64) -> Result<Vector, ModelError> {
        match self {
            Self::GaussianQuadratic { dim, .. } => {
                let mut rng = ChaCha8Rng::seed_from_u64(seed);
                Ok(strategy.sample_vector(*dim, &mut rng))
            }
            Self::Synthetic { model, .. } => model.init_params(strategy, seed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::RngCore;

    #[test]
    fn model_specs_report_dimensions() {
        assert_eq!(ModelSpec::Linear { features: 4 }.dim().unwrap(), 5);
        assert_eq!(ModelSpec::Logistic { features: 20 }.dim().unwrap(), 21);
        let mlp = ModelSpec::Mlp {
            inputs: 9,
            hidden: vec![4],
            classes: 3,
        };
        assert_eq!(mlp.input_dim(), 9);
        assert!(mlp.dim().unwrap() > 9);
        assert!(ModelSpec::Softmax {
            features: 3,
            classes: 0
        }
        .dim()
        .is_err());
    }

    #[test]
    fn gaussian_quadratic_builds_identical_estimator_clusters() {
        let spec = EstimatorSpec::GaussianQuadratic { dim: 6, sigma: 0.3 };
        assert_eq!(spec.dim().unwrap(), 6);
        let workload = spec.build(4, 7).unwrap();
        assert_eq!(workload.estimators.len(), 4);
        assert_eq!(workload.dim, 6);
        assert_eq!(workload.optimum, Some(Vector::zeros(6)));
        assert!(workload.probe.is_none());
        assert!(workload.accuracy.is_none());
        // The estimators share the analytic cost: identical true gradients.
        let x = Vector::filled(6, 2.0);
        let g0 = workload.estimators[0].true_gradient(&x).unwrap();
        let g1 = workload.estimators[1].true_gradient(&x).unwrap();
        assert_eq!(g0, g1);
    }

    #[test]
    fn synthetic_workload_is_deterministic_in_the_seed() {
        let spec = EstimatorSpec::Synthetic {
            model: ModelSpec::Logistic { features: 5 },
            data: DataSpec::LogisticRegression { samples: 200 },
            batch: 8,
            holdout: 0.2,
        };
        let a = spec.build(3, 42).unwrap();
        let b = spec.build(3, 42).unwrap();
        assert_eq!(a.estimators.len(), 3);
        assert!(a.probe.is_some());
        assert!(a.accuracy.is_some());
        assert_eq!(a.dim, 6);
        // Same seed ⇒ same shards ⇒ identical gradient estimates.
        let mut rng_a = ChaCha8Rng::seed_from_u64(1);
        let mut rng_b = ChaCha8Rng::seed_from_u64(1);
        let x = Vector::zeros(6);
        assert_eq!(
            a.estimators[0].estimate(&x, &mut rng_a).unwrap(),
            b.estimators[0].estimate(&x, &mut rng_b).unwrap()
        );
        // The accuracy probe evaluates on the held-out split.
        let acc = (a.accuracy.unwrap())(&x);
        assert!(acc.is_some());
    }

    #[test]
    fn digits_workload_wires_an_mlp_with_accuracy_probe() {
        let spec = EstimatorSpec::Synthetic {
            model: ModelSpec::Mlp {
                inputs: 16,
                hidden: vec![6],
                classes: 10,
            },
            data: DataSpec::SyntheticDigits {
                samples: 120,
                noise: 0.1,
            },
            batch: 8,
            holdout: 0.25,
        };
        let workload = spec.build(2, 5).unwrap();
        assert!(workload.accuracy.is_some());
        let init = spec.init_params(InitStrategy::XavierUniform, 3).unwrap();
        assert_eq!(init.dim(), workload.dim);
        // Xavier init is reproducible from the seed.
        assert_eq!(
            init,
            spec.init_params(InitStrategy::XavierUniform, 3).unwrap()
        );
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let g = workload.estimators[0].estimate(&init, &mut rng).unwrap();
        assert_eq!(g.dim(), workload.dim);
        assert!(workload.probe.unwrap().loss(&init).is_some());
        rng.next_u32();
    }

    #[test]
    fn invalid_specs_are_rejected() {
        assert!(EstimatorSpec::GaussianQuadratic { dim: 0, sigma: 0.1 }
            .validate()
            .is_err());
        assert!(EstimatorSpec::GaussianQuadratic {
            dim: 3,
            sigma: -1.0
        }
        .validate()
        .is_err());
        let bad_batch = EstimatorSpec::Synthetic {
            model: ModelSpec::Logistic { features: 4 },
            data: DataSpec::LogisticRegression { samples: 50 },
            batch: 0,
            holdout: 0.0,
        };
        assert!(bad_batch.validate().is_err());
        let bad_holdout = EstimatorSpec::Synthetic {
            model: ModelSpec::Logistic { features: 4 },
            data: DataSpec::LogisticRegression { samples: 50 },
            batch: 4,
            holdout: 1.0,
        };
        assert!(bad_holdout.validate().is_err());
        // Non-square input dimension for the digits task.
        let non_square = EstimatorSpec::Synthetic {
            model: ModelSpec::Mlp {
                inputs: 10,
                hidden: vec![],
                classes: 10,
            },
            data: DataSpec::SyntheticDigits {
                samples: 50,
                noise: 0.1,
            },
            batch: 4,
            holdout: 0.0,
        };
        assert!(non_square.build(2, 0).is_err());
        assert!(EstimatorSpec::GaussianQuadratic { dim: 3, sigma: 0.1 }
            .build(0, 0)
            .is_err());
    }

    #[test]
    fn specs_round_trip_through_serde() {
        let specs = [
            EstimatorSpec::GaussianQuadratic {
                dim: 20,
                sigma: 0.2,
            },
            EstimatorSpec::Synthetic {
                model: ModelSpec::Mlp {
                    inputs: 144,
                    hidden: vec![48],
                    classes: 10,
                },
                data: DataSpec::SyntheticDigits {
                    samples: 4000,
                    noise: 0.25,
                },
                batch: 32,
                holdout: 0.2,
            },
        ];
        for spec in &specs {
            let json = serde_json::to_string(spec).unwrap();
            let back: EstimatorSpec = serde_json::from_str(&json).unwrap();
            assert_eq!(&back, spec);
        }
    }
}
