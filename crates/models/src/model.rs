//! The [`Model`] trait and generic evaluation helpers.

use krum_data::{Batch, Dataset, Label};
use krum_tensor::{InitStrategy, Vector};
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::error::ModelError;

/// Output of a model for a single sample.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Prediction {
    /// Predicted class index (classification models).
    Class(usize),
    /// Predicted real value (regression models).
    Value(f64),
}

impl Prediction {
    /// Predicted class, or `None` for regression outputs.
    pub fn class(&self) -> Option<usize> {
        match self {
            Self::Class(c) => Some(*c),
            Self::Value(_) => None,
        }
    }

    /// Predicted value, or `None` for classification outputs.
    pub fn value(&self) -> Option<f64> {
        match self {
            Self::Class(_) => None,
            Self::Value(v) => Some(*v),
        }
    }
}

/// A differentiable learning model whose parameters are a flat vector in `R^d`.
///
/// Implementations are **stateless with respect to the parameters**: the
/// parameter vector is always passed in explicitly. This mirrors the paper's
/// protocol, where the server owns `x_t` and broadcasts it to every worker at
/// the start of a round.
///
/// The contract every implementation upholds (checked by the crate's tests and
/// by the property tests in `tests/`):
///
/// * `loss` is non-negative and finite for finite inputs;
/// * `gradient` has dimension [`Model::dim`];
/// * `gradient` is the exact gradient of `loss` on the same batch (verified by
///   finite differences).
pub trait Model: Send + Sync {
    /// Dimension `d` of the flattened parameter vector.
    fn dim(&self) -> usize;

    /// Draws an initial parameter vector.
    fn init_parameters(&self, strategy: InitStrategy, rng: &mut dyn rand::RngCore) -> Vector;

    /// Mean loss of `params` on `batch`.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError`] when `params` or the batch is incompatible with
    /// the model (wrong dimension, bad labels, empty batch).
    fn loss(&self, params: &Vector, batch: &Batch) -> Result<f64, ModelError>;

    /// Gradient of the mean loss on `batch`, evaluated at `params`.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError`] when `params` or the batch is incompatible with
    /// the model (wrong dimension, bad labels, empty batch).
    fn gradient(&self, params: &Vector, batch: &Batch) -> Result<Vector, ModelError>;

    /// Prediction for a single feature vector.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError`] when `params` or `features` has the wrong
    /// dimension.
    fn predict(&self, params: &Vector, features: &Vector) -> Result<Prediction, ModelError>;

    /// Short human-readable model name for reports.
    fn name(&self) -> &'static str;

    /// Validates that a parameter vector has the dimension this model expects.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::ParameterDimension`] on mismatch.
    fn check_params(&self, params: &Vector) -> Result<(), ModelError> {
        if params.dim() != self.dim() {
            Err(ModelError::ParameterDimension {
                expected: self.dim(),
                found: params.dim(),
            })
        } else {
            Ok(())
        }
    }
}

/// Aggregate quality report of a parameter vector on a dataset.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EvalReport {
    /// Mean loss over the dataset.
    pub loss: f64,
    /// Classification accuracy in `[0, 1]`; `None` for regression models.
    pub accuracy: Option<f64>,
    /// Number of samples evaluated.
    pub samples: usize,
}

/// Classification accuracy of `model` with `params` on `dataset`.
///
/// Returns `None` when the dataset carries no class labels (pure regression).
///
/// # Errors
///
/// Propagates any [`ModelError`] raised by [`Model::predict`].
pub fn accuracy<M: Model + ?Sized>(
    model: &M,
    params: &Vector,
    dataset: &Dataset,
) -> Result<Option<f64>, ModelError> {
    let mut correct = 0usize;
    let mut counted = 0usize;
    for i in 0..dataset.len() {
        let (x, label) = dataset.sample(i);
        if let Label::Class(c) = label {
            counted += 1;
            if model.predict(params, &x)?.class() == Some(c) {
                correct += 1;
            }
        }
    }
    if counted == 0 {
        Ok(None)
    } else {
        Ok(Some(correct as f64 / counted as f64))
    }
}

/// Evaluates loss and accuracy of `params` on a full dataset.
///
/// # Errors
///
/// Propagates any [`ModelError`] raised by the model.
pub fn evaluate<M: Model + ?Sized>(
    model: &M,
    params: &Vector,
    dataset: &Dataset,
) -> Result<EvalReport, ModelError> {
    let batch = Batch {
        features: dataset.features().clone(),
        labels: dataset.labels().to_vec(),
    };
    let loss = model.loss(params, &batch)?;
    let accuracy = accuracy(model, params, dataset)?;
    Ok(EvalReport {
        loss,
        accuracy,
        samples: dataset.len(),
    })
}

/// Checks `gradient` against central finite differences of `loss`.
///
/// Returns the maximum absolute coordinate-wise deviation. Exposed publicly so
/// downstream crates (and the integration tests) can validate custom models.
///
/// # Errors
///
/// Propagates any [`ModelError`] raised by the model.
pub fn finite_difference_check<M: Model + ?Sized>(
    model: &M,
    params: &Vector,
    batch: &Batch,
    epsilon: f64,
) -> Result<f64, ModelError> {
    let analytic = model.gradient(params, batch)?;
    let mut max_err = 0.0f64;
    for i in 0..params.dim() {
        let mut plus = params.clone();
        plus[i] += epsilon;
        let mut minus = params.clone();
        minus[i] -= epsilon;
        let numeric = (model.loss(&plus, batch)? - model.loss(&minus, batch)?) / (2.0 * epsilon);
        max_err = max_err.max((numeric - analytic[i]).abs());
    }
    Ok(max_err)
}

/// Helper used by implementations: draws an i.i.d. Gaussian/uniform/Xavier
/// init of the right dimension for models without layer structure.
pub(crate) fn flat_init<R: Rng + ?Sized>(
    dim: usize,
    strategy: InitStrategy,
    rng: &mut R,
) -> Vector {
    strategy.sample_vector(dim, rng)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prediction_accessors() {
        assert_eq!(Prediction::Class(3).class(), Some(3));
        assert_eq!(Prediction::Class(3).value(), None);
        assert_eq!(Prediction::Value(1.5).value(), Some(1.5));
        assert_eq!(Prediction::Value(1.5).class(), None);
    }

    #[test]
    fn flat_init_has_requested_dim() {
        use rand::SeedableRng;
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(0);
        let v = flat_init(12, InitStrategy::Gaussian { std: 0.1 }, &mut rng);
        assert_eq!(v.dim(), 12);
    }

    // The substantial Model-trait tests live with the concrete implementations
    // (linear.rs, softmax.rs, mlp.rs, quadratic.rs) and in tests/.
}
