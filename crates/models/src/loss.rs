//! Loss functions.
//!
//! All losses are means over the batch, so the gradient of the batch loss is
//! an unbiased estimator of the gradient of the population loss when the
//! batch is drawn i.i.d. — the assumption the paper places on correct workers.

use serde::{Deserialize, Serialize};

/// Identifies a loss family (useful for reporting / serialisation).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Loss {
    /// Mean squared error, for regression.
    MeanSquaredError,
    /// Binary cross-entropy on sigmoid outputs.
    BinaryCrossEntropy,
    /// Multi-class cross-entropy on softmax outputs.
    SoftmaxCrossEntropy,
}

impl Loss {
    /// Human-readable name.
    pub fn name(&self) -> &'static str {
        match self {
            Self::MeanSquaredError => "mse",
            Self::BinaryCrossEntropy => "binary-cross-entropy",
            Self::SoftmaxCrossEntropy => "softmax-cross-entropy",
        }
    }
}

/// Mean squared error `mean((pred - target)^2) / 2`.
///
/// The factor `1/2` makes the derivative with respect to the prediction simply
/// `pred - target`.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn mse(predictions: &[f64], targets: &[f64]) -> f64 {
    assert_eq!(
        predictions.len(),
        targets.len(),
        "mse: predictions and targets must have equal length"
    );
    if predictions.is_empty() {
        return 0.0;
    }
    predictions
        .iter()
        .zip(targets)
        .map(|(p, t)| 0.5 * (p - t) * (p - t))
        .sum::<f64>()
        / predictions.len() as f64
}

/// Binary cross-entropy between probabilities `p ∈ (0,1)` and labels `y ∈ {0,1}`.
///
/// Probabilities are clamped away from 0 and 1 for numerical stability.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn binary_cross_entropy(probabilities: &[f64], labels: &[f64]) -> f64 {
    assert_eq!(
        probabilities.len(),
        labels.len(),
        "binary_cross_entropy: probabilities and labels must have equal length"
    );
    if probabilities.is_empty() {
        return 0.0;
    }
    probabilities
        .iter()
        .zip(labels)
        .map(|(&p, &y)| {
            let p = p.clamp(1e-12, 1.0 - 1e-12);
            -(y * p.ln() + (1.0 - y) * (1.0 - p).ln())
        })
        .sum::<f64>()
        / probabilities.len() as f64
}

/// Numerically stable softmax of a logit slice.
pub fn softmax(logits: &[f64]) -> Vec<f64> {
    if logits.is_empty() {
        return Vec::new();
    }
    let max = logits.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let exps: Vec<f64> = logits.iter().map(|&z| (z - max).exp()).collect();
    let sum: f64 = exps.iter().sum();
    exps.into_iter().map(|e| e / sum).collect()
}

/// Cross-entropy of softmax probabilities against an integer class label.
///
/// `probabilities` must already be a probability distribution (e.g. the output
/// of [`softmax`]); the value is `-ln p[label]`, clamped for stability.
///
/// # Panics
///
/// Panics if `label >= probabilities.len()`.
pub fn softmax_cross_entropy(probabilities: &[f64], label: usize) -> f64 {
    assert!(
        label < probabilities.len(),
        "label {label} out of range for {} classes",
        probabilities.len()
    );
    -probabilities[label].clamp(1e-12, 1.0).ln()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mse_basics() {
        assert_eq!(mse(&[], &[]), 0.0);
        assert_eq!(mse(&[1.0, 2.0], &[1.0, 2.0]), 0.0);
        // 0.5 * ((1)^2 + (3)^2) / 2 = 2.5
        assert!((mse(&[1.0, 3.0], &[0.0, 0.0]) - 2.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn mse_length_mismatch_panics() {
        mse(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    fn bce_is_zero_for_perfect_predictions_and_grows_with_error() {
        let perfect = binary_cross_entropy(&[1.0 - 1e-12, 1e-12], &[1.0, 0.0]);
        assert!(perfect < 1e-9);
        let bad = binary_cross_entropy(&[0.1, 0.9], &[1.0, 0.0]);
        assert!(bad > 1.0);
        assert_eq!(binary_cross_entropy(&[], &[]), 0.0);
    }

    #[test]
    fn bce_handles_extreme_probabilities_without_nan() {
        let v = binary_cross_entropy(&[0.0, 1.0], &[1.0, 0.0]);
        assert!(v.is_finite());
    }

    #[test]
    fn softmax_is_a_probability_distribution() {
        let p = softmax(&[1.0, 2.0, 3.0]);
        assert_eq!(p.len(), 3);
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!(p[2] > p[1] && p[1] > p[0]);
        assert!(softmax(&[]).is_empty());
    }

    #[test]
    fn softmax_is_shift_invariant_and_stable_for_large_logits() {
        let a = softmax(&[1.0, 2.0, 3.0]);
        let b = softmax(&[1001.0, 1002.0, 1003.0]);
        for (x, y) in a.iter().zip(&b) {
            assert!((x - y).abs() < 1e-12);
        }
        assert!(b.iter().all(|p| p.is_finite()));
    }

    #[test]
    fn softmax_cross_entropy_prefers_correct_class() {
        let p = softmax(&[2.0, 0.0, 0.0]);
        assert!(softmax_cross_entropy(&p, 0) < softmax_cross_entropy(&p, 1));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn softmax_cross_entropy_rejects_bad_label() {
        softmax_cross_entropy(&[0.5, 0.5], 2);
    }

    #[test]
    fn loss_names() {
        assert_eq!(Loss::MeanSquaredError.name(), "mse");
        assert_eq!(Loss::BinaryCrossEntropy.name(), "binary-cross-entropy");
        assert_eq!(Loss::SoftmaxCrossEntropy.name(), "softmax-cross-entropy");
    }
}
