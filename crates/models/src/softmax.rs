//! Multi-class softmax (multinomial logistic) regression.

use krum_data::{Batch, Label};
use krum_tensor::{InitStrategy, Matrix, Vector};
use serde::{Deserialize, Serialize};

use crate::error::ModelError;
use crate::loss::softmax;
use crate::model::{Model, Prediction};

/// Softmax regression with `classes` outputs over `input_dim` features.
///
/// Parameter layout (row-major): a `classes × input_dim` weight matrix
/// followed by a `classes`-dimensional bias vector, so
/// `d = classes · input_dim + classes`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SoftmaxRegression {
    input_dim: usize,
    classes: usize,
    l2: f64,
}

impl SoftmaxRegression {
    /// Creates an unregularised softmax regression.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::BadConfig`] when `input_dim` or `classes` is
    /// zero, or when `classes < 2`.
    pub fn new(input_dim: usize, classes: usize) -> Result<Self, ModelError> {
        Self::with_l2(input_dim, classes, 0.0)
    }

    /// Creates an L2-regularised softmax regression.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::BadConfig`] when `input_dim` is zero, `classes < 2`
    /// or `l2 < 0`.
    pub fn with_l2(input_dim: usize, classes: usize, l2: f64) -> Result<Self, ModelError> {
        if input_dim == 0 {
            return Err(ModelError::BadConfig("input_dim must be >= 1".into()));
        }
        if classes < 2 {
            return Err(ModelError::BadConfig("classes must be >= 2".into()));
        }
        if l2 < 0.0 {
            return Err(ModelError::BadConfig("l2 must be >= 0".into()));
        }
        Ok(Self {
            input_dim,
            classes,
            l2,
        })
    }

    /// Number of input features.
    pub fn input_dim(&self) -> usize {
        self.input_dim
    }

    /// Number of output classes.
    pub fn classes(&self) -> usize {
        self.classes
    }

    /// Class probabilities for a single feature vector.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError`] on dimension mismatch.
    pub fn probabilities(
        &self,
        params: &Vector,
        features: &Vector,
    ) -> Result<Vec<f64>, ModelError> {
        self.check_params(params)?;
        if features.dim() != self.input_dim {
            return Err(ModelError::FeatureDimension {
                expected: self.input_dim,
                found: features.dim(),
            });
        }
        let (weights, bias) = self.unpack(params);
        let logits = weights.matvec(features);
        let logits: Vec<f64> = logits.iter().zip(bias.iter()).map(|(z, b)| z + b).collect();
        Ok(softmax(&logits))
    }

    fn unpack(&self, params: &Vector) -> (Matrix, Vector) {
        let w_len = self.classes * self.input_dim;
        let slice = params.as_slice();
        let weights = Matrix::from_vec(self.classes, self.input_dim, slice[..w_len].to_vec())
            .expect("parameter layout is fixed by construction");
        let bias = Vector::from(&slice[w_len..]);
        (weights, bias)
    }

    fn check_batch(&self, batch: &Batch) -> Result<(), ModelError> {
        if batch.is_empty() {
            return Err(ModelError::EmptyBatch("SoftmaxRegression"));
        }
        if batch.features.cols() != self.input_dim {
            return Err(ModelError::FeatureDimension {
                expected: self.input_dim,
                found: batch.features.cols(),
            });
        }
        Ok(())
    }

    fn class_target(&self, label: &Label) -> Result<usize, ModelError> {
        match label {
            Label::Class(c) if *c < self.classes => Ok(*c),
            Label::Class(c) => Err(ModelError::BadLabel(format!(
                "class {c} out of range for {} classes",
                self.classes
            ))),
            Label::Real(v) => Err(ModelError::BadLabel(format!(
                "softmax regression expects class labels, got real value {v}"
            ))),
        }
    }
}

impl Model for SoftmaxRegression {
    fn dim(&self) -> usize {
        self.classes * self.input_dim + self.classes
    }

    fn init_parameters(&self, strategy: InitStrategy, rng: &mut dyn rand::RngCore) -> Vector {
        // Weight block via the strategy's matrix sampler (so Xavier uses the
        // right fan-in/fan-out), bias block via the vector sampler.
        let w = strategy.sample_matrix(self.classes, self.input_dim, rng);
        let b = strategy.sample_vector(self.classes, rng);
        let mut flat = w.into_inner();
        flat.extend(b.into_inner());
        debug_assert_eq!(flat.len(), self.dim());
        Vector::from(flat)
    }

    fn loss(&self, params: &Vector, batch: &Batch) -> Result<f64, ModelError> {
        self.check_params(params)?;
        self.check_batch(batch)?;
        let (weights, bias) = self.unpack(params);
        let mut total = 0.0;
        for i in 0..batch.len() {
            let (x, label) = batch.sample(i);
            let y = self.class_target(&label)?;
            let logits: Vec<f64> = weights
                .matvec(&x)
                .iter()
                .zip(bias.iter())
                .map(|(z, b)| z + b)
                .collect();
            let probs = softmax(&logits);
            total += -probs[y].clamp(1e-12, 1.0).ln();
        }
        let mut loss = total / batch.len() as f64;
        if self.l2 > 0.0 {
            loss += 0.5 * self.l2 * weights.flatten().squared_norm();
        }
        Ok(loss)
    }

    fn gradient(&self, params: &Vector, batch: &Batch) -> Result<Vector, ModelError> {
        self.check_params(params)?;
        self.check_batch(batch)?;
        let (weights, bias) = self.unpack(params);
        let mut grad_w = Matrix::zeros(self.classes, self.input_dim);
        let mut grad_b = Vector::zeros(self.classes);
        for i in 0..batch.len() {
            let (x, label) = batch.sample(i);
            let y = self.class_target(&label)?;
            let logits: Vec<f64> = weights
                .matvec(&x)
                .iter()
                .zip(bias.iter())
                .map(|(z, b)| z + b)
                .collect();
            let mut delta = softmax(&logits);
            delta[y] -= 1.0;
            // grad_W += delta ⊗ x ; grad_b += delta
            for (c, &d) in delta.iter().enumerate() {
                if d != 0.0 {
                    for (j, &xj) in x.iter().enumerate() {
                        grad_w[(c, j)] += d * xj;
                    }
                    grad_b[c] += d;
                }
            }
        }
        let scale = 1.0 / batch.len() as f64;
        grad_w.scale(scale);
        grad_b.scale(scale);
        if self.l2 > 0.0 {
            grad_w.axpy(self.l2, &weights);
        }
        let mut flat = grad_w.into_inner();
        flat.extend(grad_b.into_inner());
        Ok(Vector::from(flat))
    }

    fn predict(&self, params: &Vector, features: &Vector) -> Result<Prediction, ModelError> {
        let probs = self.probabilities(params, features)?;
        let best = probs
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .map(|(i, _)| i)
            .unwrap_or(0);
        Ok(Prediction::Class(best))
    }

    fn name(&self) -> &'static str {
        "softmax-regression"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{accuracy, finite_difference_check};
    use krum_data::{generators, BatchSampler};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn blob_batch(classes: usize) -> (krum_data::Dataset, Batch) {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let ds = generators::gaussian_blobs(120, 4, classes, 3.0, 0.3, &mut rng).unwrap();
        let batch = BatchSampler::new(ds.clone(), ds.len())
            .unwrap()
            .full_batch();
        (ds, batch)
    }

    #[test]
    fn construction_validation() {
        assert!(SoftmaxRegression::new(0, 3).is_err());
        assert!(SoftmaxRegression::new(4, 1).is_err());
        assert!(SoftmaxRegression::with_l2(4, 3, -1.0).is_err());
        let m = SoftmaxRegression::new(4, 3).unwrap();
        assert_eq!(m.dim(), 15);
        assert_eq!(m.input_dim(), 4);
        assert_eq!(m.classes(), 3);
    }

    #[test]
    fn probabilities_sum_to_one() {
        let m = SoftmaxRegression::new(4, 3).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let params = m.init_parameters(InitStrategy::Gaussian { std: 0.5 }, &mut rng);
        let p = m
            .probabilities(&params, &Vector::from(vec![0.5, -1.0, 2.0, 0.0]))
            .unwrap();
        assert_eq!(p.len(), 3);
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn gradient_matches_finite_differences() {
        let m = SoftmaxRegression::with_l2(4, 3, 0.02).unwrap();
        let (_, batch) = blob_batch(3);
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let params = m.init_parameters(InitStrategy::Gaussian { std: 0.3 }, &mut rng);
        let err = finite_difference_check(&m, &params, &batch, 1e-5).unwrap();
        assert!(err < 1e-6, "finite-difference error too large: {err}");
    }

    #[test]
    fn training_separable_blobs_reaches_high_accuracy() {
        let m = SoftmaxRegression::new(4, 3).unwrap();
        let (ds, batch) = blob_batch(3);
        let mut params = Vector::zeros(m.dim());
        for _ in 0..300 {
            let g = m.gradient(&params, &batch).unwrap();
            params.axpy(-0.5, &g);
        }
        let acc = accuracy(&m, &params, &ds).unwrap().unwrap();
        assert!(acc > 0.95, "accuracy only {acc}");
    }

    #[test]
    fn rejects_incompatible_labels_and_shapes() {
        let m = SoftmaxRegression::new(2, 3).unwrap();
        let params = Vector::zeros(m.dim());
        let batch = Batch {
            features: krum_tensor::Matrix::zeros(1, 2),
            labels: vec![Label::Class(7)],
        };
        assert!(matches!(
            m.loss(&params, &batch),
            Err(ModelError::BadLabel(_))
        ));
        let batch = Batch {
            features: krum_tensor::Matrix::zeros(1, 5),
            labels: vec![Label::Class(0)],
        };
        assert!(m.gradient(&params, &batch).is_err());
        assert!(m.predict(&params, &Vector::zeros(9)).is_err());
        assert!(m.loss(&Vector::zeros(2), &batch).is_err());
    }

    #[test]
    fn init_has_model_dimension_and_is_deterministic() {
        let m = SoftmaxRegression::new(6, 4).unwrap();
        let a = m.init_parameters(
            InitStrategy::XavierUniform,
            &mut ChaCha8Rng::seed_from_u64(3),
        );
        let b = m.init_parameters(
            InitStrategy::XavierUniform,
            &mut ChaCha8Rng::seed_from_u64(3),
        );
        assert_eq!(a.dim(), m.dim());
        assert_eq!(a, b);
    }

    #[test]
    fn name_is_reported() {
        assert_eq!(
            SoftmaxRegression::new(2, 2).unwrap().name(),
            "softmax-regression"
        );
    }
}
