//! Stochastic gradient estimators — the paper's `G(x, ξ)`.
//!
//! A correct worker computes `V = G(x_t, ξ)` with `E G(x, ξ) = ∇Q(x)`. This
//! module abstracts that computation behind [`GradientEstimator`], with two
//! implementations:
//!
//! * [`BatchGradientEstimator`] — samples a mini-batch from the worker's data
//!   shard and backpropagates a model (the realistic path used by the
//!   MLP/regression experiments);
//! * [`GaussianEstimator`] — returns `∇Q(x) + N(0, σ² I)` for a cost with a
//!   known analytic gradient, which realises *exactly* the
//!   `E‖G − g‖² = d·σ²` assumption of Proposition 4.2 and is used by the
//!   theory-facing experiments.

use krum_data::BatchSampler;
use krum_tensor::Vector;
use rand::Rng;

use crate::error::ModelError;
use crate::model::Model;
use crate::quadratic::QuadraticCost;

/// A source of stochastic gradient estimates at a given parameter vector.
///
/// Estimators are deliberately object-safe so the distributed runtime can hold
/// heterogeneous workers behind `Box<dyn GradientEstimator>`.
pub trait GradientEstimator: Send + Sync {
    /// Dimension `d` of the produced gradients (and of the parameter vector).
    fn dim(&self) -> usize;

    /// Draws one stochastic gradient estimate `G(params, ξ)`.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError`] when `params` is incompatible with the
    /// underlying model.
    fn estimate(&self, params: &Vector, rng: &mut dyn rand::RngCore) -> Result<Vector, ModelError>;

    /// The true gradient `∇Q(params)` when it is analytically available
    /// (synthetic costs), or a full-data gradient when it is computable, or
    /// `None` otherwise.
    fn true_gradient(&self, params: &Vector) -> Option<Vector>;

    /// Loss at `params` when the estimator can evaluate it (used for metrics
    /// only; `None` when unavailable).
    fn loss(&self, params: &Vector) -> Option<f64>;
}

/// Mini-batch gradient estimator: `G(x, ξ)` = gradient of the model loss on a
/// batch drawn uniformly from the worker's shard.
pub struct BatchGradientEstimator<M> {
    model: M,
    sampler: BatchSampler,
}

impl<M: Model> BatchGradientEstimator<M> {
    /// Creates an estimator for `model` drawing batches from `sampler`.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::FeatureDimension`] if the sampler's dataset and
    /// the model disagree on the feature dimension (detected lazily for models
    /// whose input dimension is not visible here — the first `estimate` call
    /// surfaces the error).
    pub fn new(model: M, sampler: BatchSampler) -> Result<Self, ModelError> {
        Ok(Self { model, sampler })
    }

    /// The wrapped model.
    pub fn model(&self) -> &M {
        &self.model
    }

    /// The wrapped batch sampler.
    pub fn sampler(&self) -> &BatchSampler {
        &self.sampler
    }
}

impl<M: Model> GradientEstimator for BatchGradientEstimator<M> {
    fn dim(&self) -> usize {
        self.model.dim()
    }

    fn estimate(&self, params: &Vector, rng: &mut dyn rand::RngCore) -> Result<Vector, ModelError> {
        let batch = self.sampler.sample(rng);
        self.model.gradient(params, &batch)
    }

    fn true_gradient(&self, params: &Vector) -> Option<Vector> {
        let batch = self.sampler.full_batch();
        self.model.gradient(params, &batch).ok()
    }

    fn loss(&self, params: &Vector) -> Option<f64> {
        let batch = self.sampler.full_batch();
        self.model.loss(params, &batch).ok()
    }
}

/// Gaussian estimator around an analytic gradient:
/// `G(x, ξ) = ∇Q(x) + ξ`, `ξ ~ N(0, σ² I_d)`, so that
/// `E‖G(x, ξ) − ∇Q(x)‖² = d σ²` exactly as in Proposition 4.2.
pub struct GaussianEstimator {
    cost: QuadraticCost,
    sigma: f64,
}

impl GaussianEstimator {
    /// Creates an estimator with per-coordinate noise `σ = sigma` around the
    /// gradient of `cost`.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::BadConfig`] for a negative `sigma`.
    pub fn new(cost: QuadraticCost, sigma: f64) -> Result<Self, ModelError> {
        if sigma < 0.0 || !sigma.is_finite() {
            return Err(ModelError::BadConfig(format!(
                "sigma must be finite and >= 0, got {sigma}"
            )));
        }
        Ok(Self { cost, sigma })
    }

    /// Per-coordinate noise standard deviation σ.
    pub fn sigma(&self) -> f64 {
        self.sigma
    }

    /// The underlying quadratic cost.
    pub fn cost(&self) -> &QuadraticCost {
        &self.cost
    }
}

impl GradientEstimator for GaussianEstimator {
    fn dim(&self) -> usize {
        self.cost.dim()
    }

    fn estimate(&self, params: &Vector, rng: &mut dyn rand::RngCore) -> Result<Vector, ModelError> {
        if params.dim() != self.dim() {
            return Err(ModelError::ParameterDimension {
                expected: self.dim(),
                found: params.dim(),
            });
        }
        let mut g = self.cost.true_gradient(params);
        if self.sigma > 0.0 {
            let noise = Vector::gaussian(self.dim(), 0.0, self.sigma, rng);
            g.axpy(1.0, &noise);
        }
        Ok(g)
    }

    fn true_gradient(&self, params: &Vector) -> Option<Vector> {
        (params.dim() == self.dim()).then(|| self.cost.true_gradient(params))
    }

    fn loss(&self, params: &Vector) -> Option<f64> {
        (params.dim() == self.dim()).then(|| self.cost.cost(params))
    }
}

/// Draws `count` i.i.d. estimates at the same parameter vector — a convenience
/// used by the resilience experiments, which need a cloud of "correct worker"
/// proposals at a fixed `x`.
///
/// # Errors
///
/// Propagates the first estimator error encountered.
pub fn sample_estimates<E: GradientEstimator + ?Sized, R: Rng>(
    estimator: &E,
    params: &Vector,
    count: usize,
    rng: &mut R,
) -> Result<Vec<Vector>, ModelError> {
    let mut out = Vec::with_capacity(count);
    for _ in 0..count {
        out.push(estimator.estimate(params, rng)?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linear::LinearRegression;
    use krum_data::generators;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn gaussian_estimator_validation() {
        let cost = QuadraticCost::isotropic(Vector::zeros(3), 0.0);
        assert!(GaussianEstimator::new(cost.clone(), -1.0).is_err());
        assert!(GaussianEstimator::new(cost.clone(), f64::NAN).is_err());
        let est = GaussianEstimator::new(cost, 0.5).unwrap();
        assert_eq!(est.dim(), 3);
        assert_eq!(est.sigma(), 0.5);
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        assert!(est.estimate(&Vector::zeros(2), &mut rng).is_err());
        assert!(est.true_gradient(&Vector::zeros(2)).is_none());
    }

    #[test]
    fn gaussian_estimator_is_unbiased_with_variance_d_sigma_squared() {
        let dim = 20;
        let sigma = 0.3;
        let cost = QuadraticCost::isotropic(Vector::zeros(dim), 0.0);
        let est = GaussianEstimator::new(cost, sigma).unwrap();
        let x = Vector::filled(dim, 1.0);
        let g = est.true_gradient(&x).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let samples = sample_estimates(&est, &x, 4000, &mut rng).unwrap();
        let mean = Vector::mean_of(&samples).unwrap();
        assert!(mean.distance(&g) < 0.05, "estimator should be unbiased");
        let mean_sq_dev: f64 =
            samples.iter().map(|s| s.squared_distance(&g)).sum::<f64>() / samples.len() as f64;
        let expected = dim as f64 * sigma * sigma;
        assert!(
            (mean_sq_dev - expected).abs() / expected < 0.1,
            "E‖G − g‖² = {mean_sq_dev}, expected ≈ {expected}"
        );
    }

    #[test]
    fn gaussian_estimator_with_zero_noise_is_exact() {
        let cost = QuadraticCost::isotropic(Vector::from(vec![1.0, 2.0]), 0.0);
        let est = GaussianEstimator::new(cost.clone(), 0.0).unwrap();
        let x = Vector::from(vec![3.0, 3.0]);
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        assert_eq!(est.estimate(&x, &mut rng).unwrap(), cost.true_gradient(&x));
        assert_eq!(est.loss(&x), Some(cost.cost(&x)));
    }

    #[test]
    fn batch_estimator_is_approximately_unbiased() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let (ds, _, _) = generators::linear_regression(400, 4, 0.1, &mut rng).unwrap();
        let model = LinearRegression::new(4);
        let full = BatchSampler::new(ds.clone(), ds.len()).unwrap();
        let mini = BatchSampler::new(ds, 16).unwrap();
        let est = BatchGradientEstimator::new(model.clone(), mini).unwrap();
        let full_est = BatchGradientEstimator::new(model, full).unwrap();
        assert_eq!(est.dim(), 5);
        let params = Vector::gaussian(5, 0.0, 1.0, &mut rng);
        let exact = full_est.true_gradient(&params).unwrap();
        let samples = sample_estimates(&est, &params, 2000, &mut rng).unwrap();
        let mean = Vector::mean_of(&samples).unwrap();
        let relative = mean.distance(&exact) / exact.norm().max(1e-9);
        assert!(relative < 0.1, "relative bias {relative}");
        assert!(est.loss(&params).is_some());
    }

    #[test]
    fn estimators_are_object_safe() {
        let cost = QuadraticCost::isotropic(Vector::zeros(2), 0.0);
        let boxed: Box<dyn GradientEstimator> =
            Box::new(GaussianEstimator::new(cost, 0.1).unwrap());
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let g = boxed.estimate(&Vector::zeros(2), &mut rng).unwrap();
        assert_eq!(g.dim(), 2);
    }

    #[test]
    fn accessors_expose_configuration() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let ds = generators::gaussian_blobs(20, 2, 2, 1.0, 0.2, &mut rng).unwrap();
        let sampler = BatchSampler::new(ds, 4).unwrap();
        let est = BatchGradientEstimator::new(LinearRegression::new(2), sampler).unwrap();
        assert_eq!(est.model().input_dim(), 2);
        assert_eq!(est.sampler().batch_size(), 4);
        let cost = QuadraticCost::isotropic(Vector::zeros(2), 0.0);
        let gauss = GaussianEstimator::new(cost, 0.2).unwrap();
        assert_eq!(gauss.cost().dim(), 2);
    }
}
