//! Error type shared by the model implementations.

use thiserror::Error;

/// Errors produced by model construction and evaluation.
#[derive(Debug, Clone, PartialEq, Error)]
pub enum ModelError {
    /// A parameter vector had the wrong dimension for this model.
    #[error("parameter vector has dimension {found} but the model expects {expected}")]
    ParameterDimension {
        /// Dimension the model expects.
        expected: usize,
        /// Dimension that was supplied.
        found: usize,
    },
    /// A batch had a feature dimension that does not match the model input.
    #[error("batch features have dimension {found} but the model expects {expected}")]
    FeatureDimension {
        /// Input dimension the model expects.
        expected: usize,
        /// Feature dimension of the offending batch.
        found: usize,
    },
    /// A label was incompatible with the model (e.g. a regression label fed to
    /// a classifier, or a class index out of range).
    #[error("incompatible label: {0}")]
    BadLabel(String),
    /// A configuration value was invalid.
    #[error("invalid model configuration: {0}")]
    BadConfig(String),
    /// An operation requiring at least one sample got an empty batch.
    #[error("operation `{0}` requires a non-empty batch")]
    EmptyBatch(&'static str),
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = ModelError::ParameterDimension {
            expected: 10,
            found: 3,
        };
        assert!(e.to_string().contains("10"));
        assert!(e.to_string().contains('3'));
        let e = ModelError::BadLabel("class 7 out of range".into());
        assert!(e.to_string().contains("class 7"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ModelError>();
    }
}
