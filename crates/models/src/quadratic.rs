//! Synthetic quadratic cost function.
//!
//! `Q(x) = ½ (x − x*)ᵀ diag(a) (x − x*) + c` with known optimum `x*` and known
//! gradient `∇Q(x) = diag(a)(x − x*)`. The theory-facing experiments (E4, E5)
//! use this cost because every quantity appearing in Definition 3.2 and
//! Propositions 4.2/4.3 — `g = ∇Q(x)`, `σ(x)`, `sin α` — can be computed
//! exactly, so measured behaviour can be compared against the analytic bound.

use krum_data::Batch;
use krum_tensor::{InitStrategy, Vector};
use serde::{Deserialize, Serialize};

use crate::error::ModelError;
use crate::model::{Model, Prediction};

/// A strictly convex quadratic cost over `R^d` with diagonal curvature.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QuadraticCost {
    optimum: Vector,
    curvature: Vector,
    offset: f64,
}

impl QuadraticCost {
    /// Isotropic quadratic `½‖x − x*‖² + offset` centred at `optimum`.
    pub fn isotropic(optimum: Vector, offset: f64) -> Self {
        let curvature = Vector::filled(optimum.dim(), 1.0);
        Self {
            optimum,
            curvature,
            offset,
        }
    }

    /// General diagonal quadratic with per-coordinate curvature `a_i > 0`.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::BadConfig`] when dimensions differ or any
    /// curvature entry is not strictly positive.
    pub fn diagonal(optimum: Vector, curvature: Vector, offset: f64) -> Result<Self, ModelError> {
        if optimum.dim() != curvature.dim() {
            return Err(ModelError::BadConfig(format!(
                "optimum has dimension {} but curvature has {}",
                optimum.dim(),
                curvature.dim()
            )));
        }
        if curvature.iter().any(|&a| a <= 0.0) {
            return Err(ModelError::BadConfig(
                "curvature entries must be strictly positive".into(),
            ));
        }
        Ok(Self {
            optimum,
            curvature,
            offset,
        })
    }

    /// The unique minimiser `x*`.
    pub fn optimum(&self) -> &Vector {
        &self.optimum
    }

    /// Cost value `Q(x)`.
    pub fn cost(&self, x: &Vector) -> f64 {
        let diff = x - &self.optimum;
        0.5 * diff
            .iter()
            .zip(self.curvature.iter())
            .map(|(d, a)| a * d * d)
            .sum::<f64>()
            + self.offset
    }

    /// Exact gradient `∇Q(x) = diag(a)(x − x*)`.
    pub fn true_gradient(&self, x: &Vector) -> Vector {
        let diff = x - &self.optimum;
        diff.hadamard(&self.curvature)
    }
}

impl Model for QuadraticCost {
    fn dim(&self) -> usize {
        self.optimum.dim()
    }

    fn init_parameters(&self, strategy: InitStrategy, rng: &mut dyn rand::RngCore) -> Vector {
        strategy.sample_vector(self.dim(), rng)
    }

    /// The quadratic cost ignores the batch: its loss depends on the
    /// parameters only. The batch may therefore be empty.
    fn loss(&self, params: &Vector, _batch: &Batch) -> Result<f64, ModelError> {
        self.check_params(params)?;
        Ok(self.cost(params))
    }

    /// Exact (deterministic) gradient; stochasticity is added by
    /// [`GaussianEstimator`](crate::GaussianEstimator), not here.
    fn gradient(&self, params: &Vector, _batch: &Batch) -> Result<Vector, ModelError> {
        self.check_params(params)?;
        Ok(self.true_gradient(params))
    }

    fn predict(&self, params: &Vector, _features: &Vector) -> Result<Prediction, ModelError> {
        self.check_params(params)?;
        Ok(Prediction::Value(self.cost(params)))
    }

    fn name(&self) -> &'static str {
        "quadratic-cost"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use krum_tensor::Matrix;

    fn empty_batch(dim: usize) -> Batch {
        Batch {
            features: Matrix::zeros(0, dim),
            labels: vec![],
        }
    }

    #[test]
    fn isotropic_cost_and_gradient() {
        let q = QuadraticCost::isotropic(Vector::from(vec![1.0, -1.0]), 0.5);
        assert_eq!(q.dim(), 2);
        let x = Vector::from(vec![2.0, 0.0]);
        // ½ (1 + 1) + 0.5 = 1.5
        assert!((q.cost(&x) - 1.5).abs() < 1e-12);
        assert_eq!(q.true_gradient(&x).as_slice(), &[1.0, 1.0]);
        assert_eq!(q.true_gradient(q.optimum()).as_slice(), &[0.0, 0.0]);
    }

    #[test]
    fn diagonal_validation() {
        let opt = Vector::zeros(3);
        assert!(QuadraticCost::diagonal(opt.clone(), Vector::zeros(2), 0.0).is_err());
        assert!(
            QuadraticCost::diagonal(opt.clone(), Vector::from(vec![1.0, 0.0, 1.0]), 0.0).is_err()
        );
        assert!(QuadraticCost::diagonal(opt, Vector::from(vec![1.0, 2.0, 3.0]), 0.0).is_ok());
    }

    #[test]
    fn diagonal_curvature_scales_gradient() {
        let q = QuadraticCost::diagonal(Vector::zeros(3), Vector::from(vec![1.0, 2.0, 4.0]), 0.0)
            .unwrap();
        let x = Vector::from(vec![1.0, 1.0, 1.0]);
        assert_eq!(q.true_gradient(&x).as_slice(), &[1.0, 2.0, 4.0]);
        assert!((q.cost(&x) - 3.5).abs() < 1e-12);
    }

    #[test]
    fn model_trait_implementation() {
        let q = QuadraticCost::isotropic(Vector::from(vec![0.0, 0.0, 0.0]), 0.0);
        let x = Vector::from(vec![3.0, 0.0, 4.0]);
        let batch = empty_batch(3);
        assert_eq!(q.loss(&x, &batch).unwrap(), 12.5);
        assert_eq!(q.gradient(&x, &batch).unwrap(), x);
        assert!(q.loss(&Vector::zeros(2), &batch).is_err());
        assert_eq!(
            q.predict(&x, &Vector::zeros(0)).unwrap().value(),
            Some(12.5)
        );
        assert_eq!(q.name(), "quadratic-cost");
    }

    #[test]
    fn gradient_descent_converges_to_optimum() {
        let q = QuadraticCost::isotropic(Vector::from(vec![2.0, -3.0, 1.0]), 0.0);
        let batch = empty_batch(3);
        let mut x = Vector::zeros(3);
        for _ in 0..200 {
            let g = q.gradient(&x, &batch).unwrap();
            x.axpy(-0.1, &g);
        }
        assert!(x.distance(q.optimum()) < 1e-6);
    }
}
