//! Multi-layer perceptron with manual backpropagation.
//!
//! This is the model family used in the full version of the paper's
//! evaluation (an MLP classifier trained on MNIST / spambase). The network is
//! a stack of fully connected layers with a configurable activation, followed
//! by a softmax cross-entropy output layer.

use krum_data::{Batch, Label};
use krum_tensor::{InitStrategy, Matrix, Vector};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

use crate::activation::Activation;
use crate::error::ModelError;
use crate::loss::softmax;
use crate::model::{Model, Prediction};

/// Minimum batch size before the gradient computation fans out across threads.
const PARALLEL_THRESHOLD: usize = 64;

/// Layer sizes and activation of an MLP; build one with [`MlpBuilder`].
///
/// Parameter layout: for each layer `l` (input → output order), the row-major
/// `out_l × in_l` weight matrix followed by the `out_l` bias vector.
///
/// # Example
///
/// ```
/// use krum_models::{Mlp, MlpBuilder, Model, Activation};
///
/// let mlp: Mlp = MlpBuilder::new(784, 10)
///     .hidden_layer(100)
///     .activation(Activation::Relu)
///     .build()
///     .unwrap();
/// assert_eq!(mlp.dim(), 784 * 100 + 100 + 100 * 10 + 10);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Mlp {
    /// Layer widths, including input and output: `[in, h1, …, out]`.
    sizes: Vec<usize>,
    activation: Activation,
}

/// Builder for [`Mlp`] (non-consuming).
#[derive(Debug, Clone)]
pub struct MlpBuilder {
    input_dim: usize,
    classes: usize,
    hidden: Vec<usize>,
    activation: Activation,
}

impl MlpBuilder {
    /// Starts a builder for a network mapping `input_dim` features to
    /// `classes` output logits.
    pub fn new(input_dim: usize, classes: usize) -> Self {
        Self {
            input_dim,
            classes,
            hidden: Vec::new(),
            activation: Activation::Relu,
        }
    }

    /// Appends a hidden layer of the given width.
    pub fn hidden_layer(&mut self, width: usize) -> &mut Self {
        self.hidden.push(width);
        self
    }

    /// Sets the hidden-layer activation (default ReLU).
    pub fn activation(&mut self, activation: Activation) -> &mut Self {
        self.activation = activation;
        self
    }

    /// Builds the [`Mlp`].
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::BadConfig`] when the input dimension is zero, the
    /// number of classes is below 2, or any hidden layer has zero width.
    pub fn build(&self) -> Result<Mlp, ModelError> {
        if self.input_dim == 0 {
            return Err(ModelError::BadConfig("input_dim must be >= 1".into()));
        }
        if self.classes < 2 {
            return Err(ModelError::BadConfig("classes must be >= 2".into()));
        }
        if self.hidden.contains(&0) {
            return Err(ModelError::BadConfig(
                "hidden layers must have width >= 1".into(),
            ));
        }
        let mut sizes = Vec::with_capacity(self.hidden.len() + 2);
        sizes.push(self.input_dim);
        sizes.extend_from_slice(&self.hidden);
        sizes.push(self.classes);
        Ok(Mlp {
            sizes,
            activation: self.activation,
        })
    }
}

/// Per-layer view of an unpacked parameter vector.
struct Layers {
    weights: Vec<Matrix>,
    biases: Vec<Vector>,
}

impl Mlp {
    /// Layer widths including input and output.
    pub fn sizes(&self) -> &[usize] {
        &self.sizes
    }

    /// Hidden activation function.
    pub fn activation(&self) -> Activation {
        self.activation
    }

    /// Number of output classes.
    pub fn classes(&self) -> usize {
        *self.sizes.last().expect("sizes always has >= 2 entries")
    }

    /// Input feature dimension.
    pub fn input_dim(&self) -> usize {
        self.sizes[0]
    }

    /// Number of weight layers.
    fn num_layers(&self) -> usize {
        self.sizes.len() - 1
    }

    fn layer_lengths(&self) -> Vec<usize> {
        let mut lengths = Vec::with_capacity(self.num_layers() * 2);
        for l in 0..self.num_layers() {
            lengths.push(self.sizes[l + 1] * self.sizes[l]);
            lengths.push(self.sizes[l + 1]);
        }
        lengths
    }

    fn unpack(&self, params: &Vector) -> Layers {
        let parts = params
            .split(&self.layer_lengths())
            .expect("parameter layout is fixed by construction");
        let mut weights = Vec::with_capacity(self.num_layers());
        let mut biases = Vec::with_capacity(self.num_layers());
        for l in 0..self.num_layers() {
            let w = Matrix::from_flat(self.sizes[l + 1], self.sizes[l], &parts[2 * l])
                .expect("weight block has rows*cols elements");
            weights.push(w);
            biases.push(parts[2 * l + 1].clone());
        }
        Layers { weights, biases }
    }

    fn pack(&self, weights: &[Matrix], biases: &[Vector]) -> Vector {
        let mut flat = Vec::with_capacity(self.dim());
        for (w, b) in weights.iter().zip(biases) {
            flat.extend_from_slice(w.as_slice());
            flat.extend_from_slice(b.as_slice());
        }
        Vector::from(flat)
    }

    fn check_batch(&self, batch: &Batch) -> Result<(), ModelError> {
        if batch.is_empty() {
            return Err(ModelError::EmptyBatch("Mlp"));
        }
        if batch.features.cols() != self.input_dim() {
            return Err(ModelError::FeatureDimension {
                expected: self.input_dim(),
                found: batch.features.cols(),
            });
        }
        Ok(())
    }

    fn class_target(&self, label: &Label) -> Result<usize, ModelError> {
        match label {
            Label::Class(c) if *c < self.classes() => Ok(*c),
            Label::Class(c) => Err(ModelError::BadLabel(format!(
                "class {c} out of range for {} classes",
                self.classes()
            ))),
            Label::Real(v) => Err(ModelError::BadLabel(format!(
                "MLP expects class labels, got real value {v}"
            ))),
        }
    }

    /// Forward pass for one sample, returning per-layer pre-activations and
    /// activations (the input counts as activation 0).
    fn forward(&self, layers: &Layers, x: &Vector) -> (Vec<Vector>, Vec<Vector>) {
        let mut pre = Vec::with_capacity(self.num_layers());
        let mut act = Vec::with_capacity(self.num_layers() + 1);
        act.push(x.clone());
        for l in 0..self.num_layers() {
            let mut z = layers.weights[l].matvec(act.last().expect("non-empty"));
            z.axpy(1.0, &layers.biases[l]);
            let a = if l + 1 == self.num_layers() {
                // Output layer: logits are passed to softmax by the caller.
                z.clone()
            } else {
                z.map(|v| self.activation.apply(v))
            };
            pre.push(z);
            act.push(a);
        }
        (pre, act)
    }

    /// Softmax probabilities for a single feature vector.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError`] on dimension mismatch.
    pub fn probabilities(
        &self,
        params: &Vector,
        features: &Vector,
    ) -> Result<Vec<f64>, ModelError> {
        self.check_params(params)?;
        if features.dim() != self.input_dim() {
            return Err(ModelError::FeatureDimension {
                expected: self.input_dim(),
                found: features.dim(),
            });
        }
        let layers = self.unpack(params);
        let (_, act) = self.forward(&layers, features);
        Ok(softmax(act.last().expect("non-empty").as_slice()))
    }

    /// Loss and gradient contribution of a contiguous range of samples,
    /// returned as (sum of sample losses, per-layer weight grads, per-layer
    /// bias grads).
    fn range_loss_and_gradient(
        &self,
        layers: &Layers,
        batch: &Batch,
        range: std::ops::Range<usize>,
    ) -> Result<(f64, Vec<Matrix>, Vec<Vector>), ModelError> {
        let mut grad_w: Vec<Matrix> = (0..self.num_layers())
            .map(|l| Matrix::zeros(self.sizes[l + 1], self.sizes[l]))
            .collect();
        let mut grad_b: Vec<Vector> = (0..self.num_layers())
            .map(|l| Vector::zeros(self.sizes[l + 1]))
            .collect();
        let mut loss_sum = 0.0;
        for i in range {
            let (x, label) = batch.sample(i);
            let y = self.class_target(&label)?;
            let (pre, act) = self.forward(layers, &x);
            let probs = softmax(act.last().expect("non-empty").as_slice());
            loss_sum += -probs[y].clamp(1e-12, 1.0).ln();
            // Output delta: softmax − one-hot.
            let mut delta = Vector::from(probs);
            delta[y] -= 1.0;
            // Backwards through the layers.
            for l in (0..self.num_layers()).rev() {
                // Accumulate gradients for layer l: delta ⊗ act[l].
                for (r, &dr) in delta.iter().enumerate() {
                    if dr != 0.0 {
                        grad_b[l][r] += dr;
                        for (c, &ac) in act[l].iter().enumerate() {
                            grad_w[l][(r, c)] += dr * ac;
                        }
                    }
                }
                if l > 0 {
                    // Propagate: delta_{l-1} = (W_lᵀ delta_l) ⊙ act'(pre_{l-1}).
                    let back = layers.weights[l]
                        .try_matvec_transposed(&delta)
                        .expect("delta has layer output dimension");
                    let deriv = pre[l - 1].map(|z| self.activation.derivative(z));
                    delta = back.hadamard(&deriv);
                }
            }
        }
        Ok((loss_sum, grad_w, grad_b))
    }
}

impl Model for Mlp {
    fn dim(&self) -> usize {
        self.layer_lengths().iter().sum()
    }

    fn init_parameters(&self, strategy: InitStrategy, rng: &mut dyn rand::RngCore) -> Vector {
        let mut weights = Vec::with_capacity(self.num_layers());
        let mut biases = Vec::with_capacity(self.num_layers());
        for l in 0..self.num_layers() {
            weights.push(strategy.sample_matrix(self.sizes[l + 1], self.sizes[l], rng));
            biases.push(strategy.sample_vector(self.sizes[l + 1], rng));
        }
        self.pack(&weights, &biases)
    }

    fn loss(&self, params: &Vector, batch: &Batch) -> Result<f64, ModelError> {
        self.check_params(params)?;
        self.check_batch(batch)?;
        let layers = self.unpack(params);
        let mut total = 0.0;
        for i in 0..batch.len() {
            let (x, label) = batch.sample(i);
            let y = self.class_target(&label)?;
            let (_, act) = self.forward(&layers, &x);
            let probs = softmax(act.last().expect("non-empty").as_slice());
            total += -probs[y].clamp(1e-12, 1.0).ln();
        }
        Ok(total / batch.len() as f64)
    }

    fn gradient(&self, params: &Vector, batch: &Batch) -> Result<Vector, ModelError> {
        self.check_params(params)?;
        self.check_batch(batch)?;
        let layers = self.unpack(params);
        let n = batch.len();
        let (_, mut grad_w, mut grad_b) = if n >= PARALLEL_THRESHOLD {
            // Split the batch into one chunk per thread and reduce.
            let threads = rayon::current_num_threads().max(1);
            let chunk = n.div_ceil(threads);
            let ranges: Vec<std::ops::Range<usize>> = (0..n)
                .step_by(chunk)
                .map(|start| start..(start + chunk).min(n))
                .collect();
            let partials: Result<Vec<_>, ModelError> = ranges
                .into_par_iter()
                .map(|r| self.range_loss_and_gradient(&layers, batch, r))
                .collect();
            let mut partials = partials?.into_iter();
            let first = partials.next().expect("at least one range");
            partials.fold(first, |mut acc, part| {
                acc.0 += part.0;
                for (a, p) in acc.1.iter_mut().zip(&part.1) {
                    a.axpy(1.0, p);
                }
                for (a, p) in acc.2.iter_mut().zip(&part.2) {
                    a.axpy(1.0, p);
                }
                acc
            })
        } else {
            self.range_loss_and_gradient(&layers, batch, 0..n)?
        };
        let scale = 1.0 / n as f64;
        for w in &mut grad_w {
            w.scale(scale);
        }
        for b in &mut grad_b {
            b.scale(scale);
        }
        Ok(self.pack(&grad_w, &grad_b))
    }

    fn predict(&self, params: &Vector, features: &Vector) -> Result<Prediction, ModelError> {
        let probs = self.probabilities(params, features)?;
        let best = probs
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .map(|(i, _)| i)
            .unwrap_or(0);
        Ok(Prediction::Class(best))
    }

    fn name(&self) -> &'static str {
        "mlp"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{accuracy, finite_difference_check};
    use krum_data::{generators, BatchSampler};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn small_mlp() -> Mlp {
        MlpBuilder::new(2, 2)
            .hidden_layer(8)
            .activation(Activation::Tanh)
            .build()
            .unwrap()
    }

    #[test]
    fn builder_validation_and_dim() {
        assert!(MlpBuilder::new(0, 2).build().is_err());
        assert!(MlpBuilder::new(4, 1).build().is_err());
        assert!(MlpBuilder::new(4, 2).hidden_layer(0).build().is_err());
        let mlp = MlpBuilder::new(4, 3)
            .hidden_layer(5)
            .hidden_layer(6)
            .build()
            .unwrap();
        assert_eq!(mlp.sizes(), &[4, 5, 6, 3]);
        assert_eq!(mlp.dim(), 4 * 5 + 5 + 5 * 6 + 6 + 6 * 3 + 3);
        assert_eq!(mlp.classes(), 3);
        assert_eq!(mlp.input_dim(), 4);
    }

    #[test]
    fn init_round_trips_through_pack_unpack() {
        let mlp = small_mlp();
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let params = mlp.init_parameters(InitStrategy::XavierUniform, &mut rng);
        assert_eq!(params.dim(), mlp.dim());
        let layers = mlp.unpack(&params);
        let repacked = mlp.pack(&layers.weights, &layers.biases);
        assert_eq!(params, repacked);
    }

    #[test]
    fn gradient_matches_finite_differences() {
        let mlp = small_mlp();
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let ds = generators::gaussian_blobs(20, 2, 2, 2.0, 0.4, &mut rng).unwrap();
        let batch = BatchSampler::new(ds, 20).unwrap().full_batch();
        let params = mlp.init_parameters(InitStrategy::Gaussian { std: 0.4 }, &mut rng);
        let err = finite_difference_check(&mlp, &params, &batch, 1e-5).unwrap();
        assert!(err < 1e-5, "finite-difference error too large: {err}");
    }

    #[test]
    fn gradient_matches_finite_differences_with_relu_and_two_hidden_layers() {
        let mlp = MlpBuilder::new(3, 3)
            .hidden_layer(6)
            .hidden_layer(4)
            .activation(Activation::Relu)
            .build()
            .unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let ds = generators::gaussian_blobs(15, 3, 3, 2.0, 0.3, &mut rng).unwrap();
        let batch = BatchSampler::new(ds, 15).unwrap().full_batch();
        let params = mlp.init_parameters(InitStrategy::Gaussian { std: 0.4 }, &mut rng);
        let err = finite_difference_check(&mlp, &params, &batch, 1e-5).unwrap();
        // ReLU kinks can inflate the numeric error slightly.
        assert!(err < 1e-4, "finite-difference error too large: {err}");
    }

    #[test]
    fn parallel_and_sequential_gradients_agree() {
        let mlp = MlpBuilder::new(4, 3).hidden_layer(10).build().unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let ds = generators::gaussian_blobs(200, 4, 3, 2.0, 0.3, &mut rng).unwrap();
        let big = BatchSampler::new(ds, 200).unwrap().full_batch();
        let params = mlp.init_parameters(InitStrategy::XavierUniform, &mut rng);
        // The same computation executed sequentially on the full range.
        let layers = mlp.unpack(&params);
        let (_, mut gw, mut gb) = mlp
            .range_loss_and_gradient(&layers, &big, 0..big.len())
            .unwrap();
        let scale = 1.0 / big.len() as f64;
        for w in &mut gw {
            w.scale(scale);
        }
        for b in &mut gb {
            b.scale(scale);
        }
        let sequential = mlp.pack(&gw, &gb);
        let parallel = mlp.gradient(&params, &big).unwrap();
        let diff = (&sequential - &parallel).norm();
        assert!(diff < 1e-9, "parallel/sequential mismatch: {diff}");
    }

    #[test]
    fn training_learns_blobs() {
        let mlp = MlpBuilder::new(2, 3).hidden_layer(16).build().unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let ds = generators::gaussian_blobs(150, 2, 3, 3.0, 0.3, &mut rng).unwrap();
        let batch = BatchSampler::new(ds.clone(), ds.len())
            .unwrap()
            .full_batch();
        let mut params = mlp.init_parameters(InitStrategy::XavierUniform, &mut rng);
        let initial_loss = mlp.loss(&params, &batch).unwrap();
        for _ in 0..200 {
            let g = mlp.gradient(&params, &batch).unwrap();
            params.axpy(-0.5, &g);
        }
        let final_loss = mlp.loss(&params, &batch).unwrap();
        assert!(final_loss < initial_loss * 0.5);
        let acc = accuracy(&mlp, &params, &ds).unwrap().unwrap();
        assert!(acc > 0.9, "accuracy only {acc}");
    }

    #[test]
    fn probabilities_are_a_distribution() {
        let mlp = small_mlp();
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let params = mlp.init_parameters(InitStrategy::XavierUniform, &mut rng);
        let p = mlp
            .probabilities(&params, &Vector::from(vec![0.3, -0.7]))
            .unwrap();
        assert_eq!(p.len(), 2);
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn rejects_bad_inputs() {
        let mlp = small_mlp();
        let params = Vector::zeros(mlp.dim());
        assert!(mlp.predict(&params, &Vector::zeros(5)).is_err());
        assert!(mlp
            .loss(
                &Vector::zeros(3),
                &Batch {
                    features: krum_tensor::Matrix::zeros(1, 2),
                    labels: vec![Label::Class(0)],
                }
            )
            .is_err());
        let bad_label = Batch {
            features: krum_tensor::Matrix::zeros(1, 2),
            labels: vec![Label::Real(0.5)],
        };
        assert!(matches!(
            mlp.gradient(&params, &bad_label),
            Err(ModelError::BadLabel(_))
        ));
        let empty = Batch {
            features: krum_tensor::Matrix::zeros(0, 2),
            labels: vec![],
        };
        assert!(matches!(
            mlp.loss(&params, &empty),
            Err(ModelError::EmptyBatch(_))
        ));
    }

    #[test]
    fn name_is_reported() {
        assert_eq!(small_mlp().name(), "mlp");
    }
}
