//! Linear and logistic regression.
//!
//! Both models flatten their parameters as `[w_0 … w_{p-1}, b]` where `p` is
//! the input feature dimension, so `d = p + 1`.

use krum_data::{Batch, Label};
use krum_tensor::{InitStrategy, Vector};
use serde::{Deserialize, Serialize};

use crate::error::ModelError;
use crate::model::{flat_init, Model, Prediction};

/// Least-squares linear regression `ŷ = ⟨w, x⟩ + b` with loss
/// `mean((ŷ − y)² / 2) + (λ/2)‖w‖²`.
///
/// # Example
///
/// ```
/// use krum_models::{LinearRegression, Model};
/// use krum_tensor::Vector;
///
/// let model = LinearRegression::new(3);
/// assert_eq!(model.dim(), 4); // 3 weights + bias
/// let params = Vector::zeros(4);
/// let pred = model.predict(&params, &Vector::zeros(3)).unwrap();
/// assert_eq!(pred.value(), Some(0.0));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LinearRegression {
    input_dim: usize,
    l2: f64,
}

impl LinearRegression {
    /// Creates an unregularised linear regression on `input_dim` features.
    pub fn new(input_dim: usize) -> Self {
        Self { input_dim, l2: 0.0 }
    }

    /// Creates a ridge regression with L2 penalty `λ = l2` on the weights.
    pub fn with_l2(input_dim: usize, l2: f64) -> Self {
        Self { input_dim, l2 }
    }

    /// Number of input features.
    pub fn input_dim(&self) -> usize {
        self.input_dim
    }

    /// L2 regularisation strength.
    pub fn l2(&self) -> f64 {
        self.l2
    }

    fn split_params<'a>(&self, params: &'a Vector) -> (&'a [f64], f64) {
        let slice = params.as_slice();
        (&slice[..self.input_dim], slice[self.input_dim])
    }

    fn check_batch(&self, batch: &Batch) -> Result<(), ModelError> {
        if batch.is_empty() {
            return Err(ModelError::EmptyBatch("LinearRegression"));
        }
        if batch.features.cols() != self.input_dim {
            return Err(ModelError::FeatureDimension {
                expected: self.input_dim,
                found: batch.features.cols(),
            });
        }
        Ok(())
    }

    fn target(label: &Label) -> Result<f64, ModelError> {
        match label {
            Label::Real(v) => Ok(*v),
            Label::Class(c) => Ok(*c as f64),
        }
    }
}

impl Model for LinearRegression {
    fn dim(&self) -> usize {
        self.input_dim + 1
    }

    fn init_parameters(&self, strategy: InitStrategy, rng: &mut dyn rand::RngCore) -> Vector {
        flat_init(self.dim(), strategy, rng)
    }

    fn loss(&self, params: &Vector, batch: &Batch) -> Result<f64, ModelError> {
        self.check_params(params)?;
        self.check_batch(batch)?;
        let (w, b) = self.split_params(params);
        let w = Vector::from(w);
        let mut total = 0.0;
        for i in 0..batch.len() {
            let (x, label) = batch.sample(i);
            let pred = w.dot(&x) + b;
            let err = pred - Self::target(&label)?;
            total += 0.5 * err * err;
        }
        let mut loss = total / batch.len() as f64;
        if self.l2 > 0.0 {
            loss += 0.5 * self.l2 * w.squared_norm();
        }
        Ok(loss)
    }

    fn gradient(&self, params: &Vector, batch: &Batch) -> Result<Vector, ModelError> {
        self.check_params(params)?;
        self.check_batch(batch)?;
        let (w, b) = self.split_params(params);
        let w = Vector::from(w);
        let mut grad_w = Vector::zeros(self.input_dim);
        let mut grad_b = 0.0;
        for i in 0..batch.len() {
            let (x, label) = batch.sample(i);
            let err = w.dot(&x) + b - Self::target(&label)?;
            grad_w.axpy(err, &x);
            grad_b += err;
        }
        let scale = 1.0 / batch.len() as f64;
        grad_w.scale(scale);
        grad_b *= scale;
        if self.l2 > 0.0 {
            grad_w.axpy(self.l2, &w);
        }
        let mut out = grad_w.into_inner();
        out.push(grad_b);
        Ok(Vector::from(out))
    }

    fn predict(&self, params: &Vector, features: &Vector) -> Result<Prediction, ModelError> {
        self.check_params(params)?;
        if features.dim() != self.input_dim {
            return Err(ModelError::FeatureDimension {
                expected: self.input_dim,
                found: features.dim(),
            });
        }
        let (w, b) = self.split_params(params);
        Ok(Prediction::Value(Vector::from(w).dot(features) + b))
    }

    fn name(&self) -> &'static str {
        "linear-regression"
    }
}

/// Binary logistic regression `P(y=1|x) = sigmoid(⟨w, x⟩ + b)` with
/// cross-entropy loss and optional L2 penalty.
///
/// Labels must be `Label::Class(0)` or `Label::Class(1)`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LogisticRegression {
    input_dim: usize,
    l2: f64,
}

impl LogisticRegression {
    /// Creates an unregularised logistic regression on `input_dim` features.
    pub fn new(input_dim: usize) -> Self {
        Self { input_dim, l2: 0.0 }
    }

    /// Creates an L2-regularised logistic regression.
    pub fn with_l2(input_dim: usize, l2: f64) -> Self {
        Self { input_dim, l2 }
    }

    /// Number of input features.
    pub fn input_dim(&self) -> usize {
        self.input_dim
    }

    /// Probability that the sample belongs to class 1.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError`] on dimension mismatch.
    pub fn probability(&self, params: &Vector, features: &Vector) -> Result<f64, ModelError> {
        self.check_params(params)?;
        if features.dim() != self.input_dim {
            return Err(ModelError::FeatureDimension {
                expected: self.input_dim,
                found: features.dim(),
            });
        }
        let slice = params.as_slice();
        let w = Vector::from(&slice[..self.input_dim]);
        let b = slice[self.input_dim];
        Ok(sigmoid(w.dot(features) + b))
    }

    fn check_batch(&self, batch: &Batch) -> Result<(), ModelError> {
        if batch.is_empty() {
            return Err(ModelError::EmptyBatch("LogisticRegression"));
        }
        if batch.features.cols() != self.input_dim {
            return Err(ModelError::FeatureDimension {
                expected: self.input_dim,
                found: batch.features.cols(),
            });
        }
        Ok(())
    }

    fn binary_target(label: &Label) -> Result<f64, ModelError> {
        match label {
            Label::Class(0) => Ok(0.0),
            Label::Class(1) => Ok(1.0),
            Label::Class(c) => Err(ModelError::BadLabel(format!(
                "logistic regression expects classes 0/1, got {c}"
            ))),
            Label::Real(v) => Err(ModelError::BadLabel(format!(
                "logistic regression expects class labels, got real value {v}"
            ))),
        }
    }
}

impl Model for LogisticRegression {
    fn dim(&self) -> usize {
        self.input_dim + 1
    }

    fn init_parameters(&self, strategy: InitStrategy, rng: &mut dyn rand::RngCore) -> Vector {
        flat_init(self.dim(), strategy, rng)
    }

    fn loss(&self, params: &Vector, batch: &Batch) -> Result<f64, ModelError> {
        self.check_params(params)?;
        self.check_batch(batch)?;
        let slice = params.as_slice();
        let w = Vector::from(&slice[..self.input_dim]);
        let b = slice[self.input_dim];
        let mut total = 0.0;
        for i in 0..batch.len() {
            let (x, label) = batch.sample(i);
            let y = Self::binary_target(&label)?;
            let p = sigmoid(w.dot(&x) + b).clamp(1e-12, 1.0 - 1e-12);
            total += -(y * p.ln() + (1.0 - y) * (1.0 - p).ln());
        }
        let mut loss = total / batch.len() as f64;
        if self.l2 > 0.0 {
            loss += 0.5 * self.l2 * w.squared_norm();
        }
        Ok(loss)
    }

    fn gradient(&self, params: &Vector, batch: &Batch) -> Result<Vector, ModelError> {
        self.check_params(params)?;
        self.check_batch(batch)?;
        let slice = params.as_slice();
        let w = Vector::from(&slice[..self.input_dim]);
        let b = slice[self.input_dim];
        let mut grad_w = Vector::zeros(self.input_dim);
        let mut grad_b = 0.0;
        for i in 0..batch.len() {
            let (x, label) = batch.sample(i);
            let y = Self::binary_target(&label)?;
            let err = sigmoid(w.dot(&x) + b) - y;
            grad_w.axpy(err, &x);
            grad_b += err;
        }
        let scale = 1.0 / batch.len() as f64;
        grad_w.scale(scale);
        grad_b *= scale;
        if self.l2 > 0.0 {
            grad_w.axpy(self.l2, &w);
        }
        let mut out = grad_w.into_inner();
        out.push(grad_b);
        Ok(Vector::from(out))
    }

    fn predict(&self, params: &Vector, features: &Vector) -> Result<Prediction, ModelError> {
        let p = self.probability(params, features)?;
        Ok(Prediction::Class(usize::from(p >= 0.5)))
    }

    fn name(&self) -> &'static str {
        "logistic-regression"
    }
}

fn sigmoid(z: f64) -> f64 {
    1.0 / (1.0 + (-z).exp())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::finite_difference_check;
    use krum_data::{generators, BatchSampler};
    use krum_tensor::Matrix;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn regression_batch() -> Batch {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let (ds, _, _) = generators::linear_regression(32, 5, 0.1, &mut rng).unwrap();
        BatchSampler::new(ds, 32).unwrap().full_batch()
    }

    fn classification_batch() -> Batch {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let (ds, _, _) = generators::logistic_regression(64, 4, &mut rng).unwrap();
        BatchSampler::new(ds, 64).unwrap().full_batch()
    }

    #[test]
    fn linear_dimensions_and_validation() {
        let model = LinearRegression::new(5);
        assert_eq!(model.dim(), 6);
        assert_eq!(model.input_dim(), 5);
        let bad = Vector::zeros(3);
        assert!(model.loss(&bad, &regression_batch()).is_err());
        let params = Vector::zeros(6);
        let empty = Batch {
            features: Matrix::zeros(0, 5),
            labels: vec![],
        };
        assert!(matches!(
            model.loss(&params, &empty),
            Err(ModelError::EmptyBatch(_))
        ));
        let wrong_dim = Batch {
            features: Matrix::zeros(2, 3),
            labels: vec![Label::Real(0.0); 2],
        };
        assert!(model.loss(&params, &wrong_dim).is_err());
    }

    #[test]
    fn linear_gradient_matches_finite_differences() {
        let model = LinearRegression::with_l2(5, 0.01);
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let params = model.init_parameters(InitStrategy::Gaussian { std: 0.5 }, &mut rng);
        let err = finite_difference_check(&model, &params, &regression_batch(), 1e-5).unwrap();
        assert!(err < 1e-6, "finite-difference error too large: {err}");
    }

    #[test]
    fn linear_gradient_descent_reduces_loss() {
        let model = LinearRegression::new(5);
        let batch = regression_batch();
        let mut params = Vector::zeros(6);
        let initial = model.loss(&params, &batch).unwrap();
        for _ in 0..200 {
            let g = model.gradient(&params, &batch).unwrap();
            params.axpy(-0.1, &g);
        }
        let final_loss = model.loss(&params, &batch).unwrap();
        assert!(
            final_loss < initial * 0.05,
            "loss {initial} -> {final_loss}"
        );
    }

    #[test]
    fn linear_predicts_inner_product_plus_bias() {
        let model = LinearRegression::new(2);
        let params = Vector::from(vec![2.0, -1.0, 0.5]);
        let pred = model
            .predict(&params, &Vector::from(vec![1.0, 3.0]))
            .unwrap();
        assert_eq!(pred.value(), Some(2.0 - 3.0 + 0.5));
        assert!(model.predict(&params, &Vector::zeros(3)).is_err());
    }

    #[test]
    fn linear_l2_penalises_weights_not_bias() {
        let plain = LinearRegression::new(2);
        let ridge = LinearRegression::with_l2(2, 1.0);
        assert_eq!(ridge.l2(), 1.0);
        let batch = Batch {
            features: Matrix::from_rows(&[vec![0.0, 0.0]]).unwrap(),
            labels: vec![Label::Real(0.0)],
        };
        let params = Vector::from(vec![1.0, 1.0, 5.0]);
        let l_plain = plain.loss(&params, &batch).unwrap();
        let l_ridge = ridge.loss(&params, &batch).unwrap();
        // Penalty adds 0.5 * λ * ‖w‖² = 1.0, independent of the bias.
        assert!((l_ridge - l_plain - 1.0).abs() < 1e-12);
    }

    #[test]
    fn logistic_gradient_matches_finite_differences() {
        let model = LogisticRegression::with_l2(4, 0.05);
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let params = model.init_parameters(InitStrategy::Gaussian { std: 0.3 }, &mut rng);
        let err = finite_difference_check(&model, &params, &classification_batch(), 1e-5).unwrap();
        assert!(err < 1e-6, "finite-difference error too large: {err}");
    }

    #[test]
    fn logistic_training_reaches_good_accuracy() {
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let (ds, _, _) = generators::logistic_regression(500, 3, &mut rng).unwrap();
        let model = LogisticRegression::new(3);
        let batch = BatchSampler::new(ds.clone(), ds.len())
            .unwrap()
            .full_batch();
        let mut params = Vector::zeros(model.dim());
        for _ in 0..300 {
            let g = model.gradient(&params, &batch).unwrap();
            params.axpy(-0.5, &g);
        }
        // Labels are themselves sampled from the sigmoid probabilities, so the
        // Bayes accuracy is well below 1; 0.8 is a comfortable margin above chance.
        let acc = crate::model::accuracy(&model, &params, &ds)
            .unwrap()
            .unwrap();
        assert!(acc > 0.8, "accuracy only {acc}");
    }

    #[test]
    fn logistic_rejects_bad_labels() {
        let model = LogisticRegression::new(2);
        let params = Vector::zeros(3);
        let batch = Batch {
            features: Matrix::zeros(1, 2),
            labels: vec![Label::Class(4)],
        };
        assert!(matches!(
            model.loss(&params, &batch),
            Err(ModelError::BadLabel(_))
        ));
        let batch = Batch {
            features: Matrix::zeros(1, 2),
            labels: vec![Label::Real(0.3)],
        };
        assert!(model.gradient(&params, &batch).is_err());
    }

    #[test]
    fn logistic_probability_is_half_at_zero_params() {
        let model = LogisticRegression::new(2);
        let params = Vector::zeros(3);
        let p = model
            .probability(&params, &Vector::from(vec![0.4, -0.2]))
            .unwrap();
        assert!((p - 0.5).abs() < 1e-12);
        let pred = model
            .predict(&params, &Vector::from(vec![0.4, -0.2]))
            .unwrap();
        assert_eq!(pred.class(), Some(1));
    }

    #[test]
    fn names_are_reported() {
        assert_eq!(LinearRegression::new(1).name(), "linear-regression");
        assert_eq!(LogisticRegression::new(1).name(), "logistic-regression");
    }
}
