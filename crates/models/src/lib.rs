//! # krum-models
//!
//! Learning models, loss functions and stochastic gradient estimators for the
//! Krum reproduction.
//!
//! The paper frames learning as minimising a cost function `Q(x)` over a
//! parameter vector `x ∈ R^d`, with workers computing stochastic estimates
//! `G(x, ξ)` of `∇Q(x)`. This crate supplies:
//!
//! * the [`Model`] trait — a stateless description of a differentiable model
//!   whose parameters are a flat [`Vector`](krum_tensor::Vector) (exactly the
//!   paper's `x ∈ R^d`),
//! * concrete models: [`LinearRegression`], [`LogisticRegression`],
//!   [`SoftmaxRegression`] and a multi-layer perceptron ([`Mlp`]) with manual
//!   backpropagation,
//! * the synthetic [`QuadraticCost`] used for the theory-facing experiments
//!   (its gradient and optimum are known in closed form),
//! * the [`GradientEstimator`] abstraction that workers use to produce
//!   `G(x, ξ)`: [`BatchGradientEstimator`] (model + mini-batch) and
//!   [`GaussianEstimator`] (true gradient + Gaussian noise, matching the
//!   `E‖G − g‖² = d·σ²` assumption of Proposition 4.2),
//! * the typed workload registry behind the scenario API: [`ModelSpec`],
//!   [`DataSpec`] and [`EstimatorSpec`], whose
//!   [`build`](EstimatorSpec::build) factory deterministically produces the
//!   per-worker estimator cluster plus probe/metrics hooks as a
//!   [`Workload`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod activation;
mod error;
mod estimator;
mod linear;
mod loss;
mod mlp;
mod model;
mod quadratic;
mod softmax;
mod spec;

pub use activation::Activation;
pub use error::ModelError;
pub use estimator::{
    sample_estimates, BatchGradientEstimator, GaussianEstimator, GradientEstimator,
};
pub use linear::{LinearRegression, LogisticRegression};
pub use loss::{binary_cross_entropy, mse, softmax, softmax_cross_entropy, Loss};
pub use mlp::{Mlp, MlpBuilder};
pub use model::{accuracy, evaluate, finite_difference_check, EvalReport, Model, Prediction};
pub use quadratic::QuadraticCost;
pub use softmax::SoftmaxRegression;
pub use spec::{AccuracyFn, DataSpec, EstimatorSpec, ModelSpec, Workload};

/// Convenience prelude for the models crate.
pub mod prelude {
    pub use crate::{
        accuracy, evaluate, sample_estimates, Activation, BatchGradientEstimator, DataSpec,
        EstimatorSpec, EvalReport, GaussianEstimator, GradientEstimator, LinearRegression,
        LogisticRegression, Mlp, MlpBuilder, Model, ModelError, ModelSpec, Prediction,
        QuadraticCost, SoftmaxRegression, Workload,
    };
}
