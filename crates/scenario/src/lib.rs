//! # krum-scenario
//!
//! The declarative scenario API of the Krum reproduction: one serialisable
//! value — a [`ScenarioSpec`] — describes a full experiment (cluster shape,
//! aggregation rule, Byzantine strategy, workload, schedule, execution
//! model, seed, probes), and one call — [`Scenario::run`] — executes it and
//! returns a [`ScenarioReport`] (final parameters, per-round history with
//! phase timings, exports).
//!
//! The paper's evaluation is a grid over `(rule F, attack, (n, f), model,
//! schedule)`; this crate makes each grid cell a first-class value instead
//! of a hand-assembled binary, so sweeps can be driven by data (JSON files,
//! the `krum` CLI, loops over typed specs). Three construction paths produce
//! **bit-identical parameter trajectories** for the same field values,
//! because everything random derives from the spec's seed:
//!
//! * a JSON file through [`Scenario::from_json`] (what `krum run` does),
//! * the fluent [`ScenarioBuilder`],
//! * the legacy hand-wired `SyncTrainer`/`ThreadedTrainer` construction
//!   (the scenario wires the same `RoundEngine` underneath).
//!
//! Validation is front-loaded: [`ScenarioSpec::validate`] cross-checks every
//! constraint (Krum's `2f + 2 < n`, attack and workload parameter ranges,
//! the evaluation cadence, network finiteness) before any data is generated
//! or any round runs.
//!
//! ## Example
//!
//! ```
//! use krum_scenario::ScenarioBuilder;
//! use krum_attacks::AttackSpec;
//! use krum_models::EstimatorSpec;
//!
//! let report = ScenarioBuilder::new(15, 4)
//!     .attack(AttackSpec::SignFlip { scale: 5.0 })
//!     .estimator(EstimatorSpec::GaussianQuadratic { dim: 20, sigma: 0.2 })
//!     .rounds(50)
//!     .seed(42)
//!     .init_fill(3.0)
//!     .run()?;
//! assert!(report.summary().final_loss.unwrap() < report.summary().initial_loss.unwrap());
//! # Ok::<(), krum_scenario::ScenarioError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod builder;
mod error;
mod faults;
mod report;
mod scenario;
mod spec;

pub use builder::ScenarioBuilder;
pub use error::ScenarioError;
pub use faults::{FaultAction, FaultPlan, FaultSpec, MAX_FAULT_DELAY_MILLIS};
pub use report::{escape_metadata, ScenarioReport};
pub use scenario::Scenario;
pub use spec::{
    CrashPolicy, ExecutionSpec, InitSpec, ProbeSpec, RemoteTimeouts, ScenarioSpec,
    DEFAULT_HANDSHAKE_TIMEOUT_SECS, DEFAULT_HEARTBEAT_SECS, DEFAULT_ROUND_TIMEOUT_SECS,
    DEFAULT_STAFFING_TIMEOUT_SECS, EXECUTION_NAMES,
};

/// Convenience prelude for the scenario crate.
pub mod prelude {
    pub use crate::{
        CrashPolicy, ExecutionSpec, FaultAction, FaultPlan, FaultSpec, InitSpec, ProbeSpec,
        RemoteTimeouts, Scenario, ScenarioBuilder, ScenarioError, ScenarioReport, ScenarioSpec,
    };
}
