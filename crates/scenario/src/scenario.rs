//! Building and running a scenario.

use std::time::Instant;

use krum_dist::RoundEngine;
use krum_tensor::Vector;

use crate::error::ScenarioError;
use crate::report::ScenarioReport;
use crate::spec::{InitSpec, ScenarioSpec};

/// A fully wired, ready-to-run experiment: the validated spec plus the
/// [`RoundEngine`] built from it and the initial parameter vector.
///
/// `Scenario` is the one entry point from "a description of an experiment"
/// to "a trained model and its metrics": it owns exactly the same engine a
/// hand-wired `SyncTrainer`/`ThreadedTrainer` would own, so the parameter
/// trajectory is bit-identical to the legacy construction path for the same
/// spec fields, and running it adds no per-round work on top of the engine.
pub struct Scenario {
    spec: ScenarioSpec,
    engine: RoundEngine,
    start: Vector,
}

impl std::fmt::Debug for Scenario {
    fn fmt(&self, out: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        out.debug_struct("Scenario")
            .field("spec", &self.spec)
            .field("dim", &self.engine.dim())
            .finish_non_exhaustive()
    }
}

impl Scenario {
    /// Validates `spec` and wires the engine: workload estimators, rule,
    /// attack, probes and execution strategy.
    ///
    /// # Errors
    ///
    /// Returns a [`ScenarioError`] when any cross-constraint fails (see
    /// [`ScenarioSpec::validate`]) or a component rejects its configuration.
    pub fn from_spec(spec: ScenarioSpec) -> Result<Self, ScenarioError> {
        spec.validate()?;
        // Remote execution has no in-process strategy: the spec is valid,
        // but only the server subsystem can run it.
        let strategy = spec.execution.strategy().ok_or_else(|| {
            ScenarioError::invalid(
                "remote execution cannot run in-process: serve the scenario with \
                 `krum serve` or `krum loopback` (krum-server)",
            )
        })?;
        let cluster = spec.cluster;
        let workload = spec.estimator.build(cluster.honest(), spec.seed)?;
        // Under async-quorum execution the rule aggregates `quorum`
        // proposals per round, so it is built for that arity (validate()
        // already re-checked its preconditions against it).
        let arity = spec.execution.aggregation_arity(cluster.workers());
        let aggregator = spec.rule.build(arity, cluster.byzantine())?;
        let attack = spec.attack.build(workload.dim)?;
        let config = krum_dist::TrainingConfig {
            rounds: spec.rounds,
            schedule: spec.schedule,
            seed: spec.seed,
            eval_every: spec.eval_every,
            known_optimum: if spec.probes.track_optimum {
                workload.optimum
            } else {
                None
            },
        };
        let mut engine = RoundEngine::new(
            cluster,
            aggregator,
            attack,
            workload.estimators,
            workload.probe,
            config,
            strategy,
        )?;
        if spec.probes.accuracy {
            if let Some(probe) = workload.accuracy {
                engine.set_accuracy_probe(probe);
            }
        }
        let mut start = match spec.init {
            InitSpec::Zeros => Vector::zeros(workload.dim),
            InitSpec::Fill { value } => Vector::filled(workload.dim, value),
            InitSpec::Sample { strategy, seed } => spec.estimator.init_params(strategy, seed)?,
        };
        if let Some(compression) = &spec.compression {
            let codec: std::sync::Arc<dyn krum_compress::GradientCodec> =
                std::sync::Arc::from(compression.build());
            // The initial params go through the params transform exactly
            // once — the in-process twin of encoding the first broadcast —
            // and the engine re-projects after every step, so the whole
            // trajectory lives in the codec's representable set.
            codec.transform_params(start.as_mut_slice());
            engine.set_compression(codec);
        }
        Ok(Self {
            spec,
            engine,
            start,
        })
    }

    /// Parses, validates and wires a scenario from its JSON rendering.
    ///
    /// # Errors
    ///
    /// Same as [`ScenarioSpec::from_json`] plus [`Scenario::from_spec`].
    pub fn from_json(json: &str) -> Result<Self, ScenarioError> {
        Self::from_spec(ScenarioSpec::from_json(json)?)
    }

    /// The validated specification this scenario was built from.
    pub fn spec(&self) -> &ScenarioSpec {
        &self.spec
    }

    /// Model dimension `d`.
    pub fn dim(&self) -> usize {
        self.engine.dim()
    }

    /// The initial parameter vector `x_0`.
    pub fn start(&self) -> &Vector {
        &self.start
    }

    /// The wired round engine (e.g. to force an aggregation execution policy
    /// or to drive rounds manually in benchmarks).
    pub fn engine_mut(&mut self) -> &mut RoundEngine {
        &mut self.engine
    }

    /// Runs the scenario to completion and returns the report: final
    /// parameters, full per-round history and wall-clock totals.
    ///
    /// # Errors
    ///
    /// Returns [`ScenarioError::Train`] when a worker, the attack or the
    /// aggregator fails mid-run.
    pub fn run(mut self) -> Result<ScenarioReport, ScenarioError> {
        let wall_start = Instant::now();
        let (final_params, history) = self.engine.run(self.start)?;
        let wall_nanos = wall_start.elapsed().as_nanos();
        Ok(ScenarioReport {
            spec: self.spec,
            final_params,
            history,
            wall_nanos,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{ExecutionSpec, ProbeSpec};
    use krum_attacks::AttackSpec;
    use krum_core::RuleSpec;
    use krum_dist::{
        ClusterSpec, LatencyModel, LearningRateSchedule, NetworkModel, SyncTrainer, TrainingConfig,
    };
    use krum_models::{DataSpec, EstimatorSpec, ModelSpec};

    fn spec() -> ScenarioSpec {
        ScenarioSpec {
            name: "scenario-test".into(),
            cluster: ClusterSpec::new(9, 2).unwrap(),
            rule: RuleSpec::Krum,
            attack: AttackSpec::SignFlip { scale: 3.0 },
            estimator: EstimatorSpec::GaussianQuadratic { dim: 6, sigma: 0.3 },
            schedule: LearningRateSchedule::Constant { gamma: 0.2 },
            execution: ExecutionSpec::Sequential,
            rounds: 25,
            eval_every: 5,
            seed: 7,
            init: InitSpec::Fill { value: 1.5 },
            probes: ProbeSpec::default(),
            fault_plan: None,
            compression: None,
        }
    }

    #[test]
    fn scenario_run_matches_hand_wired_sync_trainer() {
        let scenario = Scenario::from_spec(spec()).unwrap();
        assert_eq!(scenario.dim(), 6);
        assert_eq!(scenario.start(), &Vector::filled(6, 1.5));
        let report = scenario.run().unwrap();

        // Legacy path: the same components assembled by hand.
        let estimators = EstimatorSpec::GaussianQuadratic { dim: 6, sigma: 0.3 }
            .build(7, 7)
            .unwrap()
            .estimators;
        let mut trainer = SyncTrainer::new(
            ClusterSpec::new(9, 2).unwrap(),
            RuleSpec::Krum.build(9, 2).unwrap(),
            AttackSpec::SignFlip { scale: 3.0 }.build(6).unwrap(),
            estimators,
            TrainingConfig {
                rounds: 25,
                schedule: LearningRateSchedule::Constant { gamma: 0.2 },
                seed: 7,
                eval_every: 5,
                known_optimum: Some(Vector::zeros(6)),
            },
        )
        .unwrap();
        let (legacy_params, legacy_history) = trainer.run(Vector::filled(6, 1.5)).unwrap();

        assert_eq!(report.final_params, legacy_params);
        assert_eq!(report.history.len(), legacy_history.len());
        for (a, b) in report.history.rounds.iter().zip(&legacy_history.rounds) {
            assert_eq!(a.aggregate_norm, b.aggregate_norm);
            assert_eq!(a.distance_to_optimum, b.distance_to_optimum);
        }
        assert!(report.wall_nanos > 0);
    }

    #[test]
    fn threaded_execution_matches_sequential_trajectory() {
        let sequential = Scenario::from_spec(spec()).unwrap().run().unwrap();
        let mut threaded_spec = spec();
        threaded_spec.execution = ExecutionSpec::Threaded {
            network: NetworkModel {
                latency: LatencyModel::Constant { nanos: 1_000 },
                nanos_per_byte: 0.1,
            },
        };
        let threaded = Scenario::from_spec(threaded_spec).unwrap().run().unwrap();
        assert_eq!(sequential.final_params, threaded.final_params);
        assert!(threaded.history.mean_network_nanos() > 0.0);
        assert_eq!(sequential.history.mean_network_nanos(), 0.0);
    }

    #[test]
    fn synthetic_workload_records_accuracy() {
        let spec = ScenarioSpec {
            name: "logistic".into(),
            cluster: ClusterSpec::new(7, 2).unwrap(),
            rule: RuleSpec::Krum,
            attack: AttackSpec::GaussianNoise { std: 50.0 },
            estimator: EstimatorSpec::Synthetic {
                model: ModelSpec::Logistic { features: 6 },
                data: DataSpec::LogisticRegression { samples: 300 },
                batch: 16,
                holdout: 0.2,
            },
            schedule: LearningRateSchedule::Constant { gamma: 0.5 },
            execution: ExecutionSpec::Sequential,
            rounds: 30,
            eval_every: 10,
            seed: 3,
            init: InitSpec::Zeros,
            probes: ProbeSpec::default(),
            fault_plan: None,
            compression: None,
        };
        let report = Scenario::from_spec(spec).unwrap().run().unwrap();
        let summary = report.summary();
        assert!(summary.final_accuracy.is_some(), "accuracy probe attached");
        assert!(summary.final_loss.is_some());
        // The probe serves full-train loss, so losses are present on
        // evaluation rounds and absent elsewhere.
        assert!(report.history.rounds[1].loss.is_none());
        assert!(report.history.rounds[10].loss.is_some());
    }

    #[test]
    fn probes_can_be_disabled() {
        let mut s = spec();
        s.probes = ProbeSpec {
            track_optimum: false,
            accuracy: false,
        };
        let report = Scenario::from_spec(s).unwrap().run().unwrap();
        assert!(report.history.rounds[0].distance_to_optimum.is_none());
    }

    /// A `Remote` spec is valid data but not in-process-runnable: building
    /// a `Scenario` from it fails with guidance towards the server.
    #[test]
    fn remote_execution_is_rejected_in_process_with_guidance() {
        let mut s = spec();
        s.execution = ExecutionSpec::remote(None, 0);
        s.validate().unwrap();
        let err = Scenario::from_spec(s).unwrap_err();
        assert!(err.to_string().contains("krum serve"), "got: {err}");
    }

    #[test]
    fn invalid_specs_fail_to_build() {
        let mut bad = spec();
        bad.cluster = ClusterSpec::new(5, 2).unwrap(); // Krum needs 2f+2 < n
        assert!(Scenario::from_spec(bad).is_err());
        assert!(Scenario::from_json("{\"name\": 1}").is_err());
    }

    /// Acceptance: an async-quorum scenario with `quorum = n` and zero
    /// latency reproduces the Sequential trajectory exactly, through the
    /// declarative API.
    #[test]
    fn async_full_quorum_scenario_matches_sequential() {
        let sequential = Scenario::from_spec(spec()).unwrap().run().unwrap();
        let mut async_spec = spec();
        async_spec.execution = ExecutionSpec::AsyncQuorum {
            quorum: 9,
            max_staleness: 2,
            reuse_stale: false,
            network: NetworkModel {
                latency: LatencyModel::Constant { nanos: 0 },
                nanos_per_byte: 0.0,
            },
        };
        let report = Scenario::from_spec(async_spec).unwrap().run().unwrap();
        assert_eq!(report.final_params, sequential.final_params);
        for (a, b) in report.history.rounds.iter().zip(&sequential.history.rounds) {
            assert_eq!(a.aggregate_norm, b.aggregate_norm);
            assert_eq!(a.selected_worker, b.selected_worker);
        }
        assert!((report.history.mean_quorum_size() - 9.0).abs() < 1e-12);
    }

    /// A partial quorum with a straggling adversary runs end-to-end through
    /// the declarative API and populates the staleness stats.
    #[test]
    fn async_partial_quorum_scenario_reports_staleness() {
        let mut s = spec();
        s.attack = AttackSpec::Straggler { scale: 3.0 };
        s.execution = ExecutionSpec::AsyncQuorum {
            quorum: 7,
            max_staleness: 2,
            reuse_stale: false,
            network: NetworkModel {
                latency: LatencyModel::Pareto {
                    min_nanos: 10_000,
                    alpha: 1.1,
                },
                nanos_per_byte: 0.05,
            },
        };
        let report = Scenario::from_spec(s.clone()).unwrap().run().unwrap();
        assert!(report.final_params.is_finite());
        assert!((report.history.mean_quorum_size() - 7.0).abs() < 1e-12);
        let record = &report.history.rounds[0];
        assert_eq!(record.quorum_size, Some(7));
        assert!(record.dropped_stale.is_some());
        // The CSV export carries the staleness columns for every round.
        let csv = report.to_csv();
        assert!(csv.contains("quorum_size"));
        assert!(csv.contains("pending_carryover"));
        // Deterministic: a second run of the same spec is bit-identical.
        let again = Scenario::from_spec(s).unwrap().run().unwrap();
        assert_eq!(again.final_params, report.final_params);
    }

    /// Reuse mode through the declarative API: a full-refresh reuse run
    /// (quorum = n, zero staleness, zero latency) reproduces Sequential
    /// bit-for-bit, and a slow refresh pace (quorum < n - f, illegal for
    /// the barrier mode) runs end-to-end aggregating the full table.
    #[test]
    fn reuse_stale_scenario_matches_sequential_and_accepts_slow_refresh() {
        let sequential = Scenario::from_spec(spec()).unwrap().run().unwrap();
        let mut full = spec();
        full.execution = ExecutionSpec::AsyncQuorum {
            quorum: 9,
            max_staleness: 0,
            network: NetworkModel {
                latency: LatencyModel::Constant { nanos: 0 },
                nanos_per_byte: 0.0,
            },
            reuse_stale: true,
        };
        let report = Scenario::from_spec(full).unwrap().run().unwrap();
        assert_eq!(report.final_params, sequential.final_params);
        for (a, b) in report.history.rounds.iter().zip(&sequential.history.rounds) {
            assert_eq!(a.aggregate_norm, b.aggregate_norm);
            assert_eq!(a.selected_worker, b.selected_worker);
        }

        // Refreshing 3 of 9 per round: stale table entries enter the
        // aggregation, bounded by max_staleness.
        let mut slow = spec();
        slow.attack = AttackSpec::Straggler { scale: 3.0 };
        slow.execution = ExecutionSpec::AsyncQuorum {
            quorum: 3,
            max_staleness: 4,
            network: NetworkModel {
                latency: LatencyModel::Pareto {
                    min_nanos: 10_000,
                    alpha: 1.1,
                },
                nanos_per_byte: 0.05,
            },
            reuse_stale: true,
        };
        let report = Scenario::from_spec(slow.clone()).unwrap().run().unwrap();
        assert!(report.final_params.is_finite());
        // Round 0 cold-starts the table (everyone refreshes); afterwards
        // at least the configured pace refreshes, plus staleness-forced
        // entries — so the mean sits between the pace and n.
        assert_eq!(report.history.rounds[0].quorum_size, Some(9));
        assert!(report
            .history
            .rounds
            .iter()
            .all(|r| r.quorum_size.unwrap_or(0) >= 3));
        assert!(report.history.mean_quorum_size() < 9.0);
        assert!(report
            .history
            .rounds
            .iter()
            .skip(1)
            .any(|r| r.stale_in_quorum.unwrap_or(0) > 0));
        let again = Scenario::from_spec(slow).unwrap().run().unwrap();
        assert_eq!(again.final_params, report.final_params);
    }

    /// A hierarchical rule runs through the declarative API under attack
    /// and converges like flat Krum does, deterministically per seed.
    #[test]
    fn hierarchical_scenario_runs_deterministically() {
        let mut s = spec();
        s.cluster = krum_dist::ClusterSpec::new(24, 3).unwrap();
        s.rule = RuleSpec::Hierarchical {
            groups: 4,
            inner: krum_core::StageRule::Krum,
            outer: krum_core::StageRule::Krum,
        };
        let report = Scenario::from_spec(s.clone()).unwrap().run().unwrap();
        assert!(report.final_params.is_finite());
        let summary = report.history.summary();
        assert!(
            summary.final_loss < summary.initial_loss,
            "hierarchical Krum must make progress: {summary:?}"
        );
        // Selection metadata survives the two-stage composition: every
        // round records which worker the outer stage picked.
        assert!(report
            .history
            .rounds
            .iter()
            .all(|r| r.selected_worker.is_some()));
        let again = Scenario::from_spec(s).unwrap().run().unwrap();
        assert_eq!(again.final_params, report.final_params);
    }
}
