//! The scenario run report and its exports.

use std::path::Path;

use krum_metrics::{ConvergenceSummary, RoundRecord, TrainingHistory};
use krum_tensor::Vector;
use serde::{Deserialize, Serialize};

use crate::error::ScenarioError;
use crate::spec::ScenarioSpec;

/// Escapes one metadata value for the CSV `#` comment header: backslashes,
/// line breaks and commas are backslash-escaped (`\\`, `\n`, `\r`, `\,`) so
/// every `# key: value` entry stays exactly one machine-parseable line no
/// matter what the scenario name or a display string contains.
pub fn escape_metadata(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for c in value.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            ',' => out.push_str("\\,"),
            other => out.push(other),
        }
    }
    out
}

/// Everything one [`Scenario::run`](crate::Scenario::run) produced: the spec
/// it ran, the final parameters, the full per-round history (with per-phase
/// timings) and the wall-clock total.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScenarioReport {
    /// The spec the run was built from (round-trippable: re-running it
    /// reproduces this report's trajectory exactly).
    pub spec: ScenarioSpec,
    /// Final parameter vector `x_T`.
    pub final_params: Vector,
    /// One record per round, with convergence metrics and phase timings.
    pub history: TrainingHistory,
    /// Wall-clock duration of the whole run in nanoseconds (engine rounds
    /// only; excludes data generation and wiring).
    pub wall_nanos: u128,
}

impl ScenarioReport {
    /// Convergence summary over the recorded rounds.
    pub fn summary(&self) -> ConvergenceSummary {
        self.history.summary()
    }

    /// Human-readable metadata describing the run — the scenario's key/value
    /// header, using the `Display` forms of the rule, attack, schedule and
    /// execution strategy.
    pub fn metadata(&self) -> Vec<(&'static str, String)> {
        let spec = &self.spec;
        let mut entries = vec![
            ("scenario", spec.name.clone()),
            ("rule", spec.rule.to_string()),
            ("attack", spec.attack.to_string()),
            (
                "cluster",
                format!(
                    "n={}, f={}",
                    spec.cluster.workers(),
                    spec.cluster.byzantine()
                ),
            ),
            ("dim", self.final_params.dim().to_string()),
            ("schedule", spec.schedule.to_string()),
            ("execution", spec.execution.to_string()),
            ("rounds", spec.rounds.to_string()),
            ("eval_every", spec.eval_every.to_string()),
            ("seed", spec.seed.to_string()),
            ("wall_ms", format!("{:.3}", self.wall_nanos as f64 / 1e6)),
            (
                "aggregate_ns_mean",
                format!("{:.0}", self.history.mean_aggregation_nanos()),
            ),
            (
                "aggregate_ns_p99",
                format!("{:.0}", self.history.p99_aggregation_nanos()),
            ),
        ];
        if let Some(plan) = &spec.fault_plan {
            entries.push(("fault_plan", plan.headline()));
        }
        if let Some(compression) = &spec.compression {
            entries.push(("compression", compression.to_string()));
        }
        if let Some(displacement) = self.history.final_attacker_displacement() {
            entries.push(("final_attacker_displacement", format!("{displacement:.6}")));
        }
        entries
    }

    /// The metadata block as `# key: value` comment lines. Free-form and
    /// display-derived values (scenario name, rule/attack/schedule/execution
    /// displays) are escaped (see [`escape_metadata`]) so embedded newlines
    /// or commas can never break the one-line-per-key comment structure or
    /// a comma-splitting consumer. The `cluster` value keeps its structural
    /// `n=…, f=…` comma, and `compression` keeps the structural commas of
    /// its spec grammar (`bfp:block=64,bits=12`) so the value parses back
    /// through `CompressionSpec::from_str`; the numeric fields cannot
    /// contain either.
    pub fn header(&self) -> String {
        let mut out = String::new();
        for (key, value) in self.metadata() {
            let value = match key {
                "scenario" | "rule" | "attack" | "schedule" | "execution" | "fault_plan" => {
                    escape_metadata(&value)
                }
                _ => value,
            };
            out.push_str(&format!("# {key}: {value}\n"));
        }
        out
    }

    /// Renders the report as CSV: the `#`-prefixed metadata header followed
    /// by the standard round-record table.
    pub fn to_csv(&self) -> String {
        let mut out = self.header();
        out.push_str(RoundRecord::csv_header());
        out.push('\n');
        for record in &self.history.rounds {
            out.push_str(&record.to_csv_row());
            out.push('\n');
        }
        out
    }

    /// Renders the full report (spec included) as pretty-printed JSON.
    ///
    /// # Errors
    ///
    /// Returns [`ScenarioError::Json`] if serialisation fails.
    pub fn to_json(&self) -> Result<String, ScenarioError> {
        Ok(serde_json::to_string_pretty(self)?)
    }

    /// Writes the CSV rendering to `path`.
    ///
    /// # Errors
    ///
    /// Returns [`ScenarioError::Io`] on filesystem errors.
    pub fn write_csv(&self, path: impl AsRef<Path>) -> Result<(), ScenarioError> {
        std::fs::write(path, self.to_csv())?;
        Ok(())
    }

    /// Writes the JSON rendering to `path`.
    ///
    /// # Errors
    ///
    /// Returns [`ScenarioError::Json`] or [`ScenarioError::Io`].
    pub fn write_json(&self, path: impl AsRef<Path>) -> Result<(), ScenarioError> {
        std::fs::write(path, self.to_json()?)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{ExecutionSpec, InitSpec, ProbeSpec};
    use crate::Scenario;
    use krum_attacks::AttackSpec;
    use krum_core::RuleSpec;
    use krum_dist::{ClusterSpec, LearningRateSchedule};
    use krum_models::EstimatorSpec;

    fn report() -> ScenarioReport {
        let spec = ScenarioSpec {
            name: "report-test".into(),
            cluster: ClusterSpec::new(9, 2).unwrap(),
            rule: RuleSpec::MultiKrum { m: Some(3) },
            attack: AttackSpec::GaussianNoise { std: 10.0 },
            estimator: EstimatorSpec::GaussianQuadratic { dim: 4, sigma: 0.1 },
            schedule: LearningRateSchedule::Constant { gamma: 0.2 },
            execution: ExecutionSpec::Sequential,
            rounds: 6,
            eval_every: 2,
            seed: 1,
            init: InitSpec::Fill { value: 1.0 },
            probes: ProbeSpec::default(),
            fault_plan: None,
            compression: None,
        };
        Scenario::from_spec(spec).unwrap().run().unwrap()
    }

    #[test]
    fn csv_has_readable_metadata_then_standard_table() {
        let r = report();
        let csv = r.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        // Metadata first, all comment-prefixed and human-readable.
        assert!(lines[0].starts_with("# scenario: report-test"));
        assert!(csv.contains("# rule: multi-krum:m=3"));
        assert!(csv.contains("# attack: gaussian-noise:std=10"));
        assert!(csv.contains("# schedule: constant(gamma=0.2)"));
        assert!(csv.contains("# execution: sequential"));
        assert!(csv.contains("# cluster: n=9, f=2"));
        // Satellite: the aggregate-time statistics ride every CSV header.
        assert!(csv.contains("# aggregate_ns_mean: "));
        assert!(csv.contains("# aggregate_ns_p99: "));
        // Then the standard header and one row per round.
        let header_idx = lines
            .iter()
            .position(|l| l.starts_with("round,loss"))
            .expect("csv header present");
        assert_eq!(lines.len() - header_idx - 1, 6, "one row per round");
        let cells = RoundRecord::csv_header().split(',').count();
        for row in &lines[header_idx + 1..] {
            assert_eq!(row.split(',').count(), cells, "well-formed row: {row}");
        }
    }

    /// Satellite: a free-form scenario name (or any display-derived value)
    /// containing commas, newlines or backslashes cannot break the
    /// one-line-per-key `#` metadata structure.
    #[test]
    fn metadata_header_escapes_newlines_and_commas() {
        assert_eq!(escape_metadata("plain"), "plain");
        assert_eq!(escape_metadata("a,b"), "a\\,b");
        assert_eq!(escape_metadata("a\nb\r"), "a\\nb\\r");
        assert_eq!(escape_metadata("a\\n"), "a\\\\n");

        let mut r = report();
        r.spec.name = "evil,name\nsecond line\\".into();
        let header = r.header();
        assert_eq!(
            header.lines().count(),
            r.metadata().len(),
            "one comment line per metadata key, no matter the name"
        );
        assert!(header.lines().all(|l| l.starts_with("# ")));
        assert!(header.contains("# scenario: evil\\,name\\nsecond line\\\\"));
        // The cluster value keeps its structural comma.
        assert!(header.contains("# cluster: n=9, f=2"));
        // The full CSV stays machine-parseable: comment lines then
        // constant-arity rows.
        let csv = r.to_csv();
        let cells = RoundRecord::csv_header().split(',').count();
        for line in csv.lines().filter(|l| !l.starts_with('#')) {
            assert_eq!(line.split(',').count(), cells, "row: {line}");
        }
    }

    /// Satellite: the free-form fault-plan description rides the same
    /// escaping path, so a scripted-chaos CSV stays one line per key.
    #[test]
    fn fault_plan_description_is_escaped_in_metadata() {
        let mut r = report();
        assert!(
            !r.header().contains("fault_plan"),
            "plans absent from un-chaotic headers"
        );
        r.spec.fault_plan = Some(crate::FaultPlan {
            description: "drop conn 2,\nthen kill\\resume".into(),
            faults: Vec::new(),
            kill_server_after_round: Some(1),
        });
        let header = r.header();
        assert_eq!(
            header.lines().count(),
            r.metadata().len(),
            "one comment line per metadata key, plan included"
        );
        assert!(header.contains("# fault_plan: drop conn 2\\,\\nthen kill\\\\resume"));
        // An empty description falls back to the structured headline.
        r.spec.fault_plan.as_mut().unwrap().description.clear();
        assert!(r
            .header()
            .contains("# fault_plan: 0 fault(s) + server kill/resume"));
    }

    /// The negotiated codec rides the CSV `#` metadata so a consumer can
    /// tell a quantized run from a raw one without the spec JSON.
    #[test]
    fn compression_spec_rides_the_metadata_header() {
        let mut r = report();
        assert!(
            !r.header().contains("compression"),
            "codec absent from uncompressed headers"
        );
        r.spec.compression = Some(krum_compress::CompressionSpec::Bfp {
            block: 64,
            bits: 12,
        });
        assert!(r.header().contains("# compression: bfp:block=64,bits=12"));
    }

    #[test]
    fn json_round_trips_spec_and_history() {
        let r = report();
        let json = r.to_json().unwrap();
        let back: ScenarioReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back, r);
        assert_eq!(back.spec.rule, RuleSpec::MultiKrum { m: Some(3) });
    }

    #[test]
    fn files_are_written() {
        let dir = std::env::temp_dir().join(format!("krum-scenario-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let r = report();
        r.write_csv(dir.join("run.csv")).unwrap();
        r.write_json(dir.join("run.json")).unwrap();
        assert!(std::fs::read_to_string(dir.join("run.csv"))
            .unwrap()
            .contains("round,loss"));
        assert!(std::fs::read_to_string(dir.join("run.json"))
            .unwrap()
            .contains("\"final_params\""));
        std::fs::remove_dir_all(&dir).unwrap();
        assert!(r.write_csv("/nonexistent-dir/OUT/run.csv").is_err());
    }
}
