//! The serialisable scenario specification.

use krum_attacks::AttackSpec;
use krum_core::RuleSpec;
use krum_dist::{ClusterSpec, ExecutionStrategy, LearningRateSchedule, NetworkModel};
use krum_models::EstimatorSpec;
use krum_tensor::InitStrategy;
use serde::{Deserialize, Serialize};

use crate::error::ScenarioError;

/// How the round pipeline executes — the serialisable face of
/// [`ExecutionStrategy`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ExecutionSpec {
    /// Honest workers run sequentially on the server thread.
    Sequential,
    /// Honest gradients fan out over the thread pool and the simulated
    /// network is charged to the round timings.
    Threaded {
        /// The simulated network model.
        network: NetworkModel,
    },
    /// Async partial-quorum rounds: each round aggregates the fastest
    /// `quorum ≥ n − f` arrivals under the simulated network and carries
    /// stragglers into later rounds up to `max_staleness`. The aggregation
    /// rule is built for `quorum` proposals (Krum's `2f + 2 < n` is
    /// re-validated against the quorum size).
    AsyncQuorum {
        /// How many proposals close a round (`n − f ≤ quorum ≤ n`).
        quorum: usize,
        /// Maximum age (in rounds) an in-flight proposal may reach and still
        /// be aggregated.
        max_staleness: usize,
        /// The simulated network deciding arrival order and charge.
        network: NetworkModel,
    },
    /// Proposals arrive as bytes on real sockets and rounds close on real
    /// arrival order — the `krum-server` subsystem (`krum serve` /
    /// `krum loopback`). There is no simulated network: latencies are
    /// whatever the transport delivers, recorded in the `arrival_nanos`
    /// and `wire_bytes` columns. Not runnable by the in-process
    /// [`Scenario::run`](crate::Scenario::run).
    ///
    /// Note on timing: over a real wire the omniscient adversary can only
    /// respond *after* observing the honest proposals, so its vectors reach
    /// a partial quorum as carried stragglers — exactly the in-process
    /// `straggler` timing. With `quorum = n − f` and `max_staleness = 0`
    /// the server never waits for them and every Byzantine proposal ages
    /// out: the attack is structurally dropped (visible in the
    /// `dropped_stale` column), which says something about staleness
    /// bounds as a defence, not about the rule under test. Raise
    /// `max_staleness` (or the quorum) to let the adversary compete.
    Remote {
        /// Proposals closing a round: `Some(q)` closes at the `q`-th
        /// arrival (`n − f ≤ q ≤ n`) with PR-4 staleness/carry-over
        /// semantics; `None` waits for the full barrier of `n`.
        quorum: Option<usize>,
        /// Maximum age (in rounds) an in-flight proposal may reach and
        /// still be aggregated (only meaningful with a partial quorum).
        max_staleness: usize,
    },
}

/// Canonical lowercase names of every execution strategy the spec registry
/// knows (shown by `krum list`).
pub const EXECUTION_NAMES: &[&str] = &["sequential", "threaded", "async-quorum", "remote"];

impl ExecutionSpec {
    /// The in-process engine strategy this spec selects, or `None` for
    /// [`ExecutionSpec::Remote`] (which only the `krum-server` subsystem
    /// can execute).
    pub fn strategy(&self) -> Option<ExecutionStrategy> {
        match *self {
            Self::Sequential => Some(ExecutionStrategy::Sequential),
            Self::Threaded { network } => Some(ExecutionStrategy::Threaded { network }),
            Self::AsyncQuorum {
                quorum,
                max_staleness,
                network,
            } => Some(ExecutionStrategy::AsyncQuorum {
                quorum,
                max_staleness,
                network,
            }),
            Self::Remote { .. } => None,
        }
    }

    /// How many proposals the aggregation rule sees per round under this
    /// execution: the quorum size for async/remote-quorum execution, the
    /// full cluster otherwise. The rule registry is driven with this value
    /// so rule preconditions hold against what is actually aggregated.
    pub fn aggregation_arity(&self, n: usize) -> usize {
        match *self {
            Self::AsyncQuorum { quorum, .. }
            | Self::Remote {
                quorum: Some(quorum),
                ..
            } => quorum,
            _ => n,
        }
    }

    /// The simulated network, when this execution carries one (remote
    /// execution runs on the real one).
    pub fn network(&self) -> Option<NetworkModel> {
        match *self {
            Self::Sequential | Self::Remote { .. } => None,
            Self::Threaded { network } | Self::AsyncQuorum { network, .. } => Some(network),
        }
    }
}

impl std::fmt::Display for ExecutionSpec {
    fn fmt(&self, out: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Remote {
                quorum: None,
                max_staleness: _,
            } => out.write_str("remote(barrier)"),
            Self::Remote {
                quorum: Some(q),
                max_staleness,
            } => write!(out, "remote(q={q}, staleness<={max_staleness})"),
            other => other
                .strategy()
                .expect("non-remote specs have a strategy")
                .fmt(out),
        }
    }
}

/// Where the parameter trajectory starts.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum InitSpec {
    /// `x_0 = 0`.
    Zeros,
    /// `x_0 = (value, …, value)`.
    Fill {
        /// Per-coordinate start value.
        value: f64,
    },
    /// `x_0` sampled by the workload's model with the given strategy (e.g.
    /// Xavier for MLPs), from its own seed so the draw is reproducible and
    /// independent of the worker streams.
    Sample {
        /// The initialisation strategy.
        strategy: InitStrategy,
        /// Seed of the initialisation draw.
        seed: u64,
    },
}

/// Which optional measurements the scenario records.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProbeSpec {
    /// Record `‖x_t − x*‖` when the workload has an analytic optimum.
    pub track_optimum: bool,
    /// Attach the workload's held-out accuracy probe, when it has one.
    pub accuracy: bool,
}

impl Default for ProbeSpec {
    fn default() -> Self {
        Self {
            track_optimum: true,
            accuracy: true,
        }
    }
}

/// A complete, serialisable description of one experiment: the grid cell
/// `(rule F, attack, cluster shape, workload, schedule, execution, seed)`
/// the paper sweeps, as one value.
///
/// A spec can come from JSON (`krum run spec.json`), from the fluent
/// [`ScenarioBuilder`](crate::ScenarioBuilder), or be constructed literally;
/// all three produce bit-identical parameter trajectories for the same
/// field values because every random stream derives from `seed`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScenarioSpec {
    /// Free-form scenario label used in reports and file names.
    pub name: String,
    /// Cluster shape: `n` workers, `f` Byzantine.
    pub cluster: ClusterSpec,
    /// The aggregation (choice) function `F`.
    pub rule: RuleSpec,
    /// The Byzantine strategy.
    pub attack: AttackSpec,
    /// What the honest workers compute.
    pub estimator: EstimatorSpec,
    /// Learning-rate schedule `γ_t`.
    pub schedule: LearningRateSchedule,
    /// Sequential or threaded execution.
    pub execution: ExecutionSpec,
    /// Number of synchronous rounds.
    pub rounds: usize,
    /// Evaluation cadence (≥ 1; the final round is always evaluated).
    pub eval_every: usize,
    /// Master seed for every random stream.
    pub seed: u64,
    /// Where the trajectory starts.
    pub init: InitSpec,
    /// Optional measurements.
    pub probes: ProbeSpec,
}

impl ScenarioSpec {
    /// Parses a spec from its JSON rendering.
    ///
    /// # Errors
    ///
    /// Returns [`ScenarioError::Json`] for malformed JSON and
    /// [`ScenarioError::InvalidSpec`] when the parsed spec fails
    /// [`ScenarioSpec::validate`].
    pub fn from_json(json: &str) -> Result<Self, ScenarioError> {
        let spec: Self = serde_json::from_str(json)?;
        spec.validate()?;
        Ok(spec)
    }

    /// Renders the spec as pretty-printed JSON.
    ///
    /// # Errors
    ///
    /// Returns [`ScenarioError::Json`] if serialisation fails.
    pub fn to_json(&self) -> Result<String, ScenarioError> {
        Ok(serde_json::to_string_pretty(self)?)
    }

    /// Cross-checks every constraint the runtime relies on, without building
    /// anything: cluster shape, rule/cluster compatibility (e.g. Krum's
    /// `2f + 2 < n`), attack and workload parameters, schedule positivity,
    /// evaluation cadence and the execution model.
    ///
    /// Deserialisation does not validate on its own (a JSON file can encode
    /// any field values); every build/run entry point calls this first.
    ///
    /// # Errors
    ///
    /// Returns a [`ScenarioError`] describing the first violated constraint.
    pub fn validate(&self) -> Result<(), ScenarioError> {
        // The cluster may have been deserialised around its constructor.
        let cluster = ClusterSpec::new(self.cluster.workers(), self.cluster.byzantine())?;
        self.estimator.validate()?;
        let dim = self.estimator.dim()?;
        // Async/remote execution narrows what the rule aggregates: its
        // preconditions must hold against the quorum size, not n.
        let narrowed_quorum = match self.execution {
            ExecutionSpec::AsyncQuorum { quorum, .. }
            | ExecutionSpec::Remote {
                quorum: Some(quorum),
                ..
            } => Some(quorum),
            _ => None,
        };
        if let Some(quorum) = narrowed_quorum {
            if quorum < cluster.honest() || quorum > cluster.workers() {
                return Err(ScenarioError::invalid(format!(
                    "quorum must satisfy n - f <= quorum <= n, got quorum = {quorum} \
                     with n = {}, f = {}",
                    cluster.workers(),
                    cluster.byzantine()
                )));
            }
        }
        // Building the rule and the attack runs their own cross-checks
        // against (arity, f) and d; the built values are discarded.
        let arity = self.execution.aggregation_arity(cluster.workers());
        self.rule.build(arity, cluster.byzantine())?;
        self.attack.build(dim)?;
        self.attack.validate_for_cluster(cluster.byzantine())?;
        if self.rounds == 0 {
            return Err(ScenarioError::invalid("rounds must be >= 1"));
        }
        if self.eval_every == 0 {
            return Err(ScenarioError::invalid(
                "eval_every must be >= 1 (use eval_every = rounds to evaluate only the final round)",
            ));
        }
        self.schedule.validate()?;
        if let Some(network) = self.execution.network() {
            network.validate()?;
        }
        match self.init {
            InitSpec::Zeros => {}
            InitSpec::Fill { value } => {
                if !value.is_finite() {
                    return Err(ScenarioError::invalid("init fill value must be finite"));
                }
            }
            InitSpec::Sample { strategy, .. } => match strategy {
                InitStrategy::Gaussian { std } if !(std.is_finite() && std >= 0.0) => {
                    return Err(ScenarioError::invalid(
                        "init gaussian std must be finite and >= 0",
                    ));
                }
                InitStrategy::Uniform { limit } if !(limit.is_finite() && limit >= 0.0) => {
                    return Err(ScenarioError::invalid(
                        "init uniform limit must be finite and >= 0",
                    ));
                }
                _ => {}
            },
        }
        Ok(())
    }

    /// Model dimension `d` of the scenario's workload.
    ///
    /// # Errors
    ///
    /// Returns [`ScenarioError::Model`] when the workload spec is invalid.
    pub fn dim(&self) -> Result<usize, ScenarioError> {
        Ok(self.estimator.dim()?)
    }

    /// A short single-line description (`rule vs attack (n=…, f=…)`).
    pub fn headline(&self) -> String {
        format!(
            "{} vs {} (n={}, f={}, rounds={}, seed={})",
            self.rule,
            self.attack,
            self.cluster.workers(),
            self.cluster.byzantine(),
            self.rounds,
            self.seed
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use krum_dist::LatencyModel;

    pub(crate) fn spec() -> ScenarioSpec {
        ScenarioSpec {
            name: "unit".into(),
            cluster: ClusterSpec::new(9, 2).unwrap(),
            rule: RuleSpec::Krum,
            attack: AttackSpec::SignFlip { scale: 3.0 },
            estimator: EstimatorSpec::GaussianQuadratic { dim: 6, sigma: 0.3 },
            schedule: LearningRateSchedule::Constant { gamma: 0.2 },
            execution: ExecutionSpec::Sequential,
            rounds: 20,
            eval_every: 5,
            seed: 7,
            init: InitSpec::Fill { value: 1.5 },
            probes: ProbeSpec::default(),
        }
    }

    #[test]
    fn valid_spec_round_trips_through_json() {
        let s = spec();
        s.validate().unwrap();
        let json = s.to_json().unwrap();
        let back = ScenarioSpec::from_json(&json).unwrap();
        assert_eq!(back, s);
        assert!(json.contains("\"rule\": \"krum\""));
        assert!(json.contains("sign-flip:scale=3"));
        assert!(s.headline().contains("krum vs sign-flip"));
        assert_eq!(s.dim().unwrap(), 6);
    }

    #[test]
    fn validation_rejects_inconsistent_specs() {
        // Krum needs 2f + 2 < n.
        let mut bad = spec();
        bad.cluster = ClusterSpec::new(5, 2).unwrap();
        assert!(matches!(bad.validate(), Err(ScenarioError::Rule(_))));

        let mut bad = spec();
        bad.rounds = 0;
        assert!(matches!(bad.validate(), Err(ScenarioError::InvalidSpec(_))));

        let mut bad = spec();
        bad.eval_every = 0;
        assert!(bad.validate().is_err());

        let mut bad = spec();
        bad.schedule = LearningRateSchedule::Constant { gamma: -1.0 };
        assert!(bad.validate().is_err());

        let mut bad = spec();
        bad.attack = AttackSpec::SignFlip { scale: -1.0 };
        assert!(matches!(bad.validate(), Err(ScenarioError::Attack(_))));

        let mut bad = spec();
        bad.estimator = EstimatorSpec::GaussianQuadratic { dim: 0, sigma: 0.1 };
        assert!(matches!(bad.validate(), Err(ScenarioError::Model(_))));

        let mut bad = spec();
        bad.init = InitSpec::Fill {
            value: f64::INFINITY,
        };
        assert!(bad.validate().is_err());

        let mut bad = spec();
        bad.execution = ExecutionSpec::Threaded {
            network: NetworkModel {
                latency: LatencyModel::Constant { nanos: 100 },
                nanos_per_byte: f64::NAN,
            },
        };
        assert!(bad.validate().is_err());
    }

    #[test]
    fn malformed_cluster_json_is_rejected_not_panicked() {
        // f >= n encodes fine in JSON but must fail validation.
        let json = spec().to_json().unwrap().replace("\"f\": 2", "\"f\": 9");
        assert!(ScenarioSpec::from_json(&json).is_err());
        // Garbage JSON is a structured error.
        assert!(ScenarioSpec::from_json("{not json").is_err());
        assert!(ScenarioSpec::from_json("{}").is_err());
    }

    #[test]
    fn execution_spec_displays_via_strategy() {
        assert_eq!(ExecutionSpec::Sequential.to_string(), "sequential");
        let threaded = ExecutionSpec::Threaded {
            network: NetworkModel {
                latency: LatencyModel::Constant { nanos: 500 },
                nanos_per_byte: 0.5,
            },
        };
        let text = threaded.to_string();
        assert!(text.starts_with("threaded("));
        assert!(text.contains("constant(500ns)"));
        assert!(text.contains("0.5ns/byte"));
        let quorum = ExecutionSpec::AsyncQuorum {
            quorum: 7,
            max_staleness: 2,
            network: NetworkModel {
                latency: LatencyModel::Pareto {
                    min_nanos: 1_000,
                    alpha: 1.1,
                },
                nanos_per_byte: 0.1,
            },
        };
        let text = quorum.to_string();
        assert!(text.starts_with("async-quorum(q=7, staleness<=2"));
        assert!(text.contains("pareto"));
    }

    fn async_execution(quorum: usize) -> ExecutionSpec {
        ExecutionSpec::AsyncQuorum {
            quorum,
            max_staleness: 2,
            network: NetworkModel {
                latency: LatencyModel::Uniform {
                    min_nanos: 1_000,
                    max_nanos: 100_000,
                },
                nanos_per_byte: 0.0,
            },
        }
    }

    #[test]
    fn async_quorum_specs_round_trip_and_cross_validate() {
        // n = 9, f = 2: quorum must sit in [7, 9] and satisfy the rule's
        // precondition against the quorum size.
        let mut s = spec();
        s.execution = async_execution(7);
        s.validate().unwrap();
        assert_eq!(s.execution.aggregation_arity(9), 7);
        let json = s.to_json().unwrap();
        let back = ScenarioSpec::from_json(&json).unwrap();
        assert_eq!(back, s);

        let mut bad = spec();
        bad.execution = async_execution(6); // < n - f
        assert!(bad.validate().is_err());
        let mut bad = spec();
        bad.execution = async_execution(10); // > n
        assert!(bad.validate().is_err());

        // Krum needs 2f + 2 < quorum: f = 3 at n = 10 is fine for the
        // barrier (2·3 + 2 < 10) but not for a quorum of 7 (2·3 + 2 >= 7).
        let mut bad = spec();
        bad.cluster = ClusterSpec::new(10, 3).unwrap();
        bad.execution = async_execution(7);
        assert!(
            matches!(bad.validate(), Err(ScenarioError::Rule(_))),
            "Krum's precondition must be held against the quorum size"
        );
        let mut ok = spec();
        ok.cluster = ClusterSpec::new(10, 3).unwrap();
        ok.execution = async_execution(9);
        ok.validate().unwrap();

        // The Pareto tail index is validated through the spec too.
        let mut bad = spec();
        bad.execution = ExecutionSpec::AsyncQuorum {
            quorum: 7,
            max_staleness: 2,
            network: NetworkModel {
                latency: LatencyModel::Pareto {
                    min_nanos: 10,
                    alpha: f64::NAN,
                },
                nanos_per_byte: 0.0,
            },
        };
        assert!(bad.validate().is_err());
    }

    /// Tentpole: `Remote` execution round-trips, validates its quorum
    /// bounds against the cluster, holds the rule precondition against the
    /// remote arity, and deliberately has no in-process strategy.
    #[test]
    fn remote_specs_validate_display_and_round_trip() {
        let mut s = spec();
        s.execution = ExecutionSpec::Remote {
            quorum: None,
            max_staleness: 0,
        };
        s.validate().unwrap();
        assert_eq!(s.execution.aggregation_arity(9), 9);
        assert!(s.execution.network().is_none());
        assert!(s.execution.strategy().is_none());
        assert_eq!(s.execution.to_string(), "remote(barrier)");
        let json = s.to_json().unwrap();
        assert_eq!(ScenarioSpec::from_json(&json).unwrap(), s);

        let mut q = spec();
        q.execution = ExecutionSpec::Remote {
            quorum: Some(7),
            max_staleness: 2,
        };
        q.validate().unwrap();
        assert_eq!(q.execution.aggregation_arity(9), 7);
        assert_eq!(q.execution.to_string(), "remote(q=7, staleness<=2)");

        for bad_quorum in [6, 10] {
            let mut bad = spec();
            bad.execution = ExecutionSpec::Remote {
                quorum: Some(bad_quorum),
                max_staleness: 2,
            };
            assert!(
                bad.validate().is_err(),
                "remote quorum {bad_quorum} must violate n - f <= q <= n at n = 9, f = 2"
            );
        }

        // Krum's 2f + 2 < n precondition is held against the remote arity:
        // f = 3 at n = 10 passes the barrier but not a quorum of 7.
        let mut bad = spec();
        bad.cluster = ClusterSpec::new(10, 3).unwrap();
        bad.execution = ExecutionSpec::Remote {
            quorum: Some(7),
            max_staleness: 1,
        };
        assert!(matches!(bad.validate(), Err(ScenarioError::Rule(_))));

        assert!(EXECUTION_NAMES.contains(&"remote"));
        assert_eq!(EXECUTION_NAMES.len(), 4);
    }

    /// Satellite: the Figure-2 collusion with f = 1 degenerates to zero
    /// decoys; scenario cross-validation rejects it with a clear error.
    #[test]
    fn collusion_with_f1_is_rejected_by_scenario_validation() {
        let mut bad = spec();
        bad.cluster = ClusterSpec::new(9, 1).unwrap();
        bad.attack = AttackSpec::Collusion { magnitude: 100.0 };
        let err = bad.validate().unwrap_err();
        assert!(
            matches!(err, ScenarioError::Attack(_)),
            "expected an attack cross-validation error, got: {err}"
        );
        assert!(err.to_string().contains("f >= 2"), "got: {err}");
        // f = 2 runs the real construction.
        let mut ok = spec();
        ok.cluster = ClusterSpec::new(9, 2).unwrap();
        ok.attack = AttackSpec::Collusion { magnitude: 100.0 };
        ok.validate().unwrap();
    }
}
