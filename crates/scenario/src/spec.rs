//! The serialisable scenario specification.

use krum_attacks::AttackSpec;
use krum_compress::CompressionSpec;
use krum_core::RuleSpec;
use krum_dist::{ClusterSpec, ExecutionStrategy, LearningRateSchedule, NetworkModel};
use krum_models::EstimatorSpec;
use krum_tensor::InitStrategy;
use serde::{DeError, Deserialize, Serialize, Value};

use crate::error::ScenarioError;
use crate::faults::FaultPlan;

/// Default round timeout of remote execution, in seconds: how long a job
/// waits for the next event before declaring the round hung.
pub const DEFAULT_ROUND_TIMEOUT_SECS: u64 = 120;
/// Default handshake timeout, in seconds: how long a freshly accepted
/// socket gets to complete its `Hello`/`Rejoin`.
pub const DEFAULT_HANDSHAKE_TIMEOUT_SECS: u64 = 10;
/// Default staffing timeout, in seconds: how long the server waits for a
/// job's roster to fill before giving up on it.
pub const DEFAULT_STAFFING_TIMEOUT_SECS: u64 = 60;
/// Default heartbeat interval, in seconds: how often the server pings
/// silent workers mid-round.
pub const DEFAULT_HEARTBEAT_SECS: u64 = 5;

/// What a remote job does when an honest worker's connection dies (or its
/// heartbeats go unanswered) mid-round.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CrashPolicy {
    /// Stall the round (bounded by the round timeout) until the worker
    /// rejoins its slot — the bit-identity-preserving default: a crash
    /// plus rejoin reproduces the uninterrupted trajectory exactly.
    WaitForRejoin,
    /// Close the round at the live arrivals, as long as at least `n − f`
    /// distinct workers made the quorum — the crash is absorbed like one
    /// more Byzantine fault, the round is marked degraded, and the
    /// aggregation rule is rebuilt for the smaller arity.
    ProceedAtQuorum,
}

impl std::fmt::Display for CrashPolicy {
    fn fmt(&self, out: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::WaitForRejoin => out.write_str("wait-for-rejoin"),
            Self::ProceedAtQuorum => out.write_str("proceed-at-quorum"),
        }
    }
}

/// How the round pipeline executes — the serialisable face of
/// [`ExecutionStrategy`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ExecutionSpec {
    /// Honest workers run sequentially on the server thread.
    Sequential,
    /// Honest gradients fan out over the thread pool and the simulated
    /// network is charged to the round timings.
    Threaded {
        /// The simulated network model.
        network: NetworkModel,
    },
    /// Async partial-quorum rounds: each round aggregates the fastest
    /// `quorum ≥ n − f` arrivals under the simulated network and carries
    /// stragglers into later rounds up to `max_staleness`. The aggregation
    /// rule is built for `quorum` proposals (Krum's `2f + 2 < n` is
    /// re-validated against the quorum size).
    AsyncQuorum {
        /// How many proposals close a round (`n − f ≤ quorum ≤ n`), or —
        /// in reuse mode — how many table entries refresh per round
        /// (`1 ≤ quorum ≤ n`).
        quorum: usize,
        /// Maximum age (in rounds) an in-flight proposal may reach and still
        /// be aggregated (reuse mode: the forced-refresh bound on table
        /// entries).
        max_staleness: usize,
        /// The simulated network deciding arrival order and charge.
        network: NetworkModel,
        /// Stale-gradient mode: keep every worker's latest proposal and
        /// aggregate all `n` each round; `quorum` paces refreshes and the
        /// incremental Gram cache recomputes only refreshed rows. JSON
        /// default: `false` (pre-existing spec files are unchanged).
        reuse_stale: bool,
    },
    /// Proposals arrive as bytes on real sockets and rounds close on real
    /// arrival order — the `krum-server` subsystem (`krum serve` /
    /// `krum loopback`). There is no simulated network: latencies are
    /// whatever the transport delivers, recorded in the `arrival_nanos`
    /// and `wire_bytes` columns. Not runnable by the in-process
    /// [`Scenario::run`](crate::Scenario::run).
    ///
    /// Note on timing: over a real wire the omniscient adversary can only
    /// respond *after* observing the honest proposals, so its vectors reach
    /// a partial quorum as carried stragglers — exactly the in-process
    /// `straggler` timing. With `quorum = n − f` and `max_staleness = 0`
    /// the server never waits for them and every Byzantine proposal ages
    /// out: the attack is structurally dropped (visible in the
    /// `dropped_stale` column), which says something about staleness
    /// bounds as a defence, not about the rule under test. Raise
    /// `max_staleness` (or the quorum) to let the adversary compete.
    Remote {
        /// Proposals closing a round: `Some(q)` closes at the `q`-th
        /// arrival (`n − f ≤ q ≤ n`) with PR-4 staleness/carry-over
        /// semantics; `None` waits for the full barrier of `n`.
        quorum: Option<usize>,
        /// Maximum age (in rounds) an in-flight proposal may reach and
        /// still be aggregated (only meaningful with a partial quorum).
        max_staleness: usize,
        /// How long the job waits for the next worker event before
        /// declaring the round hung, in seconds (JSON default:
        /// [`DEFAULT_ROUND_TIMEOUT_SECS`]).
        round_timeout_secs: u64,
        /// How long a freshly accepted socket gets to complete its
        /// handshake, in seconds (JSON default:
        /// [`DEFAULT_HANDSHAKE_TIMEOUT_SECS`]).
        handshake_timeout_secs: u64,
        /// How long the server waits for a job's roster to fill, in
        /// seconds (JSON default: [`DEFAULT_STAFFING_TIMEOUT_SECS`]).
        staffing_timeout_secs: u64,
        /// Heartbeat interval for silent workers, in seconds; must be
        /// strictly less than the round timeout (JSON default:
        /// [`DEFAULT_HEARTBEAT_SECS`]).
        heartbeat_secs: u64,
        /// What the job does when an honest worker crashes mid-round
        /// (JSON default: [`CrashPolicy::WaitForRejoin`]).
        on_crash: CrashPolicy,
    },
}

/// Canonical lowercase names of every execution strategy the spec registry
/// knows (shown by `krum list`).
pub const EXECUTION_NAMES: &[&str] = &["sequential", "threaded", "async-quorum", "remote"];

/// The resolved timing/policy knobs of remote execution (defaults for
/// every other execution model, which the loopback server may still
/// serve).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RemoteTimeouts {
    /// Round timeout, in seconds.
    pub round_secs: u64,
    /// Handshake timeout, in seconds.
    pub handshake_secs: u64,
    /// Staffing timeout, in seconds.
    pub staffing_secs: u64,
    /// Heartbeat interval, in seconds.
    pub heartbeat_secs: u64,
    /// Crash policy for honest workers lost mid-round.
    pub on_crash: CrashPolicy,
}

impl Default for RemoteTimeouts {
    fn default() -> Self {
        Self {
            round_secs: DEFAULT_ROUND_TIMEOUT_SECS,
            handshake_secs: DEFAULT_HANDSHAKE_TIMEOUT_SECS,
            staffing_secs: DEFAULT_STAFFING_TIMEOUT_SECS,
            heartbeat_secs: DEFAULT_HEARTBEAT_SECS,
            on_crash: CrashPolicy::WaitForRejoin,
        }
    }
}

impl ExecutionSpec {
    /// A `Remote` spec with the given quorum/staleness and every
    /// timeout/policy knob at its default.
    pub fn remote(quorum: Option<usize>, max_staleness: usize) -> Self {
        let defaults = RemoteTimeouts::default();
        Self::Remote {
            quorum,
            max_staleness,
            round_timeout_secs: defaults.round_secs,
            handshake_timeout_secs: defaults.handshake_secs,
            staffing_timeout_secs: defaults.staffing_secs,
            heartbeat_secs: defaults.heartbeat_secs,
            on_crash: defaults.on_crash,
        }
    }

    /// The timing/policy knobs the serving layer should run this spec
    /// with: the `Remote` fields when this is remote execution, the
    /// defaults otherwise (a loopback serve of a non-remote spec).
    pub fn remote_timeouts(&self) -> RemoteTimeouts {
        match *self {
            Self::Remote {
                round_timeout_secs,
                handshake_timeout_secs,
                staffing_timeout_secs,
                heartbeat_secs,
                on_crash,
                ..
            } => RemoteTimeouts {
                round_secs: round_timeout_secs,
                handshake_secs: handshake_timeout_secs,
                staffing_secs: staffing_timeout_secs,
                heartbeat_secs,
                on_crash,
            },
            _ => RemoteTimeouts::default(),
        }
    }

    /// The in-process engine strategy this spec selects, or `None` for
    /// [`ExecutionSpec::Remote`] (which only the `krum-server` subsystem
    /// can execute).
    pub fn strategy(&self) -> Option<ExecutionStrategy> {
        match *self {
            Self::Sequential => Some(ExecutionStrategy::Sequential),
            Self::Threaded { network } => Some(ExecutionStrategy::Threaded { network }),
            Self::AsyncQuorum {
                quorum,
                max_staleness,
                network,
                reuse_stale,
            } => Some(ExecutionStrategy::AsyncQuorum {
                quorum,
                max_staleness,
                network,
                reuse_stale,
            }),
            Self::Remote { .. } => None,
        }
    }

    /// How many proposals the aggregation rule sees per round under this
    /// execution: the quorum size for async/remote-quorum execution, the
    /// full cluster otherwise. The rule registry is driven with this value
    /// so rule preconditions hold against what is actually aggregated.
    pub fn aggregation_arity(&self, n: usize) -> usize {
        match *self {
            // Reuse mode aggregates the full latest-proposal table.
            Self::AsyncQuorum {
                reuse_stale: true, ..
            } => n,
            Self::AsyncQuorum { quorum, .. }
            | Self::Remote {
                quorum: Some(quorum),
                ..
            } => quorum,
            _ => n,
        }
    }

    /// The simulated network, when this execution carries one (remote
    /// execution runs on the real one).
    pub fn network(&self) -> Option<NetworkModel> {
        match *self {
            Self::Sequential | Self::Remote { .. } => None,
            Self::Threaded { network } | Self::AsyncQuorum { network, .. } => Some(network),
        }
    }
}

// Hand-written, mirroring the derive's externally-tagged layout exactly:
// the `Remote` timeout/policy fields need serde *defaults* (existing
// scenario JSONs predate them), which the vendored derive's required-field
// semantics cannot express.
impl Serialize for ExecutionSpec {
    fn serialize(&self) -> Value {
        let obj = |name: &str, fields: Vec<(String, Value)>| {
            Value::Object(vec![(name.to_string(), Value::Object(fields))])
        };
        match self {
            Self::Sequential => Value::Str("Sequential".into()),
            Self::Threaded { network } => obj(
                "Threaded",
                vec![("network".into(), Serialize::serialize(network))],
            ),
            Self::AsyncQuorum {
                quorum,
                max_staleness,
                network,
                reuse_stale,
            } => obj(
                "AsyncQuorum",
                vec![
                    ("quorum".into(), Serialize::serialize(quorum)),
                    ("max_staleness".into(), Serialize::serialize(max_staleness)),
                    ("network".into(), Serialize::serialize(network)),
                    ("reuse_stale".into(), Serialize::serialize(reuse_stale)),
                ],
            ),
            Self::Remote {
                quorum,
                max_staleness,
                round_timeout_secs,
                handshake_timeout_secs,
                staffing_timeout_secs,
                heartbeat_secs,
                on_crash,
            } => obj(
                "Remote",
                vec![
                    ("quorum".into(), Serialize::serialize(quorum)),
                    ("max_staleness".into(), Serialize::serialize(max_staleness)),
                    (
                        "round_timeout_secs".into(),
                        Serialize::serialize(round_timeout_secs),
                    ),
                    (
                        "handshake_timeout_secs".into(),
                        Serialize::serialize(handshake_timeout_secs),
                    ),
                    (
                        "staffing_timeout_secs".into(),
                        Serialize::serialize(staffing_timeout_secs),
                    ),
                    (
                        "heartbeat_secs".into(),
                        Serialize::serialize(heartbeat_secs),
                    ),
                    ("on_crash".into(), Serialize::serialize(on_crash)),
                ],
            ),
        }
    }
}

impl Deserialize for ExecutionSpec {
    fn deserialize(v: &Value) -> Result<Self, DeError> {
        let field = |inner: &Value, name: &str| serde::__private::field(inner, name).cloned();
        match v {
            Value::Str(s) if s == "Sequential" => Ok(Self::Sequential),
            Value::Str(other) => Err(DeError::unknown_variant("ExecutionSpec", other)),
            Value::Object(pairs) if pairs.len() == 1 => {
                let (key, inner) = &pairs[0];
                match key.as_str() {
                    "Threaded" => Ok(Self::Threaded {
                        network: Deserialize::deserialize(&field(inner, "network")?)?,
                    }),
                    "AsyncQuorum" => Ok(Self::AsyncQuorum {
                        quorum: Deserialize::deserialize(&field(inner, "quorum")?)?,
                        max_staleness: Deserialize::deserialize(&field(inner, "max_staleness")?)?,
                        network: Deserialize::deserialize(&field(inner, "network")?)?,
                        // Spec files predating reuse mode stay valid.
                        reuse_stale: match optional_field(inner, "reuse_stale") {
                            Some(v) => Deserialize::deserialize(v)?,
                            None => false,
                        },
                    }),
                    "Remote" => {
                        let defaults = RemoteTimeouts::default();
                        let u64_or = |name: &str, default: u64| -> Result<u64, DeError> {
                            match optional_field(inner, name) {
                                Some(v) => Deserialize::deserialize(v),
                                None => Ok(default),
                            }
                        };
                        Ok(Self::Remote {
                            quorum: Deserialize::deserialize(&field(inner, "quorum")?)?,
                            max_staleness: Deserialize::deserialize(&field(
                                inner,
                                "max_staleness",
                            )?)?,
                            round_timeout_secs: u64_or("round_timeout_secs", defaults.round_secs)?,
                            handshake_timeout_secs: u64_or(
                                "handshake_timeout_secs",
                                defaults.handshake_secs,
                            )?,
                            staffing_timeout_secs: u64_or(
                                "staffing_timeout_secs",
                                defaults.staffing_secs,
                            )?,
                            heartbeat_secs: u64_or("heartbeat_secs", defaults.heartbeat_secs)?,
                            on_crash: match optional_field(inner, "on_crash") {
                                Some(v) => Deserialize::deserialize(v)?,
                                None => defaults.on_crash,
                            },
                        })
                    }
                    other => Err(DeError::unknown_variant("ExecutionSpec", other)),
                }
            }
            other => Err(DeError::invalid_type("ExecutionSpec variant", other.kind())),
        }
    }
}

/// Looks up an optional key in a JSON object (absent keys are distinct
/// from explicit `null`: both fall back to the default here).
fn optional_field<'v>(v: &'v Value, name: &str) -> Option<&'v Value> {
    match v {
        Value::Object(pairs) => pairs
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v)
            .filter(|v| !matches!(v, Value::Null)),
        _ => None,
    }
}

impl std::fmt::Display for ExecutionSpec {
    fn fmt(&self, out: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Remote { quorum: None, .. } => out.write_str("remote(barrier)"),
            Self::Remote {
                quorum: Some(q),
                max_staleness,
                ..
            } => write!(out, "remote(q={q}, staleness<={max_staleness})"),
            other => other
                .strategy()
                .expect("non-remote specs have a strategy")
                .fmt(out),
        }
    }
}

/// Where the parameter trajectory starts.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum InitSpec {
    /// `x_0 = 0`.
    Zeros,
    /// `x_0 = (value, …, value)`.
    Fill {
        /// Per-coordinate start value.
        value: f64,
    },
    /// `x_0` sampled by the workload's model with the given strategy (e.g.
    /// Xavier for MLPs), from its own seed so the draw is reproducible and
    /// independent of the worker streams.
    Sample {
        /// The initialisation strategy.
        strategy: InitStrategy,
        /// Seed of the initialisation draw.
        seed: u64,
    },
}

/// Which optional measurements the scenario records.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProbeSpec {
    /// Record `‖x_t − x*‖` when the workload has an analytic optimum.
    pub track_optimum: bool,
    /// Attach the workload's held-out accuracy probe, when it has one.
    pub accuracy: bool,
}

impl Default for ProbeSpec {
    fn default() -> Self {
        Self {
            track_optimum: true,
            accuracy: true,
        }
    }
}

/// A complete, serialisable description of one experiment: the grid cell
/// `(rule F, attack, cluster shape, workload, schedule, execution, seed)`
/// the paper sweeps, as one value.
///
/// A spec can come from JSON (`krum run spec.json`), from the fluent
/// [`ScenarioBuilder`](crate::ScenarioBuilder), or be constructed literally;
/// all three produce bit-identical parameter trajectories for the same
/// field values because every random stream derives from `seed`.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct ScenarioSpec {
    /// Free-form scenario label used in reports and file names.
    pub name: String,
    /// Cluster shape: `n` workers, `f` Byzantine.
    pub cluster: ClusterSpec,
    /// The aggregation (choice) function `F`.
    pub rule: RuleSpec,
    /// The Byzantine strategy.
    pub attack: AttackSpec,
    /// What the honest workers compute.
    pub estimator: EstimatorSpec,
    /// Learning-rate schedule `γ_t`.
    pub schedule: LearningRateSchedule,
    /// Sequential or threaded execution.
    pub execution: ExecutionSpec,
    /// Number of synchronous rounds.
    pub rounds: usize,
    /// Evaluation cadence (≥ 1; the final round is always evaluated).
    pub eval_every: usize,
    /// Master seed for every random stream.
    pub seed: u64,
    /// Where the trajectory starts.
    pub init: InitSpec,
    /// Optional measurements.
    pub probes: ProbeSpec,
    /// Scripted faults for chaos runs (`None`, the JSON default, injects
    /// nothing; ignored entirely outside the chaos harness).
    pub fault_plan: Option<FaultPlan>,
    /// Gradient compression codec (`None` runs uncompressed). The codec's
    /// quantize → dequantize transform applies **before aggregation on
    /// every engine** — in-process runs quantize in memory, remote runs
    /// quantize on the wire — so a compressed scenario has one canonical
    /// trajectory per seed, not one per transport.
    pub compression: Option<CompressionSpec>,
}

// Hand-written so `fault_plan` and `compression` may be absent from the
// JSON (every spec file written before those features existed stays
// valid).
impl Deserialize for ScenarioSpec {
    fn deserialize(v: &Value) -> Result<Self, DeError> {
        let field = |name: &str| serde::__private::field(v, name);
        Ok(Self {
            name: Deserialize::deserialize(field("name")?)?,
            cluster: Deserialize::deserialize(field("cluster")?)?,
            rule: Deserialize::deserialize(field("rule")?)?,
            attack: Deserialize::deserialize(field("attack")?)?,
            estimator: Deserialize::deserialize(field("estimator")?)?,
            schedule: Deserialize::deserialize(field("schedule")?)?,
            execution: Deserialize::deserialize(field("execution")?)?,
            rounds: Deserialize::deserialize(field("rounds")?)?,
            eval_every: Deserialize::deserialize(field("eval_every")?)?,
            seed: Deserialize::deserialize(field("seed")?)?,
            init: Deserialize::deserialize(field("init")?)?,
            probes: Deserialize::deserialize(field("probes")?)?,
            fault_plan: match optional_field(v, "fault_plan") {
                Some(fv) => Some(Deserialize::deserialize(fv)?),
                None => None,
            },
            compression: match optional_field(v, "compression") {
                Some(cv) => Some(Deserialize::deserialize(cv)?),
                None => None,
            },
        })
    }
}

impl ScenarioSpec {
    /// Parses a spec from its JSON rendering.
    ///
    /// # Errors
    ///
    /// Returns [`ScenarioError::Json`] for malformed JSON and
    /// [`ScenarioError::InvalidSpec`] when the parsed spec fails
    /// [`ScenarioSpec::validate`].
    pub fn from_json(json: &str) -> Result<Self, ScenarioError> {
        let spec: Self = serde_json::from_str(json)?;
        spec.validate()?;
        Ok(spec)
    }

    /// Renders the spec as pretty-printed JSON.
    ///
    /// # Errors
    ///
    /// Returns [`ScenarioError::Json`] if serialisation fails.
    pub fn to_json(&self) -> Result<String, ScenarioError> {
        Ok(serde_json::to_string_pretty(self)?)
    }

    /// Cross-checks every constraint the runtime relies on, without building
    /// anything: cluster shape, rule/cluster compatibility (e.g. Krum's
    /// `2f + 2 < n`), attack and workload parameters, schedule positivity,
    /// evaluation cadence and the execution model.
    ///
    /// Deserialisation does not validate on its own (a JSON file can encode
    /// any field values); every build/run entry point calls this first.
    ///
    /// # Errors
    ///
    /// Returns a [`ScenarioError`] describing the first violated constraint.
    pub fn validate(&self) -> Result<(), ScenarioError> {
        // The cluster may have been deserialised around its constructor.
        let cluster = ClusterSpec::new(self.cluster.workers(), self.cluster.byzantine())?;
        self.estimator.validate()?;
        let dim = self.estimator.dim()?;
        // Async/remote execution narrows what the rule aggregates: its
        // preconditions must hold against the quorum size, not n.
        let narrowed_quorum = match self.execution {
            // Reuse mode aggregates all n; its quorum is a refresh pace.
            ExecutionSpec::AsyncQuorum {
                quorum,
                reuse_stale: true,
                ..
            } => {
                if quorum < 1 || quorum > cluster.workers() {
                    return Err(ScenarioError::invalid(format!(
                        "reuse-stale quorum must satisfy 1 <= quorum <= n, got quorum = \
                         {quorum} with n = {}",
                        cluster.workers()
                    )));
                }
                None
            }
            ExecutionSpec::AsyncQuorum { quorum, .. }
            | ExecutionSpec::Remote {
                quorum: Some(quorum),
                ..
            } => Some(quorum),
            _ => None,
        };
        if let Some(quorum) = narrowed_quorum {
            if quorum < cluster.honest() || quorum > cluster.workers() {
                return Err(ScenarioError::invalid(format!(
                    "quorum must satisfy n - f <= quorum <= n, got quorum = {quorum} \
                     with n = {}, f = {}",
                    cluster.workers(),
                    cluster.byzantine()
                )));
            }
        }
        // Building the rule and the attack runs their own cross-checks
        // against (arity, f) and d; the built values are discarded.
        let arity = self.execution.aggregation_arity(cluster.workers());
        self.rule.build(arity, cluster.byzantine())?;
        self.attack.build(dim)?;
        self.attack
            .validate_for_cluster(cluster.honest(), cluster.byzantine())?;
        if let ExecutionSpec::Remote {
            round_timeout_secs,
            handshake_timeout_secs,
            staffing_timeout_secs,
            heartbeat_secs,
            ..
        } = self.execution
        {
            for (name, value) in [
                ("round_timeout_secs", round_timeout_secs),
                ("handshake_timeout_secs", handshake_timeout_secs),
                ("staffing_timeout_secs", staffing_timeout_secs),
                ("heartbeat_secs", heartbeat_secs),
            ] {
                if value == 0 {
                    return Err(ScenarioError::invalid(format!(
                        "remote {name} must be >= 1 second"
                    )));
                }
            }
            if heartbeat_secs >= round_timeout_secs {
                return Err(ScenarioError::invalid(format!(
                    "remote heartbeat_secs ({heartbeat_secs}) must be strictly less than \
                     round_timeout_secs ({round_timeout_secs}): a worker needs at least one \
                     unanswered heartbeat before the round can time out"
                )));
            }
        }
        if let Some(plan) = &self.fault_plan {
            plan.validate()?;
        }
        if let Some(compression) = &self.compression {
            compression
                .validate(Some(dim))
                .map_err(|e| ScenarioError::invalid(e.to_string()))?;
        }
        if self.rounds == 0 {
            return Err(ScenarioError::invalid("rounds must be >= 1"));
        }
        if self.eval_every == 0 {
            return Err(ScenarioError::invalid(
                "eval_every must be >= 1 (use eval_every = rounds to evaluate only the final round)",
            ));
        }
        self.schedule.validate()?;
        if let Some(network) = self.execution.network() {
            network.validate()?;
        }
        match self.init {
            InitSpec::Zeros => {}
            InitSpec::Fill { value } => {
                if !value.is_finite() {
                    return Err(ScenarioError::invalid("init fill value must be finite"));
                }
            }
            InitSpec::Sample { strategy, .. } => match strategy {
                InitStrategy::Gaussian { std } if !(std.is_finite() && std >= 0.0) => {
                    return Err(ScenarioError::invalid(
                        "init gaussian std must be finite and >= 0",
                    ));
                }
                InitStrategy::Uniform { limit } if !(limit.is_finite() && limit >= 0.0) => {
                    return Err(ScenarioError::invalid(
                        "init uniform limit must be finite and >= 0",
                    ));
                }
                _ => {}
            },
        }
        Ok(())
    }

    /// Model dimension `d` of the scenario's workload.
    ///
    /// # Errors
    ///
    /// Returns [`ScenarioError::Model`] when the workload spec is invalid.
    pub fn dim(&self) -> Result<usize, ScenarioError> {
        Ok(self.estimator.dim()?)
    }

    /// A short single-line description (`rule vs attack (n=…, f=…)`).
    pub fn headline(&self) -> String {
        format!(
            "{} vs {} (n={}, f={}, rounds={}, seed={})",
            self.rule,
            self.attack,
            self.cluster.workers(),
            self.cluster.byzantine(),
            self.rounds,
            self.seed
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use krum_core::StageRule;
    use krum_dist::LatencyModel;

    pub(crate) fn spec() -> ScenarioSpec {
        ScenarioSpec {
            name: "unit".into(),
            cluster: ClusterSpec::new(9, 2).unwrap(),
            rule: RuleSpec::Krum,
            attack: AttackSpec::SignFlip { scale: 3.0 },
            estimator: EstimatorSpec::GaussianQuadratic { dim: 6, sigma: 0.3 },
            schedule: LearningRateSchedule::Constant { gamma: 0.2 },
            execution: ExecutionSpec::Sequential,
            rounds: 20,
            eval_every: 5,
            seed: 7,
            init: InitSpec::Fill { value: 1.5 },
            probes: ProbeSpec::default(),
            fault_plan: None,
            compression: None,
        }
    }

    #[test]
    fn valid_spec_round_trips_through_json() {
        let s = spec();
        s.validate().unwrap();
        let json = s.to_json().unwrap();
        let back = ScenarioSpec::from_json(&json).unwrap();
        assert_eq!(back, s);
        assert!(json.contains("\"rule\": \"krum\""));
        assert!(json.contains("sign-flip:scale=3"));
        assert!(s.headline().contains("krum vs sign-flip"));
        assert_eq!(s.dim().unwrap(), 6);
    }

    #[test]
    fn validation_rejects_inconsistent_specs() {
        // Krum needs 2f + 2 < n.
        let mut bad = spec();
        bad.cluster = ClusterSpec::new(5, 2).unwrap();
        assert!(matches!(bad.validate(), Err(ScenarioError::Rule(_))));

        let mut bad = spec();
        bad.rounds = 0;
        assert!(matches!(bad.validate(), Err(ScenarioError::InvalidSpec(_))));

        let mut bad = spec();
        bad.eval_every = 0;
        assert!(bad.validate().is_err());

        let mut bad = spec();
        bad.schedule = LearningRateSchedule::Constant { gamma: -1.0 };
        assert!(bad.validate().is_err());

        let mut bad = spec();
        bad.attack = AttackSpec::SignFlip { scale: -1.0 };
        assert!(matches!(bad.validate(), Err(ScenarioError::Attack(_))));

        let mut bad = spec();
        bad.estimator = EstimatorSpec::GaussianQuadratic { dim: 0, sigma: 0.1 };
        assert!(matches!(bad.validate(), Err(ScenarioError::Model(_))));

        let mut bad = spec();
        bad.init = InitSpec::Fill {
            value: f64::INFINITY,
        };
        assert!(bad.validate().is_err());

        let mut bad = spec();
        bad.execution = ExecutionSpec::Threaded {
            network: NetworkModel {
                latency: LatencyModel::Constant { nanos: 100 },
                nanos_per_byte: f64::NAN,
            },
        };
        assert!(bad.validate().is_err());
    }

    #[test]
    fn malformed_cluster_json_is_rejected_not_panicked() {
        // f >= n encodes fine in JSON but must fail validation.
        let json = spec().to_json().unwrap().replace("\"f\": 2", "\"f\": 9");
        assert!(ScenarioSpec::from_json(&json).is_err());
        // Garbage JSON is a structured error.
        assert!(ScenarioSpec::from_json("{not json").is_err());
        assert!(ScenarioSpec::from_json("{}").is_err());
    }

    #[test]
    fn execution_spec_displays_via_strategy() {
        assert_eq!(ExecutionSpec::Sequential.to_string(), "sequential");
        let threaded = ExecutionSpec::Threaded {
            network: NetworkModel {
                latency: LatencyModel::Constant { nanos: 500 },
                nanos_per_byte: 0.5,
            },
        };
        let text = threaded.to_string();
        assert!(text.starts_with("threaded("));
        assert!(text.contains("constant(500ns)"));
        assert!(text.contains("0.5ns/byte"));
        let quorum = ExecutionSpec::AsyncQuorum {
            quorum: 7,
            max_staleness: 2,
            reuse_stale: false,
            network: NetworkModel {
                latency: LatencyModel::Pareto {
                    min_nanos: 1_000,
                    alpha: 1.1,
                },
                nanos_per_byte: 0.1,
            },
        };
        let text = quorum.to_string();
        assert!(text.starts_with("async-quorum(q=7, staleness<=2"));
        assert!(text.contains("pareto"));
    }

    fn async_execution(quorum: usize) -> ExecutionSpec {
        ExecutionSpec::AsyncQuorum {
            quorum,
            max_staleness: 2,
            reuse_stale: false,
            network: NetworkModel {
                latency: LatencyModel::Uniform {
                    min_nanos: 1_000,
                    max_nanos: 100_000,
                },
                nanos_per_byte: 0.0,
            },
        }
    }

    #[test]
    fn async_quorum_specs_round_trip_and_cross_validate() {
        // n = 9, f = 2: quorum must sit in [7, 9] and satisfy the rule's
        // precondition against the quorum size.
        let mut s = spec();
        s.execution = async_execution(7);
        s.validate().unwrap();
        assert_eq!(s.execution.aggregation_arity(9), 7);
        let json = s.to_json().unwrap();
        let back = ScenarioSpec::from_json(&json).unwrap();
        assert_eq!(back, s);

        let mut bad = spec();
        bad.execution = async_execution(6); // < n - f
        assert!(bad.validate().is_err());
        let mut bad = spec();
        bad.execution = async_execution(10); // > n
        assert!(bad.validate().is_err());

        // Krum needs 2f + 2 < quorum: f = 3 at n = 10 is fine for the
        // barrier (2·3 + 2 < 10) but not for a quorum of 7 (2·3 + 2 >= 7).
        let mut bad = spec();
        bad.cluster = ClusterSpec::new(10, 3).unwrap();
        bad.execution = async_execution(7);
        assert!(
            matches!(bad.validate(), Err(ScenarioError::Rule(_))),
            "Krum's precondition must be held against the quorum size"
        );
        let mut ok = spec();
        ok.cluster = ClusterSpec::new(10, 3).unwrap();
        ok.execution = async_execution(9);
        ok.validate().unwrap();

        // The Pareto tail index is validated through the spec too.
        let mut bad = spec();
        bad.execution = ExecutionSpec::AsyncQuorum {
            quorum: 7,
            max_staleness: 2,
            reuse_stale: false,
            network: NetworkModel {
                latency: LatencyModel::Pareto {
                    min_nanos: 10,
                    alpha: f64::NAN,
                },
                nanos_per_byte: 0.0,
            },
        };
        assert!(bad.validate().is_err());
    }

    /// Tentpole: `Remote` execution round-trips, validates its quorum
    /// bounds against the cluster, holds the rule precondition against the
    /// remote arity, and deliberately has no in-process strategy.
    #[test]
    fn remote_specs_validate_display_and_round_trip() {
        let mut s = spec();
        s.execution = ExecutionSpec::remote(None, 0);
        s.validate().unwrap();
        assert_eq!(s.execution.aggregation_arity(9), 9);
        assert!(s.execution.network().is_none());
        assert!(s.execution.strategy().is_none());
        assert_eq!(s.execution.to_string(), "remote(barrier)");
        let json = s.to_json().unwrap();
        assert_eq!(ScenarioSpec::from_json(&json).unwrap(), s);

        let mut q = spec();
        q.execution = ExecutionSpec::remote(Some(7), 2);
        q.validate().unwrap();
        assert_eq!(q.execution.aggregation_arity(9), 7);
        assert_eq!(q.execution.to_string(), "remote(q=7, staleness<=2)");

        for bad_quorum in [6, 10] {
            let mut bad = spec();
            bad.execution = ExecutionSpec::remote(Some(bad_quorum), 2);
            assert!(
                bad.validate().is_err(),
                "remote quorum {bad_quorum} must violate n - f <= q <= n at n = 9, f = 2"
            );
        }

        // Krum's 2f + 2 < n precondition is held against the remote arity:
        // f = 3 at n = 10 passes the barrier but not a quorum of 7.
        let mut bad = spec();
        bad.cluster = ClusterSpec::new(10, 3).unwrap();
        bad.execution = ExecutionSpec::remote(Some(7), 1);
        assert!(matches!(bad.validate(), Err(ScenarioError::Rule(_))));

        assert!(EXECUTION_NAMES.contains(&"remote"));
        assert_eq!(EXECUTION_NAMES.len(), 4);
    }

    /// Satellite: the remote timeout knobs default when absent from the
    /// JSON (a PR-5-era spec file parses unchanged) and validate as
    /// nonzero with `heartbeat < round timeout`.
    #[test]
    fn remote_timeouts_default_validate_and_round_trip() {
        // A remote spec serialised before the knobs existed: only quorum
        // and max_staleness present.
        let mut s = spec();
        s.execution = ExecutionSpec::remote(Some(7), 1);
        let json = s
            .to_json()
            .unwrap()
            .replace("\"round_timeout_secs\": 120,\n", "")
            .replace("\"handshake_timeout_secs\": 10,\n", "")
            .replace("\"staffing_timeout_secs\": 60,\n", "")
            .replace("\"heartbeat_secs\": 5,\n", "")
            .replace("\"on_crash\": \"WaitForRejoin\"", "\"max_staleness\": 1");
        assert!(
            !json.contains("round_timeout_secs"),
            "fixture must exercise the missing-field path: {json}"
        );
        let back = ScenarioSpec::from_json(&json).unwrap();
        assert_eq!(back, s, "absent knobs must resolve to the defaults");
        let knobs = back.execution.remote_timeouts();
        assert_eq!(knobs.round_secs, DEFAULT_ROUND_TIMEOUT_SECS);
        assert_eq!(knobs.handshake_secs, DEFAULT_HANDSHAKE_TIMEOUT_SECS);
        assert_eq!(knobs.staffing_secs, DEFAULT_STAFFING_TIMEOUT_SECS);
        assert_eq!(knobs.heartbeat_secs, DEFAULT_HEARTBEAT_SECS);
        assert_eq!(knobs.on_crash, CrashPolicy::WaitForRejoin);

        // Explicit knobs round-trip.
        let mut tuned = spec();
        tuned.execution = ExecutionSpec::Remote {
            quorum: Some(7),
            max_staleness: 1,
            round_timeout_secs: 30,
            handshake_timeout_secs: 3,
            staffing_timeout_secs: 15,
            heartbeat_secs: 2,
            on_crash: CrashPolicy::ProceedAtQuorum,
        };
        tuned.validate().unwrap();
        let json = tuned.to_json().unwrap();
        assert!(json.contains("\"on_crash\": \"ProceedAtQuorum\""));
        assert_eq!(ScenarioSpec::from_json(&json).unwrap(), tuned);

        // Zero timeouts are rejected, one knob at a time.
        for knob in 0..4 {
            let mut bad = spec();
            bad.execution = ExecutionSpec::Remote {
                quorum: None,
                max_staleness: 0,
                round_timeout_secs: if knob == 0 { 0 } else { 120 },
                handshake_timeout_secs: if knob == 1 { 0 } else { 10 },
                staffing_timeout_secs: if knob == 2 { 0 } else { 60 },
                heartbeat_secs: if knob == 3 { 0 } else { 5 },
                on_crash: CrashPolicy::WaitForRejoin,
            };
            let err = bad.validate().unwrap_err();
            assert!(
                err.to_string().contains(">= 1 second"),
                "knob {knob}: {err}"
            );
        }

        // The heartbeat must fit under the round timeout.
        let mut bad = spec();
        bad.execution = ExecutionSpec::Remote {
            quorum: None,
            max_staleness: 0,
            round_timeout_secs: 5,
            handshake_timeout_secs: 10,
            staffing_timeout_secs: 60,
            heartbeat_secs: 5,
            on_crash: CrashPolicy::WaitForRejoin,
        };
        let err = bad.validate().unwrap_err();
        assert!(err.to_string().contains("strictly less"), "got: {err}");

        assert_eq!(CrashPolicy::WaitForRejoin.to_string(), "wait-for-rejoin");
        assert_eq!(
            CrashPolicy::ProceedAtQuorum.to_string(),
            "proceed-at-quorum"
        );
    }

    /// Satellite: a fault plan rides on the spec (optional — absent in old
    /// files), round-trips through JSON, and is validated with the spec.
    #[test]
    fn fault_plans_ride_on_specs_optionally() {
        // No plan serialises as an explicit null and reads back as `None`…
        let plain = spec();
        let json = plain.to_json().unwrap();
        assert!(json.contains("\"fault_plan\": null"));
        assert_eq!(ScenarioSpec::from_json(&json).unwrap().fault_plan, None);
        // …and a pre-PR-6 spec file with no `fault_plan` key at all parses.
        let old_style = json.replace(",\n  \"fault_plan\": null", "");
        assert!(!old_style.contains("fault_plan"), "got: {old_style}");
        let reparsed = ScenarioSpec::from_json(&old_style)
            .expect("spec files predating fault plans must keep parsing");
        assert_eq!(reparsed, plain);

        let mut chaotic = spec();
        chaotic.fault_plan = Some(crate::FaultPlan {
            description: "drop conn 2 mid-round".into(),
            faults: vec![crate::FaultSpec {
                conn: 2,
                at_frame: 4,
                action: crate::FaultAction::Drop,
            }],
            kill_server_after_round: Some(3),
        });
        chaotic.validate().unwrap();
        let json = chaotic.to_json().unwrap();
        assert!(json.contains("drop conn 2 mid-round"));
        assert_eq!(ScenarioSpec::from_json(&json).unwrap(), chaotic);

        // Plan validation is spec validation.
        let mut bad = chaotic.clone();
        bad.fault_plan.as_mut().unwrap().faults[0].action = crate::FaultAction::Delay { millis: 0 };
        assert!(bad.validate().is_err());
    }

    /// Satellite: the Figure-2 collusion with f = 1 degenerates to zero
    /// decoys; scenario cross-validation rejects it with a clear error.
    #[test]
    fn collusion_with_f1_is_rejected_by_scenario_validation() {
        let mut bad = spec();
        bad.cluster = ClusterSpec::new(9, 1).unwrap();
        bad.attack = AttackSpec::Collusion { magnitude: 100.0 };
        let err = bad.validate().unwrap_err();
        assert!(
            matches!(err, ScenarioError::Attack(_)),
            "expected an attack cross-validation error, got: {err}"
        );
        assert!(err.to_string().contains("f >= 2"), "got: {err}");
        // f = 2 runs the real construction.
        let mut ok = spec();
        ok.cluster = ClusterSpec::new(9, 2).unwrap();
        ok.attack = AttackSpec::Collusion { magnitude: 100.0 };
        ok.validate().unwrap();
    }

    fn reuse_execution(quorum: usize) -> ExecutionSpec {
        ExecutionSpec::AsyncQuorum {
            quorum,
            max_staleness: 4,
            network: NetworkModel {
                latency: LatencyModel::Constant { nanos: 1_000 },
                nanos_per_byte: 0.0,
            },
            reuse_stale: true,
        }
    }

    /// Removes `key` from every object in a serialized [`serde::Value`]
    /// tree — simulating a spec file written before the field existed.
    fn strip_key(value: &mut serde::Value, key: &str) {
        match value {
            serde::Value::Object(fields) => {
                fields.retain(|(name, _)| name != key);
                for (_, v) in fields.iter_mut() {
                    strip_key(v, key);
                }
            }
            serde::Value::Array(items) => {
                for v in items.iter_mut() {
                    strip_key(v, key);
                }
            }
            _ => {}
        }
    }

    #[test]
    fn reuse_stale_specs_validate_round_trip_and_default_to_false() {
        // n = 9, f = 2: a refresh pace far below n - f is legal in reuse
        // mode because the rule aggregates the full latest-proposal table.
        let mut s = spec();
        s.execution = reuse_execution(2);
        s.validate().unwrap();
        assert_eq!(s.execution.aggregation_arity(9), 9);
        assert!(s.execution.to_string().contains("reuse"));
        let json = s.to_json().unwrap();
        let back = ScenarioSpec::from_json(&json).unwrap();
        assert_eq!(back, s);

        // The refresh pace is bounded by 1 <= quorum <= n.
        let mut bad = spec();
        bad.execution = reuse_execution(0);
        assert!(bad.validate().is_err());
        let mut bad = spec();
        bad.execution = reuse_execution(10);
        assert!(bad.validate().is_err());

        // Spec files written before reuse mode carry no `reuse_stale`
        // field and must keep parsing as the barrier-quorum mode.
        let barrier = async_execution(7);
        let mut value = Serialize::serialize(&barrier);
        strip_key(&mut value, "reuse_stale");
        let legacy = <ExecutionSpec as Deserialize>::deserialize(&value).unwrap();
        assert_eq!(legacy, barrier);
    }

    /// Hierarchical rules flow through the spec: string/typed forms
    /// round-trip, and validation enforces the per-group Byzantine bound
    /// against the cluster — not just the flat `2f + 2 < n` condition.
    #[test]
    fn hierarchical_specs_round_trip_and_validate_per_group_bounds() {
        // n = 24, f = 3, g = 4: groups of 6 with at most ceil(3/4) = 1
        // Byzantine each — Krum is feasible in every group.
        let mut s = spec();
        s.cluster = ClusterSpec::new(24, 3).unwrap();
        s.rule = RuleSpec::Hierarchical {
            groups: 4,
            inner: StageRule::Krum,
            outer: StageRule::Krum,
        };
        s.validate().unwrap();
        let json = s.to_json().unwrap();
        assert!(json.contains("hierarchical:groups=4"));
        let back = ScenarioSpec::from_json(&json).unwrap();
        assert_eq!(back, s);

        // n = 16, f = 4, g = 4: groups of 4 with 1 Byzantine each violate
        // Krum's 2f_g + 2 < n_g inside every group, even though the flat
        // bound 2f + 2 < n holds. Validation must reject it structurally.
        let mut bad = spec();
        bad.cluster = ClusterSpec::new(16, 4).unwrap();
        bad.rule = RuleSpec::Hierarchical {
            groups: 4,
            inner: StageRule::Krum,
            outer: StageRule::Krum,
        };
        let err = bad.validate().unwrap_err();
        assert!(
            matches!(err, ScenarioError::Rule(_)),
            "expected a rule cross-validation error, got: {err}"
        );
        assert!(err.to_string().contains("group"), "got: {err}");
    }
}
