//! Declarative fault injection: the `FaultPlan` a chaos harness executes.
//!
//! A [`FaultPlan`] is data, not code: it names the connection-level faults
//! to inject into a served scenario (drop/delay/blackhole/truncate/corrupt
//! a frame, kill and restart the server) so that churn experiments are as
//! reproducible as the training runs they disturb. The plan lives on the
//! [`ScenarioSpec`](crate::ScenarioSpec) (optional `fault_plan` field) and
//! is executed by `krum-server`'s chaos proxy (`krum chaos spec.json`);
//! in-process and plain loopback execution ignore it, which is what makes
//! "the same spec, minus the faults" the uninterrupted control run.

use serde::{DeError, Deserialize, Serialize, Value};

use crate::error::ScenarioError;

/// Upper bound on an injected delay: a delay is a perturbation, not a hang
/// (hangs are what [`FaultAction::Blackhole`] is for).
pub const MAX_FAULT_DELAY_MILLIS: u64 = 60_000;

/// One scripted fault suite for a served scenario.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct FaultPlan {
    /// Free-form description, exported as (escaped) CSV metadata.
    pub description: String,
    /// Connection-level faults, executed by the chaos proxy.
    pub faults: Vec<FaultSpec>,
    /// Kill the server after it completes this round (0-based) and restart
    /// it from its latest checkpoint — the scripted `kill -9` + `--resume`
    /// scenario. Requires checkpointing to be enabled by the harness.
    pub kill_server_after_round: Option<u64>,
}

/// One connection-level fault: *what* happens to *which* frame of *which*
/// connection.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultSpec {
    /// Proxy connection index, in accept order. The chaos harness connects
    /// workers sequentially, so connection `i` is worker slot `i`.
    pub conn: u32,
    /// Which client→server frame triggers the fault, 0-based. Frame 0 is
    /// the handshake (`Hello`/`Rejoin`); an honest worker's proposal for
    /// round `r` is frame `r + 1`. Heartbeat `Pong`s are *not* counted —
    /// their timing is nondeterministic and would make scripts flaky.
    pub at_frame: u64,
    /// What the proxy does to that frame.
    pub action: FaultAction,
}

/// What the chaos proxy does to the targeted frame.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum FaultAction {
    /// Sever the connection before the frame is forwarded (a worker
    /// crash, from the server's point of view).
    Drop,
    /// Hold the frame for this many milliseconds, then forward it intact
    /// (a straggler).
    Delay {
        /// Delay before forwarding, in milliseconds (1..=60_000).
        millis: u64,
    },
    /// Silently discard this and every later client→server frame while
    /// keeping the connection open (a hung worker: the server's heartbeats
    /// go unanswered until the liveness timeout declares it crashed).
    Blackhole,
    /// Forward only the first `bytes` bytes of the frame, then sever the
    /// connection (a crash mid-write; the server sees a truncated frame).
    Truncate {
        /// Bytes of the frame to forward before cutting (≥ 1).
        bytes: u64,
    },
    /// Flip one bit in the frame body before forwarding (the server's CRC
    /// rejects it and the connection is torn down as faulty).
    Corrupt,
}

impl FaultPlan {
    /// Checks the plan's own invariants (the spec's `validate` calls this).
    ///
    /// # Errors
    ///
    /// Returns [`ScenarioError::InvalidSpec`] naming the first violation.
    pub fn validate(&self) -> Result<(), ScenarioError> {
        for (i, fault) in self.faults.iter().enumerate() {
            match fault.action {
                FaultAction::Delay { millis } => {
                    if millis == 0 || millis > MAX_FAULT_DELAY_MILLIS {
                        return Err(ScenarioError::invalid(format!(
                            "fault {i}: delay must be 1..={MAX_FAULT_DELAY_MILLIS} ms, \
                             got {millis} (use blackhole to simulate a hang)"
                        )));
                    }
                }
                FaultAction::Truncate { bytes } => {
                    if bytes == 0 {
                        return Err(ScenarioError::invalid(format!(
                            "fault {i}: truncate must keep >= 1 byte (use drop to \
                             sever before the frame)"
                        )));
                    }
                }
                FaultAction::Drop | FaultAction::Blackhole | FaultAction::Corrupt => {}
            }
        }
        Ok(())
    }

    /// A one-line summary (`description` when set, otherwise a count).
    pub fn headline(&self) -> String {
        if self.description.is_empty() {
            format!(
                "{} fault(s){}",
                self.faults.len(),
                if self.kill_server_after_round.is_some() {
                    " + server kill/resume"
                } else {
                    ""
                }
            )
        } else {
            self.description.clone()
        }
    }
}

// Hand-written: every field is optional in the JSON (an empty object is an
// empty plan), which the derive's required-field semantics cannot express.
impl Deserialize for FaultPlan {
    fn deserialize(v: &Value) -> Result<Self, DeError> {
        let pairs = match v {
            Value::Object(pairs) => pairs,
            other => return Err(DeError::invalid_type("object", other.kind())),
        };
        let get = |name: &str| pairs.iter().find(|(k, _)| k == name).map(|(_, v)| v);
        Ok(Self {
            description: match get("description") {
                Some(v) => Deserialize::deserialize(v)?,
                None => String::new(),
            },
            faults: match get("faults") {
                Some(v) => Deserialize::deserialize(v)?,
                None => Vec::new(),
            },
            kill_server_after_round: match get("kill_server_after_round") {
                Some(v) => Deserialize::deserialize(v)?,
                None => None,
            },
        })
    }
}

impl std::fmt::Display for FaultAction {
    fn fmt(&self, out: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Drop => out.write_str("drop"),
            Self::Delay { millis } => write!(out, "delay({millis}ms)"),
            Self::Blackhole => out.write_str("blackhole"),
            Self::Truncate { bytes } => write!(out, "truncate({bytes}B)"),
            Self::Corrupt => out.write_str("corrupt"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plan() -> FaultPlan {
        FaultPlan {
            description: "drop worker 2 at round 3, then kill the server".into(),
            faults: vec![
                FaultSpec {
                    conn: 2,
                    at_frame: 4,
                    action: FaultAction::Drop,
                },
                FaultSpec {
                    conn: 0,
                    at_frame: 1,
                    action: FaultAction::Delay { millis: 50 },
                },
            ],
            kill_server_after_round: Some(6),
        }
    }

    #[test]
    fn plans_round_trip_through_json() {
        let p = plan();
        p.validate().unwrap();
        let json = serde_json::to_string(&p).unwrap();
        let back: FaultPlan = serde_json::from_str(&json).unwrap();
        assert_eq!(back, p);
        assert!(p.headline().contains("drop worker 2"));
    }

    #[test]
    fn missing_fields_default_to_an_empty_plan() {
        let p: FaultPlan = serde_json::from_str("{}").unwrap();
        assert!(p.description.is_empty());
        assert!(p.faults.is_empty());
        assert!(p.kill_server_after_round.is_none());
        p.validate().unwrap();
        assert_eq!(p.headline(), "0 fault(s)");
    }

    #[test]
    fn validation_rejects_degenerate_faults() {
        let mut bad = plan();
        bad.faults[1].action = FaultAction::Delay { millis: 0 };
        assert!(bad.validate().is_err());
        let mut bad = plan();
        bad.faults[1].action = FaultAction::Delay {
            millis: MAX_FAULT_DELAY_MILLIS + 1,
        };
        assert!(bad.validate().is_err());
        let mut bad = plan();
        bad.faults[0].action = FaultAction::Truncate { bytes: 0 };
        assert!(bad.validate().is_err());
    }

    #[test]
    fn actions_display_compactly() {
        assert_eq!(FaultAction::Drop.to_string(), "drop");
        assert_eq!(FaultAction::Delay { millis: 9 }.to_string(), "delay(9ms)");
        assert_eq!(FaultAction::Blackhole.to_string(), "blackhole");
        assert_eq!(
            FaultAction::Truncate { bytes: 7 }.to_string(),
            "truncate(7B)"
        );
        assert_eq!(FaultAction::Corrupt.to_string(), "corrupt");
    }
}
