//! The fluent scenario builder.

use krum_attacks::AttackSpec;
use krum_compress::CompressionSpec;
use krum_core::RuleSpec;
use krum_dist::{ClusterSpec, LearningRateSchedule, NetworkModel};
use krum_models::EstimatorSpec;
use krum_tensor::InitStrategy;

use crate::error::ScenarioError;
use crate::faults::FaultPlan;
use crate::report::ScenarioReport;
use crate::scenario::Scenario;
use crate::spec::{ExecutionSpec, InitSpec, ProbeSpec, ScenarioSpec};

/// Fluent construction of a [`ScenarioSpec`], with experiment-shaped
/// defaults: Krum against the benign strategy on a clean quadratic
/// workload, sequential execution, 100 rounds, seed 0.
///
/// Cross-constraint validation (Krum's `2f + 2 < n`, attack/workload
/// parameter ranges, the evaluation cadence) runs at [`ScenarioBuilder::build`]
/// time, so a misconfigured scenario fails before any work starts.
///
/// # Example
///
/// ```
/// use krum_scenario::ScenarioBuilder;
/// use krum_core::RuleSpec;
/// use krum_attacks::AttackSpec;
/// use krum_models::EstimatorSpec;
///
/// let report = ScenarioBuilder::new(15, 4)
///     .rule(RuleSpec::Krum)
///     .attack(AttackSpec::SignFlip { scale: 5.0 })
///     .estimator(EstimatorSpec::GaussianQuadratic { dim: 20, sigma: 0.2 })
///     .rounds(50)
///     .seed(42)
///     .init_fill(3.0)
///     .run()?;
/// assert_eq!(report.history.len(), 50);
/// # Ok::<(), krum_scenario::ScenarioError>(())
/// ```
#[derive(Debug, Clone)]
pub struct ScenarioBuilder {
    name: String,
    n: usize,
    f: usize,
    rule: RuleSpec,
    attack: AttackSpec,
    estimator: EstimatorSpec,
    schedule: LearningRateSchedule,
    execution: ExecutionSpec,
    rounds: usize,
    eval_every: usize,
    seed: u64,
    init: InitSpec,
    probes: ProbeSpec,
    fault_plan: Option<FaultPlan>,
    compression: Option<CompressionSpec>,
}

impl ScenarioBuilder {
    /// Starts a builder for a cluster of `n` workers with `f` Byzantine.
    pub fn new(n: usize, f: usize) -> Self {
        Self {
            name: String::new(),
            n,
            f,
            rule: RuleSpec::Krum,
            attack: AttackSpec::None,
            estimator: EstimatorSpec::GaussianQuadratic {
                dim: 10,
                sigma: 0.1,
            },
            schedule: LearningRateSchedule::Constant { gamma: 0.1 },
            execution: ExecutionSpec::Sequential,
            rounds: 100,
            eval_every: 10,
            seed: 0,
            init: InitSpec::Zeros,
            probes: ProbeSpec::default(),
            fault_plan: None,
            compression: None,
        }
    }

    /// Sets the scenario label used in reports and file names.
    #[must_use]
    pub fn name(mut self, name: impl Into<String>) -> Self {
        self.name = name.into();
        self
    }

    /// Sets the aggregation rule.
    #[must_use]
    pub fn rule(mut self, rule: RuleSpec) -> Self {
        self.rule = rule;
        self
    }

    /// Sets the Byzantine strategy.
    #[must_use]
    pub fn attack(mut self, attack: AttackSpec) -> Self {
        self.attack = attack;
        self
    }

    /// Sets the honest workers' workload.
    #[must_use]
    pub fn estimator(mut self, estimator: EstimatorSpec) -> Self {
        self.estimator = estimator;
        self
    }

    /// Sets the learning-rate schedule.
    #[must_use]
    pub fn schedule(mut self, schedule: LearningRateSchedule) -> Self {
        self.schedule = schedule;
        self
    }

    /// Runs honest workers sequentially on the server thread (the default).
    #[must_use]
    pub fn sequential(mut self) -> Self {
        self.execution = ExecutionSpec::Sequential;
        self
    }

    /// Fans honest workers out over the thread pool and charges `network`
    /// to the round timings.
    #[must_use]
    pub fn threaded(mut self, network: NetworkModel) -> Self {
        self.execution = ExecutionSpec::Threaded { network };
        self
    }

    /// Runs async partial-quorum rounds: each round aggregates the fastest
    /// `quorum` proposals under `network` and carries stragglers up to
    /// `max_staleness` rounds. The aggregation rule is built for `quorum`
    /// proposals (its preconditions are validated against the quorum size at
    /// [`ScenarioBuilder::build`] time).
    #[must_use]
    pub fn async_quorum(
        mut self,
        quorum: usize,
        max_staleness: usize,
        network: NetworkModel,
    ) -> Self {
        self.execution = ExecutionSpec::AsyncQuorum {
            quorum,
            max_staleness,
            network,
            reuse_stale: false,
        };
        self
    }

    /// Runs async rounds in stale-gradient (reuse) mode: the engine keeps
    /// every worker's latest proposal and aggregates all `n` of them each
    /// round, refreshing `quorum` entries per round (`1 ≤ quorum ≤ n`) and
    /// forcing a refresh once an entry is `max_staleness` rounds old. The
    /// aggregation rule is built for the full table (`n` proposals), and
    /// the incremental Gram cache recomputes only refreshed rows.
    #[must_use]
    pub fn async_reuse(
        mut self,
        quorum: usize,
        max_staleness: usize,
        network: NetworkModel,
    ) -> Self {
        self.execution = ExecutionSpec::AsyncQuorum {
            quorum,
            max_staleness,
            network,
            reuse_stale: true,
        };
        self
    }

    /// Sets the number of synchronous rounds.
    #[must_use]
    pub fn rounds(mut self, rounds: usize) -> Self {
        self.rounds = rounds;
        self
    }

    /// Sets the evaluation cadence (≥ 1; the final round always evaluates).
    #[must_use]
    pub fn eval_every(mut self, eval_every: usize) -> Self {
        self.eval_every = eval_every;
        self
    }

    /// Sets the master seed.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the start-point rule.
    #[must_use]
    pub fn init(mut self, init: InitSpec) -> Self {
        self.init = init;
        self
    }

    /// Starts the trajectory at `(value, …, value)`.
    #[must_use]
    pub fn init_fill(self, value: f64) -> Self {
        self.init(InitSpec::Fill { value })
    }

    /// Starts the trajectory at a model-sampled point (e.g. Xavier for
    /// MLPs), drawn reproducibly from `seed`.
    #[must_use]
    pub fn init_sample(self, strategy: InitStrategy, seed: u64) -> Self {
        self.init(InitSpec::Sample { strategy, seed })
    }

    /// Records `‖x_t − x*‖` when the workload has an analytic optimum
    /// (enabled by default).
    #[must_use]
    pub fn track_optimum(mut self, on: bool) -> Self {
        self.probes.track_optimum = on;
        self
    }

    /// Attaches the workload's held-out accuracy probe when it has one
    /// (enabled by default).
    #[must_use]
    pub fn accuracy(mut self, on: bool) -> Self {
        self.probes.accuracy = on;
        self
    }

    /// Attaches a declarative fault plan (executed only by the chaos
    /// harness; inert everywhere else).
    #[must_use]
    pub fn fault_plan(mut self, plan: FaultPlan) -> Self {
        self.fault_plan = Some(plan);
        self
    }

    /// Quantizes every gradient (and the parameter trajectory, where the
    /// codec is lossy on params) through `spec` before aggregation, so the
    /// in-process run is bit-identical to a wire run negotiated with the
    /// same codec.
    #[must_use]
    pub fn compression(mut self, spec: CompressionSpec) -> Self {
        self.compression = Some(spec);
        self
    }

    /// The spec this builder currently describes (e.g. to serialise it to a
    /// scenario file). Not yet validated — see [`ScenarioSpec::validate`].
    pub fn spec(&self) -> Result<ScenarioSpec, ScenarioError> {
        let cluster = ClusterSpec::new(self.n, self.f)?;
        let name = if self.name.is_empty() {
            format!(
                "{}-vs-{}-n{}-f{}",
                self.rule.name(),
                self.attack.name(),
                self.n,
                self.f
            )
        } else {
            self.name.clone()
        };
        Ok(ScenarioSpec {
            name,
            cluster,
            rule: self.rule,
            attack: self.attack,
            estimator: self.estimator.clone(),
            schedule: self.schedule,
            execution: self.execution,
            rounds: self.rounds,
            eval_every: self.eval_every,
            seed: self.seed,
            init: self.init,
            probes: self.probes,
            fault_plan: self.fault_plan.clone(),
            compression: self.compression,
        })
    }

    /// Validates the cross-constraints and wires the scenario.
    ///
    /// # Errors
    ///
    /// Returns a [`ScenarioError`] describing the first violated constraint.
    pub fn build(&self) -> Result<Scenario, ScenarioError> {
        Scenario::from_spec(self.spec()?)
    }

    /// Builds and runs the scenario in one call.
    ///
    /// # Errors
    ///
    /// Same as [`ScenarioBuilder::build`] plus any mid-run failure.
    pub fn run(&self) -> Result<ScenarioReport, ScenarioError> {
        self.build()?.run()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_defaults_produce_a_runnable_scenario() {
        let report = ScenarioBuilder::new(9, 2).rounds(5).run().unwrap();
        assert_eq!(report.history.len(), 5);
        assert_eq!(report.spec.name, "krum-vs-none-n9-f2");
        assert!(report.history.rounds[0].distance_to_optimum.is_some());
    }

    #[test]
    fn builder_spec_round_trips_to_scenario_json() {
        let builder = ScenarioBuilder::new(15, 4)
            .name("readme")
            .attack(AttackSpec::SignFlip { scale: 5.0 })
            .estimator(EstimatorSpec::GaussianQuadratic {
                dim: 20,
                sigma: 0.2,
            })
            .schedule(LearningRateSchedule::InverseTime {
                gamma: 0.2,
                tau: 50.0,
            })
            .rounds(40)
            .eval_every(20)
            .seed(42)
            .init_fill(3.0);
        let spec = builder.spec().unwrap();
        let json = spec.to_json().unwrap();
        let reparsed = ScenarioSpec::from_json(&json).unwrap();
        assert_eq!(reparsed, spec);
        // Builder-built and JSON-built scenarios follow identical
        // trajectories.
        let a = builder.run().unwrap();
        let b = Scenario::from_spec(reparsed).unwrap().run().unwrap();
        assert_eq!(a.final_params, b.final_params);
    }

    #[test]
    fn build_time_validation_catches_cross_constraints() {
        // Krum needs 2f + 2 < n: 9 workers cannot absorb f = 4.
        let err = ScenarioBuilder::new(9, 4).build().unwrap_err();
        assert!(err.to_string().contains("krum"), "got: {err}");
        // f >= n fails at the cluster level.
        assert!(ScenarioBuilder::new(3, 3).build().is_err());
        // Zero rounds fail before any wiring happens.
        assert!(ScenarioBuilder::new(9, 2).rounds(0).build().is_err());
        assert!(ScenarioBuilder::new(9, 2).eval_every(0).build().is_err());
    }
}
