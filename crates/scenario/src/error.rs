//! Error type for the scenario API.

use krum_attacks::AttackError;
use krum_core::AggregationError;
use krum_dist::TrainError;
use krum_metrics::ExportError;
use krum_models::ModelError;
use thiserror::Error;

/// Errors raised while parsing, validating, building or running a scenario.
#[derive(Debug, Error)]
pub enum ScenarioError {
    /// The scenario specification is internally inconsistent.
    #[error("invalid scenario: {0}")]
    InvalidSpec(String),
    /// The aggregation rule rejected its configuration or the proposals.
    #[error("aggregation rule: {0}")]
    Rule(#[from] AggregationError),
    /// The Byzantine strategy rejected its configuration or the round.
    #[error("attack: {0}")]
    Attack(#[from] AttackError),
    /// The workload (model/data/estimators) rejected its configuration.
    #[error("workload: {0}")]
    Model(#[from] ModelError),
    /// The training engine rejected its configuration or failed mid-run.
    #[error("training engine: {0}")]
    Train(#[from] TrainError),
    /// A scenario file or report failed to (de)serialise.
    #[error("serialisation: {0}")]
    Json(#[from] serde_json::Error),
    /// A report export failed.
    #[error("export: {0}")]
    Export(#[from] ExportError),
    /// Reading or writing a scenario/report file failed.
    #[error("io: {0}")]
    Io(#[from] std::io::Error),
}

impl ScenarioError {
    /// Convenience constructor for [`ScenarioError::InvalidSpec`].
    pub fn invalid(message: impl Into<String>) -> Self {
        Self::InvalidSpec(message.into())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_messages() {
        fn assert_traits<T: Send + Sync + std::error::Error>() {}
        assert_traits::<ScenarioError>();
        let e = ScenarioError::invalid("rounds must be >= 1");
        assert!(e.to_string().contains("invalid scenario"));
        let e: ScenarioError = AggregationError::NoProposals.into();
        assert!(matches!(e, ScenarioError::Rule(_)));
        let e: ScenarioError = TrainError::config("nope").into();
        assert!(e.to_string().contains("nope"));
    }
}
