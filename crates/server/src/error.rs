//! Error type of the aggregation server.

use krum_attacks::AttackError;
use krum_core::AggregationError;
use krum_dist::TrainError;
use krum_models::ModelError;
use krum_scenario::ScenarioError;
use krum_wire::WireError;
use thiserror::Error;

/// Errors raised by the server, the worker client or the loopback harness.
#[derive(Debug, Error)]
pub enum ServerError {
    /// A frame failed to encode, decode or cross the transport.
    #[error("wire: {0}")]
    Wire(#[from] WireError),
    /// A socket or listener operation failed.
    #[error("io: {0}")]
    Io(#[from] std::io::Error),
    /// The scenario failed to parse, validate or build.
    #[error("scenario: {0}")]
    Scenario(#[from] ScenarioError),
    /// The aggregation/step pipeline failed (including NaN-poisoned rounds).
    #[error("training: {0}")]
    Train(#[from] TrainError),
    /// A peer violated the protocol (out-of-order frame, foreign worker
    /// index, duplicate proposal, wrong dimension, …).
    #[error("protocol violation: {0}")]
    Protocol(String),
    /// A worker connection died while its job was still running.
    #[error("lost worker {worker} during round {round}: {message}")]
    WorkerLost {
        /// Worker slot whose connection died.
        worker: u32,
        /// Round in flight when it died.
        round: u64,
        /// Transport-level detail.
        message: String,
    },
    /// The server refused the connection at handshake.
    #[error("rejected by the server: {reason}")]
    Rejected {
        /// The server's stated reason.
        reason: String,
    },
    /// The server gave up waiting (a worker hung without disconnecting).
    #[error("timed out after {seconds}s waiting for {what}")]
    Timeout {
        /// Seconds waited.
        seconds: u64,
        /// What never arrived.
        what: String,
    },
    /// A job thread panicked (a bug, not a fault the policy can absorb);
    /// the panic is contained to the job and surfaced structurally.
    #[error("job {job}: the job thread panicked")]
    JobPanicked {
        /// The job whose thread died.
        job: u64,
    },
    /// More workers crashed than the crash policy can absorb: the round
    /// cannot close even degraded (fewer than `n − f` live proposals).
    #[error(
        "job {job} round {round}: only {live} live proposals, need at least \
         {needed} (n - f) to close even degraded"
    )]
    TooManyFaults {
        /// The job that lost its quorum.
        job: u64,
        /// The round that could not close.
        round: u64,
        /// Live proposals available when the round gave up.
        live: usize,
        /// Minimum proposals (`n − f`) any close requires.
        needed: usize,
    },
    /// The server was halted by a scripted fault plan after checkpointing
    /// (the in-process face of `kill -9`); resume from the checkpoint
    /// directory to continue.
    #[error("job {job} halted by the fault plan after round {round} (checkpoint written)")]
    Halted {
        /// The halted job.
        job: u64,
        /// Last completed (and checkpointed) round.
        round: u64,
    },
    /// A checkpoint file failed to parse or disagrees with the server.
    #[error("checkpoint: {0}")]
    Checkpoint(String),
}

impl ServerError {
    /// Convenience constructor for [`ServerError::Protocol`].
    pub fn protocol(message: impl Into<String>) -> Self {
        Self::Protocol(message.into())
    }
}

impl From<ModelError> for ServerError {
    fn from(e: ModelError) -> Self {
        Self::Scenario(ScenarioError::Model(e))
    }
}

impl From<AttackError> for ServerError {
    fn from(e: AttackError) -> Self {
        Self::Scenario(ScenarioError::Attack(e))
    }
}

impl From<AggregationError> for ServerError {
    fn from(e: AggregationError) -> Self {
        Self::Scenario(ScenarioError::Rule(e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_messages() {
        fn assert_traits<T: Send + Sync + std::error::Error>() {}
        assert_traits::<ServerError>();
        let e = ServerError::protocol("propose for a foreign job");
        assert!(e.to_string().contains("protocol violation"));
        let e: ServerError = WireError::UnknownTag(9).into();
        assert!(matches!(e, ServerError::Wire(_)));
        let e: ServerError = TrainError::config("nope").into();
        assert!(e.to_string().contains("nope"));
        let e: ServerError = ModelError::BadConfig("bad".into()).into();
        assert!(matches!(e, ServerError::Scenario(ScenarioError::Model(_))));
    }
}
