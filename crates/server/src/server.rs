//! The listening server: accepts workers, staffs jobs, runs them.
//!
//! `krum serve spec.json --listen ADDR --jobs K` binds one [`Server`]
//! hosting `K` concurrent jobs derived from the spec (job `k` keeps the
//! base name and seed for `k = 0` and uses `name#k` / `seed + k` after
//! that, so a multi-job serve is a seed sweep over live traffic). Each
//! accepted connection is handshaked (`Hello` → version check →
//! `JobAssign`), pinned to the first job with a free worker slot, and given
//! a dedicated reader thread that feeds the job's event channel; a job's
//! round state machine (see [`crate::job`]) starts the moment its roster is
//! complete, so jobs run concurrently as workers trickle in.
//!
//! The accept loop keeps listening *after* staffing completes: a worker
//! whose connection died mid-job comes back with a [`Frame::Rejoin`]
//! handshake and is re-staffed into its old slot (the job thread hears a
//! [`ConnEvent::Rejoined`]). Staffing itself is bounded by the spec's
//! staffing timeout — a roster that never fills becomes a structured
//! [`ServerError::Timeout`] outcome instead of a hung process.
//!
//! [`Server::resume`] rebuilds jobs from `job-<id>.ckpt` snapshots (see
//! [`crate::checkpoint`]): resumed jobs staff like fresh ones — restarted
//! workers `Hello` in, surviving workers `Rejoin` their old slots — and
//! continue from the checkpointed round bit-identically.

use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::{Path, PathBuf};
use std::sync::mpsc::{self, Sender};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use krum_scenario::{ScenarioReport, ScenarioSpec};
use krum_wire::{
    read_frame, write_frame, Frame, WireError, MAX_FRAME_BYTES, MIN_PROTOCOL_VERSION,
    PROTOCOL_VERSION,
};

use crate::checkpoint::{self, CheckpointConfig};
use crate::error::ServerError;
use crate::job::{run_job, ConnEvent, JobConnection, JobRuntime};

/// How often the accept loop polls for new sockets and finished jobs.
const ACCEPT_POLL: Duration = Duration::from_millis(2);

/// The outcome of one served job.
#[derive(Debug)]
pub struct JobOutcome {
    /// Job identifier (index into the serve batch).
    pub job: u64,
    /// The job's scenario name.
    pub name: String,
    /// The job's report, or why it failed.
    pub result: Result<ScenarioReport, ServerError>,
}

/// One job waiting for (or holding) its workers. Connections are
/// slot-addressed so a resumed job can be staffed out of order (`Rejoin`
/// names its slot; `Hello` takes the first free one).
struct JobSlot {
    id: u64,
    spec: ScenarioSpec,
    conns: Vec<Option<JobConnection>>,
    sender: Sender<ConnEvent>,
    events: Option<mpsc::Receiver<ConnEvent>>,
    runtime: Option<JobRuntime>,
    handle: Option<JoinHandle<Result<ScenarioReport, ServerError>>>,
}

impl JobSlot {
    fn new(id: u64, spec: ScenarioSpec, per_job: usize, runtime: JobRuntime) -> Self {
        let (sender, events) = mpsc::channel();
        Self {
            id,
            spec,
            conns: (0..per_job).map(|_| None).collect(),
            sender,
            events: Some(events),
            runtime: Some(runtime),
            handle: None,
        }
    }

    /// Starts the job thread once the roster is full.
    fn start_if_staffed(&mut self) {
        if self.handle.is_some() || self.conns.iter().any(Option::is_none) {
            return;
        }
        let id = self.id;
        let spec = self.spec.clone();
        // The roster-full guard above makes `filter_map` lossless, and
        // `events`/`runtime` are still in place iff the job never started
        // (`handle.is_none()`), so the let-else is unreachable in practice
        // — but a second start now degrades to a no-op instead of a panic.
        let conns: Vec<JobConnection> = self.conns.iter_mut().filter_map(Option::take).collect();
        let (Some(events), Some(runtime)) = (self.events.take(), self.runtime.take()) else {
            return;
        };
        self.handle = Some(std::thread::spawn(move || {
            run_job(id, spec, conns, events, runtime)
        }));
    }
}

/// A bound aggregation server hosting one or more jobs.
pub struct Server {
    listener: TcpListener,
    jobs: Vec<JobSlot>,
    handshake_secs: u64,
    staffing_secs: u64,
}

/// Rejects a spec whose omniscient-adversary relay (params plus every
/// honest proposal) cannot fit one frame, with a clear error up front
/// instead of a confusing lost-worker report mid-round.
fn validate_relay_size(spec: &ScenarioSpec) -> Result<(), ServerError> {
    let dim = spec.dim()?;
    let per_vector = 4 + 8 * dim;
    let relay_payload = 1 + 8 + 8 + per_vector + 4 + spec.cluster.honest() * per_vector;
    if relay_payload > MAX_FRAME_BYTES {
        return Err(ServerError::protocol(format!(
            "model dimension {dim} with {} honest workers is too large for the wire \
             protocol: the observation-relay frame would need {relay_payload} bytes \
             (limit {MAX_FRAME_BYTES}); shrink d or the cluster",
            spec.cluster.honest()
        )));
    }
    Ok(())
}

impl Server {
    /// Binds to `addr` and prepares `jobs` concurrent jobs derived from
    /// `spec` (validated first). Use `"127.0.0.1:0"` to let the OS pick a
    /// port (see [`Server::local_addr`]).
    ///
    /// # Errors
    ///
    /// Returns [`ServerError::Scenario`] for an invalid spec,
    /// [`ServerError::Protocol`] for a zero job count or an oversized
    /// relay, or [`ServerError::Io`] when the bind fails.
    pub fn bind(addr: &str, spec: ScenarioSpec, jobs: usize) -> Result<Self, ServerError> {
        spec.validate()?;
        if jobs == 0 {
            return Err(ServerError::protocol("a server needs at least one job"));
        }
        validate_relay_size(&spec)?;
        let timeouts = spec.execution.remote_timeouts();
        let cluster = spec.cluster;
        let per_job = cluster.honest() + usize::from(cluster.byzantine() > 0);
        let listener = TcpListener::bind(addr)?;
        let jobs = (0..jobs as u64)
            .map(|k| {
                let mut job_spec = spec.clone();
                if k > 0 {
                    job_spec.name = format!("{}#{k}", spec.name);
                    job_spec.seed = spec.seed.wrapping_add(k);
                }
                let runtime = JobRuntime::for_spec(&job_spec);
                JobSlot::new(k, job_spec, per_job, runtime)
            })
            .collect();
        Ok(Self {
            listener,
            jobs,
            handshake_secs: timeouts.handshake_secs,
            staffing_secs: timeouts.staffing_secs,
        })
    }

    /// Binds to `addr` and rebuilds every `job-<id>.ckpt` snapshot under
    /// `dir` as a resumable job (specs, seeds and completed rounds come
    /// from the snapshots). Resumed jobs staff like fresh ones: restarted
    /// workers `Hello` in and fast-forward their RNG streams, surviving
    /// workers `Rejoin` their old slots.
    ///
    /// Checkpointing does not continue automatically — chain
    /// [`Server::with_checkpoints`] to keep snapshotting.
    ///
    /// # Errors
    ///
    /// Returns [`ServerError::Checkpoint`] when `dir` holds no usable
    /// snapshots (or inconsistent ones) and [`ServerError::Io`]/
    /// [`ServerError::Wire`] for unreadable or corrupt files.
    pub fn resume(addr: &str, dir: &Path) -> Result<Self, ServerError> {
        let found = checkpoint::list_checkpoints(dir)?;
        let mut jobs = Vec::new();
        let mut handshake_secs = 0;
        let mut staffing_secs = 0;
        for (id, path) in found {
            let resume = checkpoint::read_checkpoint(&path)?;
            if resume.id != id {
                return Err(ServerError::Checkpoint(format!(
                    "{} says it belongs to job {}, not job {id}",
                    path.display(),
                    resume.id
                )));
            }
            let spec = resume.spec.clone();
            validate_relay_size(&spec)?;
            let timeouts = spec.execution.remote_timeouts();
            handshake_secs = handshake_secs.max(timeouts.handshake_secs);
            staffing_secs = staffing_secs.max(timeouts.staffing_secs);
            let cluster = spec.cluster;
            let per_job = cluster.honest() + usize::from(cluster.byzantine() > 0);
            let mut runtime = JobRuntime::for_spec(&spec);
            runtime.resume = Some(resume);
            jobs.push(JobSlot::new(id, spec, per_job, runtime));
        }
        let listener = TcpListener::bind(addr)?;
        Ok(Self {
            listener,
            jobs,
            handshake_secs,
            staffing_secs,
        })
    }

    /// Enables periodic checkpointing: every job snapshots to
    /// `dir/job-<id>.ckpt` after each `every`-th completed round.
    #[must_use]
    pub fn with_checkpoints(mut self, dir: PathBuf, every: u64) -> Self {
        for slot in &mut self.jobs {
            if let Some(runtime) = &mut slot.runtime {
                runtime.checkpoint = Some(CheckpointConfig {
                    dir: dir.clone(),
                    every: every.max(1),
                });
            }
        }
        self
    }

    /// Scripted `kill -9`: every job halts (after checkpointing) once
    /// `round` completes, reporting [`ServerError::Halted`]. Driven by the
    /// chaos harness; resume from the checkpoint directory to continue.
    #[must_use]
    pub fn with_halt_after_round(mut self, round: u64) -> Self {
        for slot in &mut self.jobs {
            if let Some(runtime) = &mut slot.runtime {
                runtime.halt_after_round = Some(round);
            }
        }
        self
    }

    /// The address the server actually listens on.
    ///
    /// # Errors
    ///
    /// Returns [`ServerError::Io`] when the socket has no local address.
    pub fn local_addr(&self) -> Result<SocketAddr, ServerError> {
        Ok(self.listener.local_addr()?)
    }

    /// Connections each job needs before it starts: one per honest worker
    /// plus one adversary connection when `f > 0` (the paper's single
    /// omniscient adversary controls all `f` Byzantine workers).
    pub fn connections_per_job(&self) -> usize {
        self.jobs.first().map_or(0, |j| j.conns.len())
    }

    /// The per-job scenario specs this server will run, in job order.
    pub fn job_specs(&self) -> Vec<ScenarioSpec> {
        self.jobs.iter().map(|j| j.spec.clone()).collect()
    }

    /// Accepts workers until every job is staffed, runs the jobs to
    /// completion, and returns one outcome per job (in job order). Jobs run
    /// concurrently: each starts as soon as its roster fills. The accept
    /// loop stays open throughout so crashed workers can `Rejoin`; a roster
    /// that does not fill within the staffing timeout becomes a structured
    /// [`ServerError::Timeout`] outcome for that job.
    ///
    /// # Errors
    ///
    /// Returns [`ServerError::Io`] when accepting fails outright. Per-job
    /// failures (a lost worker, a poisoned round, a panicked job thread)
    /// land in their [`JobOutcome::result`] instead, so one bad job cannot
    /// take down its siblings.
    pub fn run(mut self) -> Result<Vec<JobOutcome>, ServerError> {
        self.listener.set_nonblocking(true)?;
        let staffing_deadline = Instant::now() + Duration::from_secs(self.staffing_secs);
        let mut staffing_expired = false;
        loop {
            // Drain everything the backlog holds: fresh workers and
            // rejoiners alike. A broken handshake only costs that socket.
            loop {
                match self.listener.accept() {
                    Ok((stream, _)) => {
                        let _ = self.admit(stream);
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                    Err(e) => return Err(e.into()),
                }
            }
            if !staffing_expired && Instant::now() >= staffing_deadline {
                staffing_expired = true;
                for slot in self.jobs.iter_mut().filter(|j| j.handle.is_none()) {
                    for conn in slot.conns.iter_mut().flatten() {
                        let _ = write_frame(
                            &mut conn.stream,
                            &Frame::Shutdown {
                                job: slot.id,
                                reason: "staffing timed out: the roster never filled".into(),
                            },
                        );
                    }
                    slot.conns.iter_mut().for_each(|c| *c = None);
                }
            }
            let busy = self.jobs.iter().any(|j| match &j.handle {
                Some(handle) => !handle.is_finished(),
                None => !staffing_expired,
            });
            if !busy {
                break;
            }
            std::thread::sleep(ACCEPT_POLL);
        }
        // Collect the job results; a panicked job thread is contained to a
        // structured per-job error.
        let staffing_secs = self.staffing_secs;
        let outcomes = self
            .jobs
            .drain(..)
            .map(|slot| {
                let result = match slot.handle {
                    Some(handle) => handle
                        .join()
                        .unwrap_or(Err(ServerError::JobPanicked { job: slot.id })),
                    None => Err(ServerError::Timeout {
                        seconds: staffing_secs,
                        what: format!("staffing job {} (the roster never filled)", slot.id),
                    }),
                };
                JobOutcome {
                    job: slot.id,
                    name: slot.spec.name.clone(),
                    result,
                }
            })
            .collect();
        Ok(outcomes)
    }

    /// Handshakes one socket: `Hello` staffs the first free slot, `Rejoin`
    /// re-staffs a named slot of a running (or resumed) job.
    fn admit(&mut self, mut stream: TcpStream) -> Result<(), ServerError> {
        // Accepted from a nonblocking listener: make the handshake blocking
        // and bounded. Rounds are a latency-bound request/response
        // ping-pong of small-ish frames, so Nagle's algorithm goes too.
        stream.set_nonblocking(false)?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(Duration::from_secs(self.handshake_secs)))?;
        let (frame, _) = read_frame(&mut stream)?;
        match frame {
            Frame::Hello { version, .. } => self.admit_hello(stream, version),
            Frame::Rejoin {
                version,
                job,
                worker,
            } => self.admit_rejoin(stream, version, job, worker),
            other => Err(ServerError::protocol(format!(
                "expected Hello or Rejoin, got {}",
                other.name()
            ))),
        }
    }

    fn admit_hello(&mut self, mut stream: TcpStream, version: u16) -> Result<(), ServerError> {
        if !(MIN_PROTOCOL_VERSION..=PROTOCOL_VERSION).contains(&version) {
            let _ = write_frame(&mut stream, &reject_frame(0, version));
            return Ok(());
        }
        // A started job's `conns` were moved into its thread, so "free
        // slot" means: not yet started and roster still short. Finding
        // the job and the slot index in one pass keeps a single source
        // of truth — no second lookup that "can't fail".
        let Some((slot, worker)) = self.jobs.iter_mut().find_map(|j| {
            if j.handle.is_some() {
                return None;
            }
            let w = j.conns.iter().position(Option::is_none)?;
            Some((j, w as u32))
        }) else {
            let _ = write_frame(
                &mut stream,
                &Frame::Shutdown {
                    job: 0,
                    reason: "every job is fully staffed".into(),
                },
            );
            return Ok(());
        };
        write_frame(
            &mut stream,
            &Frame::JobAssign {
                job: slot.id,
                worker,
                seed: slot.spec.seed,
                spec_json: slot.spec.to_json()?,
            },
        )?;
        stream.set_read_timeout(None)?;
        let write_half = stream.try_clone()?;
        let sender = slot.sender.clone();
        // Detached on purpose: the reader exits when its socket closes (or
        // when the job drops its receiver), so a hung foreign client can
        // never wedge the serve loop on a join.
        std::thread::spawn(move || reader_loop(stream, worker, sender));
        if let Some(conn) = slot.conns.get_mut(worker as usize) {
            *conn = Some(JobConnection {
                stream: write_half,
                version,
            });
        }
        slot.start_if_staffed();
        Ok(())
    }

    fn admit_rejoin(
        &mut self,
        mut stream: TcpStream,
        version: u16,
        job: u64,
        worker: u32,
    ) -> Result<(), ServerError> {
        if !(MIN_PROTOCOL_VERSION..=PROTOCOL_VERSION).contains(&version) {
            let _ = write_frame(&mut stream, &reject_frame(job, version));
            return Ok(());
        }
        let reject = |mut stream: TcpStream, reason: String| {
            let _ = write_frame(&mut stream, &Frame::Shutdown { job, reason });
            Ok(())
        };
        let Some(slot) = self.jobs.iter_mut().find(|j| j.id == job) else {
            return reject(stream, format!("no job {job} on this server"));
        };
        let w = worker as usize;
        if w >= slot.conns.len() {
            return reject(stream, format!("job {job} has no worker slot {worker}"));
        }
        if slot.handle.as_ref().is_some_and(JoinHandle::is_finished) {
            return reject(stream, format!("job {job} already finished"));
        }
        if slot.handle.is_none() && slot.conns.get(w).is_some_and(Option::is_some) {
            return reject(
                stream,
                format!("slot {worker} of job {job} is already connected"),
            );
        }
        // Same assignment a fresh staffing would get: same slot, same
        // seed, same spec — the worker's determinism does the rest.
        write_frame(
            &mut stream,
            &Frame::JobAssign {
                job: slot.id,
                worker,
                seed: slot.spec.seed,
                spec_json: slot.spec.to_json()?,
            },
        )?;
        stream.set_read_timeout(None)?;
        let write_half = stream.try_clone()?;
        let sender = slot.sender.clone();
        std::thread::spawn(move || reader_loop(stream, worker, sender));
        let conn = JobConnection {
            stream: write_half,
            version,
        };
        if slot.handle.is_some() {
            // Running job: hand the fresh write half to the round machine.
            if slot
                .sender
                .send(ConnEvent::Rejoined {
                    worker,
                    stream: conn.stream,
                    version,
                })
                .is_err()
            {
                // The job finished between the check and the send.
            }
        } else {
            // Resumed-but-unstarted job: staff the old slot directly (the
            // bounds reject above proved `w` is a real slot).
            if let Some(c) = slot.conns.get_mut(w) {
                *c = Some(conn);
            }
            slot.start_if_staffed();
        }
        Ok(())
    }
}

/// The version-mismatch goodbye.
fn reject_frame(job: u64, version: u16) -> Frame {
    Frame::Shutdown {
        job,
        reason: format!(
            "protocol version mismatch: you speak v{version}, \
             this server speaks v{MIN_PROTOCOL_VERSION}..v{PROTOCOL_VERSION}"
        ),
    }
}

impl std::fmt::Debug for Server {
    fn fmt(&self, out: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        out.debug_struct("Server")
            .field("addr", &self.listener.local_addr().ok())
            .field("jobs", &self.jobs.len())
            .finish_non_exhaustive()
    }
}

/// Reads frames off one worker socket into the job's event channel until
/// the socket dies or the job hangs up its receiver.
fn reader_loop(mut stream: TcpStream, worker: u32, sender: Sender<ConnEvent>) {
    loop {
        match read_frame(&mut stream) {
            Ok((frame, bytes)) => {
                if sender
                    .send(ConnEvent::Frame {
                        worker,
                        frame,
                        bytes,
                    })
                    .is_err()
                {
                    // The job finished and dropped its receiver.
                    break;
                }
            }
            Err(WireError::Closed) => {
                let _ = sender.send(ConnEvent::Closed {
                    worker,
                    error: None,
                });
                break;
            }
            Err(e) => {
                let _ = sender.send(ConnEvent::Closed {
                    worker,
                    error: Some(e),
                });
                break;
            }
        }
    }
}
