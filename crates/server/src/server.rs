//! The listening server: accepts workers, staffs jobs, runs them.
//!
//! `krum serve spec.json --listen ADDR --jobs K` binds one [`Server`]
//! hosting `K` concurrent jobs derived from the spec (job `k` keeps the
//! base name and seed for `k = 0` and uses `name#k` / `seed + k` after
//! that, so a multi-job serve is a seed sweep over live traffic). Each
//! accepted connection is handshaked (`Hello` → version check →
//! `JobAssign`), pinned to the first job with a free worker slot, and given
//! a dedicated reader thread that feeds the job's event channel; a job's
//! round state machine (see [`crate::job`]) starts the moment its roster is
//! complete, so jobs run concurrently as workers trickle in.

use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::mpsc::{self, Sender};
use std::thread::JoinHandle;
use std::time::Duration;

use krum_scenario::{ScenarioReport, ScenarioSpec};
use krum_wire::{read_frame, write_frame, Frame, WireError, MAX_FRAME_BYTES, PROTOCOL_VERSION};

use crate::error::ServerError;
use crate::job::{run_job, ConnEvent, JobConnection};

/// How long a freshly accepted socket gets to complete the `Hello`
/// handshake before the server drops it. Handshakes run serially on the
/// accept thread — simple and race-free for the lab/loopback deployments
/// this subsystem targets, at the cost that one stalled client can delay
/// further staffing by up to this timeout (an internet-facing deployment
/// would move the handshake onto the per-connection thread).
const HANDSHAKE_TIMEOUT: Duration = Duration::from_secs(10);

/// The outcome of one served job.
#[derive(Debug)]
pub struct JobOutcome {
    /// Job identifier (index into the serve batch).
    pub job: u64,
    /// The job's scenario name.
    pub name: String,
    /// The job's report, or why it failed.
    pub result: Result<ScenarioReport, ServerError>,
}

/// One job waiting for (or holding) its workers.
struct JobSlot {
    id: u64,
    spec: ScenarioSpec,
    conns: Vec<JobConnection>,
    sender: Sender<ConnEvent>,
    events: Option<mpsc::Receiver<ConnEvent>>,
    handle: Option<JoinHandle<Result<ScenarioReport, ServerError>>>,
}

/// A bound aggregation server hosting one or more jobs.
pub struct Server {
    listener: TcpListener,
    jobs: Vec<JobSlot>,
}

impl Server {
    /// Binds to `addr` and prepares `jobs` concurrent jobs derived from
    /// `spec` (validated first). Use `"127.0.0.1:0"` to let the OS pick a
    /// port (see [`Server::local_addr`]).
    ///
    /// # Errors
    ///
    /// Returns [`ServerError::Scenario`] for an invalid spec,
    /// [`ServerError::Protocol`] for a zero job count, or
    /// [`ServerError::Io`] when the bind fails.
    pub fn bind(addr: &str, spec: ScenarioSpec, jobs: usize) -> Result<Self, ServerError> {
        spec.validate()?;
        if jobs == 0 {
            return Err(ServerError::protocol("a server needs at least one job"));
        }
        // The largest frame a job ever produces is the omniscient-adversary
        // relay (params plus every honest proposal). Reject a spec whose
        // relay cannot fit one frame up front, with a clear error, instead
        // of dying mid-round with a confusing lost-worker report when the
        // receiver rejects it.
        let dim = spec.dim()?;
        let per_vector = 4 + 8 * dim;
        let relay_payload = 1 + 8 + 8 + per_vector + 4 + spec.cluster.honest() * per_vector;
        if relay_payload > MAX_FRAME_BYTES {
            return Err(ServerError::protocol(format!(
                "model dimension {dim} with {} honest workers is too large for the wire                  protocol: the observation-relay frame would need {relay_payload} bytes                  (limit {MAX_FRAME_BYTES}); shrink d or the cluster",
                spec.cluster.honest()
            )));
        }
        let listener = TcpListener::bind(addr)?;
        let jobs = (0..jobs as u64)
            .map(|k| {
                let mut job_spec = spec.clone();
                if k > 0 {
                    job_spec.name = format!("{}#{k}", spec.name);
                    job_spec.seed = spec.seed.wrapping_add(k);
                }
                let (sender, events) = mpsc::channel();
                JobSlot {
                    id: k,
                    spec: job_spec,
                    conns: Vec::new(),
                    sender,
                    events: Some(events),
                    handle: None,
                }
            })
            .collect();
        Ok(Self { listener, jobs })
    }

    /// The address the server actually listens on.
    ///
    /// # Errors
    ///
    /// Returns [`ServerError::Io`] when the socket has no local address.
    pub fn local_addr(&self) -> Result<SocketAddr, ServerError> {
        Ok(self.listener.local_addr()?)
    }

    /// Connections each job needs before it starts: one per honest worker
    /// plus one adversary connection when `f > 0` (the paper's single
    /// omniscient adversary controls all `f` Byzantine workers).
    pub fn connections_per_job(&self) -> usize {
        let cluster = self.jobs[0].spec.cluster;
        cluster.honest() + usize::from(cluster.byzantine() > 0)
    }

    /// The per-job scenario specs this server will run, in job order.
    pub fn job_specs(&self) -> Vec<ScenarioSpec> {
        self.jobs.iter().map(|j| j.spec.clone()).collect()
    }

    /// Accepts workers until every job is staffed, runs the jobs to
    /// completion, and returns one outcome per job (in job order). Jobs run
    /// concurrently: each starts as soon as its roster fills.
    ///
    /// # Errors
    ///
    /// Returns [`ServerError::Io`] when accepting fails outright. Per-job
    /// failures (a lost worker, a poisoned round) land in their
    /// [`JobOutcome::result`] instead, so one bad job cannot take down its
    /// siblings.
    pub fn run(mut self) -> Result<Vec<JobOutcome>, ServerError> {
        let per_job = self.connections_per_job();
        let mut staffed = 0usize;
        let total = per_job * self.jobs.len();
        while staffed < total {
            let (stream, _) = self.listener.accept()?;
            match self.admit(stream, per_job) {
                Ok(true) => staffed += 1,
                Ok(false) => {}
                Err(_) => {
                    // A broken handshake only costs that socket.
                }
            }
        }
        // Roster complete everywhere: collect the job results.
        let outcomes = self
            .jobs
            .drain(..)
            .map(|slot| {
                let result = match slot.handle {
                    Some(handle) => handle
                        .join()
                        .unwrap_or_else(|_| Err(ServerError::protocol("job thread panicked"))),
                    None => Err(ServerError::protocol("job was never staffed")),
                };
                JobOutcome {
                    job: slot.id,
                    name: slot.spec.name.clone(),
                    result,
                }
            })
            .collect();
        Ok(outcomes)
    }

    /// Handshakes one socket and pins it to a job. Returns `Ok(true)` when
    /// a worker slot was filled, `Ok(false)` when the socket was rejected
    /// (version mismatch, no free slot).
    fn admit(&mut self, mut stream: TcpStream, per_job: usize) -> Result<bool, ServerError> {
        // Rounds are a latency-bound request/response ping-pong of small-ish
        // frames: Nagle's algorithm would add tens of milliseconds per
        // round, so turn it off.
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(HANDSHAKE_TIMEOUT))?;
        let (frame, _) = read_frame(&mut stream)?;
        let version = match frame {
            Frame::Hello { version, .. } => version,
            other => {
                return Err(ServerError::protocol(format!(
                    "expected Hello, got {}",
                    other.name()
                )))
            }
        };
        if version != PROTOCOL_VERSION {
            let _ = write_frame(
                &mut stream,
                &Frame::Shutdown {
                    job: 0,
                    reason: format!(
                        "protocol version mismatch: you speak v{version}, \
                         this server speaks v{PROTOCOL_VERSION}"
                    ),
                },
            );
            return Ok(false);
        }
        // A started job's `conns` was moved into its thread, so "free
        // slot" means: not yet started and roster still short.
        let Some(slot) = self
            .jobs
            .iter_mut()
            .find(|j| j.handle.is_none() && j.conns.len() < per_job)
        else {
            let _ = write_frame(
                &mut stream,
                &Frame::Shutdown {
                    job: 0,
                    reason: "every job is fully staffed".into(),
                },
            );
            return Ok(false);
        };
        let worker = slot.conns.len() as u32;
        write_frame(
            &mut stream,
            &Frame::JobAssign {
                job: slot.id,
                worker,
                seed: slot.spec.seed,
                spec_json: slot.spec.to_json()?,
            },
        )?;
        stream.set_read_timeout(None)?;
        let write_half = stream.try_clone()?;
        let sender = slot.sender.clone();
        // Detached on purpose: the reader exits when its socket closes (or
        // when the job drops its receiver), so a hung foreign client can
        // never wedge the serve loop on a join.
        std::thread::spawn(move || reader_loop(stream, worker, sender));
        slot.conns.push(JobConnection { stream: write_half });
        if slot.conns.len() == per_job {
            let id = slot.id;
            let spec = slot.spec.clone();
            let conns = std::mem::take(&mut slot.conns);
            let events = slot.events.take().expect("roster fills exactly once");
            slot.handle = Some(std::thread::spawn(move || run_job(id, spec, conns, events)));
        }
        Ok(true)
    }
}

impl std::fmt::Debug for Server {
    fn fmt(&self, out: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        out.debug_struct("Server")
            .field("addr", &self.listener.local_addr().ok())
            .field("jobs", &self.jobs.len())
            .finish_non_exhaustive()
    }
}

/// Reads frames off one worker socket into the job's event channel until
/// the socket dies or the job hangs up its receiver.
fn reader_loop(mut stream: TcpStream, worker: u32, sender: Sender<ConnEvent>) {
    loop {
        match read_frame(&mut stream) {
            Ok((frame, bytes)) => {
                if sender
                    .send(ConnEvent::Frame {
                        worker,
                        frame,
                        bytes,
                    })
                    .is_err()
                {
                    // The job finished and dropped its receiver.
                    break;
                }
            }
            Err(WireError::Closed) => {
                let _ = sender.send(ConnEvent::Closed {
                    worker,
                    error: None,
                });
                break;
            }
            Err(e) => {
                let _ = sender.send(ConnEvent::Closed {
                    worker,
                    error: Some(e),
                });
                break;
            }
        }
    }
}
