//! The per-job round state machine: real arrivals in, rounds out.
//!
//! One job is one scenario served over sockets. The job thread owns the
//! write halves of its worker connections and a channel fed by the
//! per-connection reader threads; each round it
//!
//! 1. **broadcasts** `x_t` to every live honest worker,
//! 2. **collects** proposals in *real arrival order*, seeding the round
//!    with the carried stragglers of earlier rounds (they are already at
//!    the server, so they outrank every fresh arrival — exactly the
//!    in-process async engine's tier-0 semantics),
//! 3. **relays** the honest proposals to the adversary connection once
//!    every honest proposal the round can still produce is in (the paper's
//!    omniscient adversary, made explicit as bytes on the wire),
//! 4. **closes the quorum** at the `quorum`-th distinct-worker arrival
//!    (at most one proposal per worker per quorum — the Byzantine share
//!    stays capped at `f`), carries the leftovers forward under the
//!    `max_staleness` bound, and
//! 5. hands the quorum to the shared [`RoundCore`] for
//!    aggregate → step → record — the same code path the in-process
//!    engines run, which is why a loopback barrier run reproduces
//!    [`Scenario::run`](krum_scenario::Scenario) bit-for-bit.
//!
//! The quorum's composition is ordered by real arrivals, but the
//! *aggregation input* is sorted by `(issued_round, worker)` like the
//! in-process async engine, so the rule sees a deterministic layout.
//!
//! # Churn: crash faults, heartbeats, rejoin, degraded rounds
//!
//! A connection that dies (or goes silent past the heartbeat grace) is a
//! **crash fault**. What happens next is the spec's crash policy:
//!
//! * **fail fast** (non-`Remote` execution) — the job aborts with a
//!   structured [`ServerError::WorkerLost`], exactly as before;
//! * **wait-for-rejoin** — the slot is marked dead and the round keeps
//!   waiting (bounded by the round timeout) for the worker to come back
//!   through the [`Frame::Rejoin`] handshake. A rejoiner is re-staffed
//!   into its old slot and hears the current round again; because workers
//!   replay cached answers (or fast-forward their deterministic RNG
//!   streams), the recovered round is *bit-identical* to an uninterrupted
//!   one;
//! * **proceed-at-quorum** — the round stops waiting for dead slots and
//!   closes over the live proposals. When that leaves fewer than the
//!   configured quorum, the round closes **degraded**: the same rule is
//!   rebuilt at the surviving arity (Krum's guarantee holds while
//!   `2f + 2 < live`), and the record's `degraded_rounds` column says so.
//!   Fewer than `n − f` live proposals is unrecoverable —
//!   [`ServerError::TooManyFaults`].
//!
//! Silence is probed with [`Frame::Ping`]/[`Frame::Pong`] heartbeats; a
//! connection that misses [`MISSED_HEARTBEATS`] consecutive intervals is
//! declared hung — a crash fault, same as a dropped socket.
//!
//! The job can also **checkpoint** (snapshot `x_t`, the carry-over queue
//! and the history after every cadence-th round, see [`crate::checkpoint`])
//! and **halt** after a scripted round (the in-process face of `kill -9`,
//! driven by the chaos harness) — a resumed job continues bit-identically.

use std::net::{Shutdown, TcpStream};
use std::sync::mpsc::{Receiver, RecvTimeoutError};
use std::sync::Arc;
use std::time::{Duration, Instant};

use krum_compress::GradientCodec;
use krum_dist::{DriftTracker, RoundCore, TrainingConfig};
use krum_metrics::{RoundRecord, TrainingHistory};
use krum_models::GradientEstimator;
use krum_scenario::{
    CrashPolicy, ExecutionSpec, InitSpec, RemoteTimeouts, ScenarioReport, ScenarioSpec,
};
use krum_tensor::Vector;
use krum_wire::{write_frame, CarryOver, Frame, SelectedWorker, WireError};

use crate::checkpoint::{self, CheckpointConfig, ResumeState};
use crate::error::ServerError;

/// Consecutive silent heartbeat intervals after which a live-but-mute
/// connection is declared hung (a crash fault). The worker's read loop
/// answers pings between rounds of real work, so the grace only has to
/// cover one estimate — heartbeats are configured per spec
/// (`heartbeat_secs`), this multiplier is the protocol's patience.
pub(crate) const MISSED_HEARTBEATS: u32 = 3;

/// One event from a connection's reader thread (or the accept loop, for
/// rejoins).
#[derive(Debug)]
pub(crate) enum ConnEvent {
    /// A frame arrived from the given worker slot (`bytes` as framed).
    Frame {
        /// Worker slot of the sending connection.
        worker: u32,
        /// The decoded frame.
        frame: Frame,
        /// Size of the frame on the wire.
        bytes: usize,
    },
    /// The connection died (cleanly when `error` is `None`).
    Closed {
        /// Worker slot of the dead connection.
        worker: u32,
        /// The transport error, if the close was not clean.
        error: Option<WireError>,
    },
    /// A worker re-staffed its old slot through the `Rejoin` handshake;
    /// `stream` is the fresh write half (a new reader thread already feeds
    /// this channel).
    Rejoined {
        /// Worker slot being re-staffed.
        worker: u32,
        /// Write half of the replacement socket.
        stream: TcpStream,
        /// Protocol version the rejoiner negotiated (it may differ from
        /// the slot's previous incarnation).
        version: u16,
    },
}

/// Write half of one worker connection. A job's connections are indexed by
/// worker slot (0..honest are honest, `honest` is the adversary).
pub(crate) struct JobConnection {
    /// Write half of the socket (reads happen on the reader thread).
    pub stream: TcpStream,
    /// Protocol version the handshake negotiated for this connection. A
    /// v1 peer on a codec-bearing job hears raw (already quantized)
    /// frames — the version fallback — while v2 peers hear the
    /// compressed framing.
    pub version: u16,
}

/// Everything the serving layer decided about *how* to run a job, as
/// opposed to *what* the job computes (the spec): timeouts, crash policy,
/// checkpointing, scripted halts and resume state.
pub(crate) struct JobRuntime {
    /// Round/handshake/staffing/heartbeat timing knobs.
    pub timeouts: RemoteTimeouts,
    /// `Some` for `Remote` execution (crash faults absorbed per policy);
    /// `None` for every other execution strategy (fail fast, as before).
    pub on_crash: Option<CrashPolicy>,
    /// Periodic snapshots, when enabled.
    pub checkpoint: Option<CheckpointConfig>,
    /// Scripted `kill -9`: halt (after checkpointing) once this round
    /// completes.
    pub halt_after_round: Option<u64>,
    /// Continue from this snapshot instead of round 0.
    pub resume: Option<ResumeState>,
}

impl JobRuntime {
    /// The runtime a bare spec implies: its timeouts, its crash policy,
    /// no checkpointing, no scripted faults.
    pub fn for_spec(spec: &ScenarioSpec) -> Self {
        let timeouts = spec.execution.remote_timeouts();
        let on_crash = match spec.execution {
            ExecutionSpec::Remote { .. } => Some(timeouts.on_crash),
            _ => None,
        };
        Self {
            timeouts,
            on_crash,
            checkpoint: None,
            halt_after_round: None,
            resume: None,
        }
    }
}

/// How rounds close for a given execution spec: quorum size, staleness
/// bound, and whether the quorum/staleness columns should be recorded.
fn close_policy(execution: &ExecutionSpec, n: usize) -> (usize, usize, bool) {
    match *execution {
        ExecutionSpec::Sequential | ExecutionSpec::Threaded { .. } => (n, 0, false),
        ExecutionSpec::AsyncQuorum {
            quorum,
            max_staleness,
            ..
        } => (quorum, max_staleness, true),
        ExecutionSpec::Remote {
            quorum,
            max_staleness,
            ..
        } => match quorum {
            Some(q) => (q, max_staleness, true),
            None => (n, max_staleness, false),
        },
    }
}

/// The per-round closing rules of one job, bundled once in `drive_job`.
struct ClosePolicy {
    quorum: usize,
    max_staleness: usize,
    record_quorum: bool,
    timeouts: RemoteTimeouts,
    on_crash: Option<CrashPolicy>,
}

/// A proposal that arrived but did not make its round's quorum, carried
/// forward as a stale candidate.
struct Pending {
    worker: usize,
    issued_round: usize,
    vector: Vector,
}

/// One selected quorum member.
struct Selected {
    worker: usize,
    issued_round: usize,
    vector: Vector,
}

/// Runs one job to completion: `rounds` server rounds over the given
/// connections, returning the scenario report. On failure the workers are
/// sent a `Shutdown` naming the error before it propagates — except for a
/// scripted halt, which mimics `kill -9`: the sockets just die.
pub(crate) fn run_job(
    id: u64,
    spec: ScenarioSpec,
    mut conns: Vec<JobConnection>,
    events: Receiver<ConnEvent>,
    runtime: JobRuntime,
) -> Result<ScenarioReport, ServerError> {
    let result = drive_job(id, &spec, &mut conns, &events, &runtime);
    match result {
        Ok(report) => {
            shutdown_all(id, &mut conns, "job complete");
            Ok(report)
        }
        Err(e @ ServerError::Halted { .. }) => {
            // Scripted kill: no goodbye. The workers discover the death as
            // a dropped connection and retry their rejoin handshake against
            // whatever comes back up (the resumed server).
            for conn in conns.iter_mut() {
                let _ = conn.stream.shutdown(Shutdown::Both);
            }
            Err(e)
        }
        Err(e) => {
            shutdown_all(id, &mut conns, &format!("job failed: {e}"));
            Err(e)
        }
    }
}

/// Best-effort `Shutdown` to every connection (failures are moot: the
/// session is over either way).
fn shutdown_all(id: u64, conns: &mut [JobConnection], reason: &str) {
    for conn in conns.iter_mut() {
        let _ = write_frame(
            &mut conn.stream,
            &Frame::Shutdown {
                job: id,
                reason: reason.to_string(),
            },
        );
    }
}

/// Declares a crash fault on connection `worker`: fatal under fail-fast,
/// absorbed (slot marked dead, socket closed so the peer notices and can
/// rejoin) under a crash policy. A second obituary for an already-dead
/// slot is a no-op.
fn crash(
    on_crash: Option<CrashPolicy>,
    alive: &mut [bool],
    conns: &mut [JobConnection],
    worker: u32,
    round: usize,
    message: &str,
) -> Result<(), ServerError> {
    let w = worker as usize;
    if w >= alive.len() || !alive[w] {
        return Ok(());
    }
    if on_crash.is_none() {
        return Err(ServerError::WorkerLost {
            worker,
            round: round as u64,
            message: message.into(),
        });
    }
    alive[w] = false;
    // Close our half too: a peer alive behind a one-way fault sees EOF and
    // starts its rejoin loop instead of waiting forever.
    let _ = conns[w].stream.shutdown(Shutdown::Both);
    Ok(())
}

/// The observation relay: every honest proposal of the round that exists
/// so far, in worker order. A barrier round relays all `n − f`; a
/// crash-degraded round relays what the live workers produced (the relay
/// is withheld until at least one exists, so it is never empty). With a
/// negotiated codec and a v2 adversary, the relay rides the compressed
/// framing (proposals encoded against this round's broadcast params); a
/// v1 adversary hears the same quantized values raw.
fn relay_frame(
    id: u64,
    round: usize,
    params: &Vector,
    observed: &[Option<Vec<f64>>],
    codec: Option<&dyn GradientCodec>,
    version: u16,
) -> Frame {
    match codec {
        Some(codec) if version >= 2 => Frame::BroadcastC {
            job: id,
            round: round as u64,
            params: codec.encode_params(params.as_slice()),
            observed: observed
                .iter()
                .filter_map(|o| o.as_ref().map(|v| codec.encode(v, params.as_slice())))
                .collect(),
        },
        _ => Frame::Broadcast {
            job: id,
            round: round as u64,
            params: params.as_slice().to_vec(),
            observed: observed.iter().filter_map(Clone::clone).collect(),
        },
    }
}

/// Bytes a `Broadcast` frame carrying `observed` relayed proposals costs
/// at the raw (uncompressed) framing: 9 bytes of frame overhead (length
/// prefix, tag, checksum), the job/round header, and `4 + 8·dim` per
/// vector.
fn raw_broadcast_len(dim: usize, observed: usize) -> u64 {
    (9 + 8 + 8 + (4 + 8 * dim) + 4 + observed * (4 + 8 * dim)) as u64
}

/// Bytes a `Propose` frame costs at the raw (uncompressed) framing.
fn raw_propose_len(dim: usize) -> u64 {
    (9 + 8 + 8 + 4 + (4 + 8 * dim)) as u64
}

fn drive_job(
    id: u64,
    spec: &ScenarioSpec,
    conns: &mut [JobConnection],
    events: &Receiver<ConnEvent>,
    runtime: &JobRuntime,
) -> Result<ScenarioReport, ServerError> {
    // Reuse-stale execution keeps an engine-side latest-proposal table the
    // wire protocol has no frames for; serving it would silently change its
    // semantics, so refuse it structurally instead.
    if matches!(
        spec.execution,
        ExecutionSpec::AsyncQuorum {
            reuse_stale: true,
            ..
        }
    ) {
        return Err(ServerError::protocol(format!(
            "job {id}: reuse-stale async execution is not servable over the \
             wire; run it in-process"
        )));
    }
    // Top-level stateful rules snapshot through the checkpoint sidecar, but
    // a stateful rule buried inside a hierarchical stage keeps its memory in
    // per-group contexts the snapshot cannot reach; refuse up front instead
    // of resuming a silently reset trajectory.
    if (runtime.checkpoint.is_some() || runtime.resume.is_some())
        && spec.rule.hierarchical_stateful()
    {
        return Err(ServerError::Checkpoint(format!(
            "job {id}: a stateful rule inside a hierarchical stage keeps \
             per-group memory that checkpoints cannot capture; use the \
             top-level form of the rule or disable checkpointing"
        )));
    }
    let cluster = spec.cluster;
    let n = cluster.workers();
    let honest = cluster.honest();
    let f = cluster.byzantine();
    let expected_conns = honest + usize::from(f > 0);
    if conns.len() != expected_conns {
        return Err(ServerError::protocol(format!(
            "job {id} needs {expected_conns} connections ({honest} honest + \
             {} adversary), got {}",
            usize::from(f > 0),
            conns.len()
        )));
    }

    // Server-side wiring: the workload is built only for its metrics hooks
    // (probe, optimum, accuracy) — the per-worker estimators run on the
    // other end of the sockets.
    let workload = spec.estimator.build(honest, spec.seed)?;
    let dim = workload.dim;
    let arity = spec.execution.aggregation_arity(n);
    let aggregator = spec.rule.build(arity, f)?;
    let config = TrainingConfig {
        rounds: spec.rounds,
        schedule: spec.schedule,
        seed: spec.seed,
        eval_every: spec.eval_every,
        known_optimum: if spec.probes.track_optimum {
            workload.optimum
        } else {
            None
        },
    };
    let mut core = RoundCore::new(cluster, aggregator, config, dim)?;
    // The negotiated codec. The core re-quantizes the trajectory after
    // every step and fresh starts quantize the initial params once — the
    // exact transform the in-process engine applies, which is why a
    // loopback run with a codec reproduces the in-process quantized run
    // bit-for-bit.
    let codec: Option<Arc<dyn GradientCodec>> = spec
        .compression
        .as_ref()
        .map(|c| Arc::from(c.build()) as Arc<dyn GradientCodec>);
    if let Some(codec) = &codec {
        core.set_compression(Arc::clone(codec));
    }
    if spec.probes.accuracy {
        if let Some(accuracy) = workload.accuracy {
            core.set_accuracy_probe(accuracy);
        }
    }
    // Same probe fallback as the in-process engine: the dedicated probe
    // when the workload has one, otherwise worker 0's estimator (which
    // only answers loss/true-gradient queries here — its RNG stream is
    // consumed by the remote worker it mirrors).
    let mut estimators = workload.estimators;
    let probe: Box<dyn GradientEstimator> = match workload.probe {
        Some(p) => p,
        None => estimators.swap_remove(0),
    };
    drop(estimators);

    let (quorum, max_staleness, record_quorum) = close_policy(&spec.execution, n);
    let policy = ClosePolicy {
        quorum,
        max_staleness,
        record_quorum,
        timeouts: runtime.timeouts,
        on_crash: runtime.on_crash,
    };

    // Fresh start, or continue where the checkpoint left off. The snapshot
    // restores the server-side state; the workers restore theirs by
    // fast-forwarding their deterministic RNG streams (or by simply still
    // being alive, for an in-process kill/resume).
    let (start_round, mut params, mut pending, mut history, wall_before) = match &runtime.resume {
        Some(resume) => {
            if resume.params.dim() != dim {
                return Err(ServerError::Checkpoint(format!(
                    "snapshot params have dimension {}, the job needs {dim}",
                    resume.params.dim()
                )));
            }
            let pending: Vec<Pending> = resume
                .pending
                .iter()
                .map(|c| Pending {
                    worker: c.worker as usize,
                    issued_round: c.issued_round as usize,
                    vector: Vector::from(c.proposal.clone()),
                })
                .collect();
            // Reinstall the stateful-rule memory (reputation weights, clip
            // anchor) so the resumed rounds weigh workers exactly as the
            // uninterrupted run would have.
            core.import_stateful_state(resume.stateful_rule.clone());
            (
                resume.start_round as usize,
                resume.params.clone(),
                pending,
                resume.history.clone(),
                resume.wall_nanos,
            )
        }
        None => {
            let mut params = match spec.init {
                InitSpec::Zeros => Vector::zeros(dim),
                InitSpec::Fill { value } => Vector::filled(dim, value),
                InitSpec::Sample { strategy, seed } => {
                    spec.estimator.init_params(strategy, seed)?
                }
            };
            // Round 0 broadcasts quantized params (a resumed snapshot is
            // already on the quantized trajectory).
            if let Some(codec) = &codec {
                codec.transform_params(params.as_mut_slice());
            }
            let history = TrainingHistory::new(
                format!(
                    "{} vs {} (n={n}, f={f}, d={dim}, served)",
                    core.aggregator_name(),
                    spec.attack
                ),
                core.aggregator_name().to_string(),
                spec.attack.to_string(),
                n,
                f,
            );
            (0, params, Vec::new(), history, 0)
        }
    };

    let mut alive = vec![true; conns.len()];
    // Drift columns continue a resumed series exactly: the tracker restarts
    // from the last recorded cumulative displacement (0 for a fresh run or
    // when no Byzantine round has closed yet).
    let mut drift = DriftTracker::resume(
        history
            .rounds
            .last()
            .and_then(|r| r.attacker_displacement)
            .unwrap_or(0.0),
    );
    let wall_start = Instant::now();
    for round in start_round..spec.rounds {
        let record = serve_round(
            id,
            round,
            spec,
            conns,
            &mut alive,
            events,
            &mut core,
            &*probe,
            &mut params,
            &mut pending,
            &policy,
            codec.as_deref(),
            &mut drift,
        )?;
        history.push(record);
        let halting = runtime.halt_after_round == Some(round as u64);
        if let Some(config) = &runtime.checkpoint {
            if (round as u64 + 1).is_multiple_of(config.every) || halting {
                let carry: Vec<CarryOver> = pending
                    .iter()
                    .map(|p| CarryOver {
                        worker: p.worker as u32,
                        issued_round: p.issued_round as u64,
                        proposal: p.vector.as_slice().to_vec(),
                    })
                    .collect();
                let bytes = checkpoint::write_checkpoint(
                    config,
                    id,
                    round as u64 + 1,
                    &params,
                    &carry,
                    spec,
                    &history,
                    wall_before + wall_start.elapsed().as_nanos(),
                    core.export_stateful_state(),
                )?;
                if let Some(last) = history.rounds.last_mut() {
                    last.checkpoint_bytes = Some(bytes);
                }
            }
        }
        if halting {
            return Err(ServerError::Halted {
                job: id,
                round: round as u64,
            });
        }
    }
    let wall_nanos = wall_before + wall_start.elapsed().as_nanos();

    // Final frames: the trained model, then the goodbye (sent by the
    // caller's shutdown pass). A slot dead under a crash policy hears
    // neither — if it rejoins now, the server tells it the job is over.
    for c in 0..conns.len() {
        if !alive[c] {
            continue;
        }
        let aggregate = Frame::Aggregate {
            job: id,
            round: spec.rounds as u64,
            params: params.as_slice().to_vec(),
        };
        match write_frame(&mut conns[c].stream, &aggregate) {
            Ok(_) => {}
            Err(_) if policy.on_crash.is_some() => {}
            Err(e) => return Err(e.into()),
        }
    }

    Ok(ScenarioReport {
        spec: spec.clone(),
        final_params: params,
        history,
        wall_nanos,
    })
}

/// Serves one round; see the module docs for the protocol.
#[allow(clippy::too_many_arguments)]
fn serve_round(
    id: u64,
    round: usize,
    spec: &ScenarioSpec,
    conns: &mut [JobConnection],
    alive: &mut [bool],
    events: &Receiver<ConnEvent>,
    core: &mut RoundCore,
    probe: &dyn GradientEstimator,
    params: &mut Vector,
    pending: &mut Vec<Pending>,
    policy: &ClosePolicy,
    codec: Option<&dyn GradientCodec>,
    drift: &mut DriftTracker,
) -> Result<RoundRecord, ServerError> {
    let cluster = spec.cluster;
    let n = cluster.workers();
    let honest = cluster.honest();
    let f = cluster.byzantine();
    let adversary = honest; // connection index (meaningful when f > 0)
    let dim = core.dim();
    let on_crash = policy.on_crash;
    // Fail-fast and wait-for-rejoin both hold the round for every slot
    // (dead ones are expected back); proceed-at-quorum stops waiting.
    let wait_for_dead = !matches!(on_crash, Some(CrashPolicy::ProceedAtQuorum));
    let round_open = Instant::now();
    let heartbeat = Duration::from_secs(policy.timeouts.heartbeat_secs);
    let deadline = round_open + Duration::from_secs(policy.timeouts.round_secs);
    let mut wire_bytes: u64 = 0;
    // What the same traffic would have cost uncompressed: compressed
    // frames are charged at their raw `8·dim` framing, everything else at
    // its actual size — so `raw_bytes == wire_bytes` without a codec.
    let mut raw_bytes: u64 = 0;
    let mut reconnects: u64 = 0;

    // Broadcast x_t to the live honest workers (the adversary hears later,
    // with its observations; a dead slot hears the round when it rejoins).
    // With a codec, v2 connections hear the compressed framing; v1
    // connections hear the same (already quantized) params raw.
    let broadcast = Frame::Broadcast {
        job: id,
        round: round as u64,
        params: params.as_slice().to_vec(),
        observed: Vec::new(),
    };
    let broadcast_c = codec.map(|c| Frame::BroadcastC {
        job: id,
        round: round as u64,
        params: c.encode_params(params.as_slice()),
        observed: Vec::new(),
    });
    let broadcast_for = |version: u16| match &broadcast_c {
        Some(frame) if version >= 2 => frame,
        _ => &broadcast,
    };
    for w in 0..honest {
        if !alive[w] {
            continue;
        }
        match write_frame(&mut conns[w].stream, broadcast_for(conns[w].version)) {
            Ok(b) => {
                wire_bytes += b as u64;
                raw_bytes += raw_broadcast_len(dim, 0);
            }
            Err(e) => crash(
                on_crash,
                alive,
                conns,
                w as u32,
                round,
                &format!("broadcast failed: {e}"),
            )?,
        }
    }

    // Quorum selection state. Carried stragglers are already at the server:
    // they outrank every fresh arrival, consumed oldest-first with at most
    // one proposal per worker per quorum.
    pending.sort_by_key(|p| (p.issued_round, p.worker));
    let quorum = policy.quorum;
    let mut taken = vec![false; n];
    let mut selected: Vec<Selected> = Vec::with_capacity(quorum);
    let mut leftover: Vec<Pending> = Vec::new();
    let mut arrival_nanos: Option<u128> = None;
    let offer = |entry: Pending,
                 selected: &mut Vec<Selected>,
                 leftover: &mut Vec<Pending>,
                 taken: &mut [bool],
                 arrival_nanos: &mut Option<u128>,
                 now: &Instant| {
        if selected.len() < quorum && !taken[entry.worker] {
            taken[entry.worker] = true;
            selected.push(Selected {
                worker: entry.worker,
                issued_round: entry.issued_round,
                vector: entry.vector,
            });
            if selected.len() == quorum {
                *arrival_nanos = Some(now.elapsed().as_nanos());
            }
        } else {
            leftover.push(entry);
        }
    };
    for entry in pending.drain(..) {
        offer(
            entry,
            &mut selected,
            &mut leftover,
            &mut taken,
            &mut arrival_nanos,
            &round_open,
        );
    }

    // Collect this round's fresh proposals in real arrival order, weaving
    // in heartbeats, crash obituaries and rejoins. The loop drains every
    // proposal the round can still produce (the quorum may close earlier —
    // `arrival_nanos` pins that moment — but stragglers are bookkept into
    // the carry pool before the next round opens, matching the in-process
    // async engine's accounting).
    let mut honest_seen = vec![false; honest];
    let mut byzantine_seen = vec![false; f];
    // Clones of the honest proposals for the adversary relay, worker order.
    let mut observed: Vec<Option<Vec<f64>>> = if f > 0 {
        vec![None; honest]
    } else {
        Vec::new()
    };
    let mut honest_arrived = 0usize;
    let mut byzantine_arrived = 0usize;
    let mut relay_sent = f == 0;
    let mut relay_at: Option<Instant> = None;
    let mut adv_replayed = false;
    let mut propose_nanos: u128 = 0;
    let mut attack_nanos: u128 = 0;
    let mut last_heard: Vec<Instant> = vec![round_open; conns.len()];
    let mut next_tick = round_open + heartbeat;
    let mut ping_nonce: u64 = (round as u64) << 32;
    loop {
        // What the round still waits for, given who is alive and the
        // policy. A relay that can never fire (no honest proposal exists
        // and none is coming) stops the wait for Byzantine proposals — the
        // close path below turns that into a structured error if the
        // survivors cannot carry the round.
        let outstanding_honest =
            (0..honest).any(|w| !honest_seen[w] && (alive[w] || wait_for_dead));
        let relay_stalled = !relay_sent && honest_arrived == 0 && !outstanding_honest;
        let outstanding_byz =
            f > 0 && byzantine_arrived < f && (alive[adversary] || wait_for_dead) && !relay_stalled;
        if !outstanding_honest && !outstanding_byz {
            break;
        }
        let now = Instant::now();
        if now >= deadline {
            return Err(ServerError::Timeout {
                seconds: policy.timeouts.round_secs,
                what: format!(
                    "round {round} proposals of job {id} ({honest_arrived}/{honest} honest, \
                     {byzantine_arrived}/{f} byzantine, {} live connections)",
                    alive.iter().filter(|a| **a).count()
                ),
            });
        }
        let wait = next_tick
            .min(deadline)
            .saturating_duration_since(now)
            .max(Duration::from_millis(1));
        let event = match events.recv_timeout(wait) {
            Ok(event) => event,
            Err(RecvTimeoutError::Disconnected) => {
                return Err(ServerError::protocol("every reader thread hung up mid-job"))
            }
            Err(RecvTimeoutError::Timeout) => {
                if Instant::now() >= next_tick {
                    next_tick += heartbeat;
                    // Ping the live connections the round still waits on; a
                    // connection silent for MISSED_HEARTBEATS intervals is
                    // hung — a crash fault, same as a dropped socket.
                    for c in 0..conns.len() {
                        if !alive[c] {
                            continue;
                        }
                        let waited_on = if c < honest {
                            !honest_seen[c]
                        } else {
                            f > 0 && byzantine_arrived < f
                        };
                        if !waited_on {
                            continue;
                        }
                        if last_heard[c].elapsed() >= heartbeat * MISSED_HEARTBEATS {
                            crash(
                                on_crash,
                                alive,
                                conns,
                                c as u32,
                                round,
                                "no heartbeat: connection is hung",
                            )?;
                            continue;
                        }
                        ping_nonce += 1;
                        let ping = Frame::Ping {
                            job: id,
                            nonce: ping_nonce,
                        };
                        match write_frame(&mut conns[c].stream, &ping) {
                            Ok(b) => {
                                wire_bytes += b as u64;
                                raw_bytes += b as u64;
                            }
                            Err(e) => crash(
                                on_crash,
                                alive,
                                conns,
                                c as u32,
                                round,
                                &format!("ping failed: {e}"),
                            )?,
                        }
                    }
                }
                continue;
            }
        };
        match event {
            ConnEvent::Closed { worker, error } => {
                let message = error
                    .map(|e| e.to_string())
                    .unwrap_or_else(|| "connection closed".into());
                crash(on_crash, alive, conns, worker, round, &message)?;
            }
            ConnEvent::Rejoined {
                worker,
                stream,
                version,
            } => {
                let w = worker as usize;
                if w >= conns.len() {
                    continue; // admit() validates; belt and braces
                }
                conns[w].stream = stream;
                conns[w].version = version;
                alive[w] = true;
                last_heard[w] = Instant::now();
                reconnects += 1;
                if w < honest {
                    if !honest_seen[w] {
                        // Re-open the round for the rejoiner: it either
                        // replays its cached answer (it had already proposed
                        // into the void) or fast-forwards its RNG stream and
                        // computes it — both bit-identical to the
                        // uninterrupted proposal.
                        match write_frame(&mut conns[w].stream, broadcast_for(version)) {
                            Ok(b) => {
                                wire_bytes += b as u64;
                                raw_bytes += raw_broadcast_len(dim, 0);
                            }
                            Err(e) => crash(
                                on_crash,
                                alive,
                                conns,
                                worker,
                                round,
                                &format!("rejoin broadcast failed: {e}"),
                            )?,
                        }
                    }
                } else if f > 0 && relay_sent && byzantine_arrived < f {
                    // The adversary died with the relay in flight: replay
                    // it. The worker caches (or deterministically
                    // re-forges) its answer, so slots that did land are
                    // resent bit-identical — tolerated as duplicates below.
                    adv_replayed = true;
                    let relay = relay_frame(id, round, params, &observed, codec, version);
                    match write_frame(&mut conns[adversary].stream, &relay) {
                        Ok(b) => {
                            wire_bytes += b as u64;
                            raw_bytes += raw_broadcast_len(
                                dim,
                                observed.iter().filter(|o| o.is_some()).count(),
                            );
                            relay_at = Some(Instant::now());
                        }
                        Err(e) => crash(
                            on_crash,
                            alive,
                            conns,
                            worker,
                            round,
                            &format!("relay replay failed: {e}"),
                        )?,
                    }
                }
            }
            ConnEvent::Frame {
                worker: conn_worker,
                frame,
                bytes,
            } => {
                wire_bytes += bytes as u64;
                raw_bytes += match &frame {
                    Frame::ProposeC { .. } => raw_propose_len(dim),
                    _ => bytes as u64,
                };
                if (conn_worker as usize) < last_heard.len() {
                    last_heard[conn_worker as usize] = Instant::now();
                }
                // A raw proposal on a codec-bearing job (a v1 peer) is
                // quantized server-side below, so both framings feed the
                // aggregator identical bits.
                let (job, propose_round, worker, mut proposal, arrived_raw) = match frame {
                    Frame::Pong { .. } => continue, // liveness, noted above
                    Frame::Propose {
                        job,
                        round,
                        worker,
                        proposal,
                    } => (job, round, worker as usize, proposal, true),
                    Frame::ProposeC {
                        job,
                        round: propose_round,
                        worker,
                        proposal,
                    } => {
                        let Some(codec) = codec else {
                            return Err(ServerError::protocol(format!(
                                "worker {conn_worker} sent a compressed proposal but \
                                 the job negotiated no codec"
                            )));
                        };
                        let decoded =
                            codec
                                .decode(&proposal, params.as_slice(), dim)
                                .map_err(|e| {
                                    ServerError::protocol(format!(
                                        "worker {conn_worker} sent an undecodable proposal \
                                         in round {round}: {e}"
                                    ))
                                })?;
                        (job, propose_round, worker as usize, decoded, false)
                    }
                    other => {
                        return Err(ServerError::protocol(format!(
                            "unexpected {} frame from worker {conn_worker} during round {round}",
                            other.name()
                        )))
                    }
                };
                if job != id {
                    return Err(ServerError::protocol(format!(
                        "worker {conn_worker} proposed for foreign job {job} (serving job {id})"
                    )));
                }
                if propose_round != round as u64 {
                    // Crash rounds can leave a straggler from an
                    // already-closed round in flight; under a crash policy
                    // it is dropped (that round closed without it), under
                    // fail-fast it is the violation it always was.
                    if on_crash.is_some() && propose_round < round as u64 {
                        continue;
                    }
                    return Err(ServerError::protocol(format!(
                        "worker {conn_worker} proposed for round {propose_round} \
                         during round {round}"
                    )));
                }
                if proposal.len() != dim {
                    return Err(ServerError::protocol(format!(
                        "worker {conn_worker} proposed dimension {}, expected {dim}",
                        proposal.len()
                    )));
                }
                // Quantize-before-aggregate: a v1 peer's raw floats pass
                // through the same decode(encode(·)) a v2 peer's encoding
                // implies, so the codec never sees a framing difference.
                if arrived_raw {
                    if let Some(codec) = codec {
                        codec.transform(&mut proposal, params.as_slice());
                    }
                }
                // Authority: honest connections propose exactly their own
                // slot, the adversary connection proposes exactly the
                // Byzantine slots.
                let from_adversary = conn_worker as usize == adversary && f > 0;
                if from_adversary {
                    if worker < honest || worker >= n {
                        return Err(ServerError::protocol(format!(
                            "the adversary proposed for honest slot {worker}"
                        )));
                    }
                    if byzantine_seen[worker - honest] {
                        if adv_replayed {
                            // A replayed relay re-forges bit-identical
                            // proposals; the copies that already landed are
                            // dropped, not a violation.
                            continue;
                        }
                        return Err(ServerError::protocol(format!(
                            "duplicate Byzantine proposal for slot {worker} in round {round}"
                        )));
                    }
                    byzantine_seen[worker - honest] = true;
                    byzantine_arrived += 1;
                    if let Some(at) = relay_at {
                        attack_nanos = at.elapsed().as_nanos();
                    }
                } else {
                    if worker != conn_worker as usize {
                        return Err(ServerError::protocol(format!(
                            "worker {conn_worker} proposed for slot {worker}"
                        )));
                    }
                    if honest_seen[worker] {
                        if on_crash.is_some() {
                            // A cached rejoin replay raced its original copy
                            // through the old socket; the bits are
                            // identical, drop the echo.
                            continue;
                        }
                        return Err(ServerError::protocol(format!(
                            "duplicate proposal from worker {worker} in round {round}"
                        )));
                    }
                    honest_seen[worker] = true;
                    honest_arrived += 1;
                    propose_nanos = round_open.elapsed().as_nanos();
                    if f > 0 {
                        observed[worker] = Some(proposal.clone());
                    }
                }
                offer(
                    Pending {
                        worker,
                        issued_round: round,
                        vector: Vector::from(proposal),
                    },
                    &mut selected,
                    &mut leftover,
                    &mut taken,
                    &mut arrival_nanos,
                    &round_open,
                );
            }
        }

        // Omniscient-adversary relay: fires once every honest proposal the
        // round can still produce is in (all of them under barrier
        // semantics — worker order, the same order the in-process engines
        // hand to `Attack::forge`). Re-checked after crashes too: a death
        // can be what completes the live set.
        if f > 0 && !relay_sent && honest_arrived > 0 && alive[adversary] {
            let all_in = (0..honest).all(|w| honest_seen[w] || (!alive[w] && !wait_for_dead));
            if all_in {
                let relay = relay_frame(
                    id,
                    round,
                    params,
                    &observed,
                    codec,
                    conns[adversary].version,
                );
                match write_frame(&mut conns[adversary].stream, &relay) {
                    Ok(b) => {
                        wire_bytes += b as u64;
                        raw_bytes +=
                            raw_broadcast_len(dim, observed.iter().filter(|o| o.is_some()).count());
                        relay_sent = true;
                        relay_at = Some(Instant::now());
                    }
                    Err(e) => crash(
                        on_crash,
                        alive,
                        conns,
                        adversary as u32,
                        round,
                        &format!("relay failed: {e}"),
                    )?,
                }
            }
        }
    }
    let arrival_nanos = arrival_nanos.unwrap_or_else(|| round_open.elapsed().as_nanos());

    // Carry the unselected proposals forward under the staleness bound.
    let mut dropped_stale = 0usize;
    for entry in leftover {
        if round + 1 - entry.issued_round > policy.max_staleness {
            dropped_stale += 1;
        } else {
            pending.push(entry);
        }
    }
    let pending_carryover = pending.len();

    // Quorum/staleness stats, then the deterministic aggregation layout:
    // (issued_round, worker) order, exactly like the in-process async
    // engine (plain worker order when the quorum is all-fresh).
    let quorum_size = selected.len();
    let degraded = quorum_size < quorum;
    if degraded && quorum_size < honest {
        // Below n − f live proposals no close is sound: more workers
        // crashed than the fault bound absorbs.
        return Err(ServerError::TooManyFaults {
            job: id,
            round: round as u64,
            live: quorum_size,
            needed: honest,
        });
    }
    let stale_in_quorum = selected.iter().filter(|s| s.issued_round < round).count();
    let max_staleness_in_quorum = selected
        .iter()
        .map(|s| round - s.issued_round)
        .max()
        .unwrap_or(0);
    selected.sort_by_key(|s| (s.issued_round, s.worker));
    let meta: Vec<(usize, usize)> = selected
        .iter()
        .map(|s| (s.worker, s.issued_round))
        .collect();
    let worker_ids: Vec<usize> = meta.iter().map(|&(w, _)| w).collect();
    let vectors: Vec<Vector> = selected.into_iter().map(|s| s.vector).collect();

    // Stateful rules key their memory by worker, not by proposal slot:
    // declare who is behind each slot before the core closes the round.
    core.set_slot_workers(&worker_ids);

    // Aggregate → step → record through the shared core. A crash-degraded
    // round closes through the same rule rebuilt at the surviving arity
    // (Krum's guarantee holds while 2f + 2 < live — the rebuild enforces
    // its own bound structurally).
    let true_gradient = probe.true_gradient(params);
    let mut record = if degraded {
        let rule = spec.rule.build(quorum_size, f)?;
        core.close_round_with(&*rule, params, round, &vectors, true_gradient, Some(probe))?
    } else {
        core.close_round(params, round, &vectors, true_gradient, Some(probe))?
    };
    record.selected_worker = record.selected_worker.map(|slot| meta[slot].0);
    record.selected_byzantine = record.selected_worker.map(|w| w >= honest);
    // Drift columns from the exact quorum the rule saw — the same
    // arithmetic the in-process engines run, so loopback histories match.
    let learning_rate = record.learning_rate;
    drift.observe(
        &mut record,
        core.last_aggregate(),
        &vectors,
        &worker_ids,
        honest,
        learning_rate,
    );
    record.propose_nanos = propose_nanos;
    record.attack_nanos = attack_nanos;
    if policy.record_quorum {
        record.quorum_size = Some(quorum_size);
        record.stale_in_quorum = Some(stale_in_quorum);
        record.max_staleness_in_quorum = Some(max_staleness_in_quorum);
        record.dropped_stale = Some(dropped_stale);
        record.pending_carryover = Some(pending_carryover);
    }
    record.arrival_nanos = Some(arrival_nanos);
    record.reconnects = Some(reconnects);
    record.degraded_rounds = Some(u64::from(degraded));

    // A stateful adversary observes what the server accepted — the same
    // feedback the in-process engines hand to `Attack::observe`, as bytes on
    // the wire, so the remote attack adapts identically to the in-process
    // one. Stateless attacks hear nothing (the frame never fires), keeping
    // their traffic byte-identical to earlier protocol revisions.
    if f > 0 && spec.attack.stateful() && alive[adversary] {
        let feedback = Frame::RoundFeedback {
            job: id,
            round: round as u64,
            aggregate: core.last_aggregate().as_slice().to_vec(),
            learning_rate: record.learning_rate,
            selected: record.selected_worker.map(|w| SelectedWorker {
                worker: w as u32,
                byzantine: record.selected_byzantine.unwrap_or(w >= honest),
            }),
            quorum: worker_ids.iter().map(|&w| w as u32).collect(),
        };
        match write_frame(&mut conns[adversary].stream, &feedback) {
            Ok(b) => {
                wire_bytes += b as u64;
                raw_bytes += b as u64;
            }
            Err(e) => crash(
                on_crash,
                alive,
                conns,
                adversary as u32,
                round,
                &format!("round-feedback failed: {e}"),
            )?,
        }
    }

    // Close the round towards the live workers (a dead one hears the next
    // broadcast after it rejoins).
    let closed = Frame::RoundClosed {
        job: id,
        round: round as u64,
        quorum: quorum_size as u32,
        aggregate_norm: record.aggregate_norm,
    };
    for c in 0..conns.len() {
        if !alive[c] {
            continue;
        }
        match write_frame(&mut conns[c].stream, &closed) {
            Ok(b) => {
                wire_bytes += b as u64;
                raw_bytes += b as u64;
            }
            Err(e) => crash(
                on_crash,
                alive,
                conns,
                c as u32,
                round,
                &format!("round-close failed: {e}"),
            )?,
        }
    }
    record.wire_bytes = Some(wire_bytes);
    record.raw_bytes = Some(raw_bytes);
    record.round_nanos = round_open.elapsed().as_nanos();
    Ok(record)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The arithmetic raw-framing sizes must track the actual encoder —
    /// the `raw_bytes` column is only honest if they agree.
    #[test]
    fn raw_frame_lengths_match_the_wire_encoding() {
        for (dim, observed) in [(1, 0), (17, 5), (1000, 36)] {
            let broadcast = Frame::Broadcast {
                job: 3,
                round: 9,
                params: vec![1.5; dim],
                observed: vec![vec![2.5; dim]; observed],
            };
            assert_eq!(
                raw_broadcast_len(dim, observed),
                broadcast.encoded_len() as u64
            );
            let propose = Frame::Propose {
                job: 3,
                round: 9,
                worker: 4,
                proposal: vec![0.5; dim],
            };
            assert_eq!(raw_propose_len(dim), propose.encoded_len() as u64);
        }
    }
}
