//! The per-job round state machine: real arrivals in, rounds out.
//!
//! One job is one scenario served over sockets. The job thread owns the
//! write halves of its worker connections and a channel fed by the
//! per-connection reader threads; each round it
//!
//! 1. **broadcasts** `x_t` to every honest worker,
//! 2. **collects** proposals in *real arrival order*, seeding the round
//!    with the carried stragglers of earlier rounds (they are already at
//!    the server, so they outrank every fresh arrival — exactly the
//!    in-process async engine's tier-0 semantics),
//! 3. **relays** the honest proposals to the adversary connection once they
//!    have all arrived (the paper's omniscient adversary, made explicit as
//!    bytes on the wire),
//! 4. **closes the quorum** at the `quorum`-th distinct-worker arrival
//!    (at most one proposal per worker per quorum — the Byzantine share
//!    stays capped at `f`), carries the leftovers forward under the
//!    `max_staleness` bound, and
//! 5. hands the quorum to the shared [`RoundCore`] for
//!    aggregate → step → record — the same code path the in-process
//!    engines run, which is why a loopback barrier run reproduces
//!    [`Scenario::run`](krum_scenario::Scenario) bit-for-bit.
//!
//! The quorum's composition is ordered by real arrivals, but the
//! *aggregation input* is sorted by `(issued_round, worker)` like the
//! in-process async engine, so the rule sees a deterministic layout.

use std::net::TcpStream;
use std::sync::mpsc::{Receiver, RecvTimeoutError};
use std::time::{Duration, Instant};

use krum_dist::{RoundCore, TrainingConfig};
use krum_metrics::{RoundRecord, TrainingHistory};
use krum_models::GradientEstimator;
use krum_scenario::{ExecutionSpec, InitSpec, ScenarioReport, ScenarioSpec};
use krum_tensor::Vector;
use krum_wire::{write_frame, Frame, WireError};

use crate::error::ServerError;

/// How long the job thread waits for the next frame before declaring the
/// round hung. Generous: a round only needs each worker to push one
/// gradient.
pub(crate) const ROUND_TIMEOUT: Duration = Duration::from_secs(120);

/// One event from a connection's reader thread.
#[derive(Debug)]
pub(crate) enum ConnEvent {
    /// A frame arrived from the given worker slot (`bytes` as framed).
    Frame {
        /// Worker slot of the sending connection.
        worker: u32,
        /// The decoded frame.
        frame: Frame,
        /// Size of the frame on the wire.
        bytes: usize,
    },
    /// The connection died (cleanly when `error` is `None`).
    Closed {
        /// Worker slot of the dead connection.
        worker: u32,
        /// The transport error, if the close was not clean.
        error: Option<WireError>,
    },
}

/// Write half of one worker connection. A job's connections are indexed by
/// worker slot (0..honest are honest, `honest` is the adversary).
pub(crate) struct JobConnection {
    /// Write half of the socket (reads happen on the reader thread).
    pub stream: TcpStream,
}

/// How rounds close for a given execution spec: quorum size, staleness
/// bound, and whether the quorum/staleness columns should be recorded.
fn close_policy(execution: &ExecutionSpec, n: usize) -> (usize, usize, bool) {
    match *execution {
        ExecutionSpec::Sequential | ExecutionSpec::Threaded { .. } => (n, 0, false),
        ExecutionSpec::AsyncQuorum {
            quorum,
            max_staleness,
            ..
        } => (quorum, max_staleness, true),
        ExecutionSpec::Remote {
            quorum,
            max_staleness,
        } => match quorum {
            Some(q) => (q, max_staleness, true),
            None => (n, max_staleness, false),
        },
    }
}

/// A proposal that arrived but did not make its round's quorum, carried
/// forward as a stale candidate.
struct Pending {
    worker: usize,
    issued_round: usize,
    vector: Vector,
}

/// One selected quorum member.
struct Selected {
    worker: usize,
    issued_round: usize,
    vector: Vector,
}

/// Runs one job to completion: `rounds` server rounds over the given
/// connections, returning the scenario report. On failure the workers are
/// sent a `Shutdown` naming the error before it propagates.
pub(crate) fn run_job(
    id: u64,
    spec: ScenarioSpec,
    mut conns: Vec<JobConnection>,
    events: Receiver<ConnEvent>,
) -> Result<ScenarioReport, ServerError> {
    let result = drive_job(id, &spec, &mut conns, &events);
    match result {
        Ok(report) => {
            shutdown_all(id, &mut conns, "job complete");
            Ok(report)
        }
        Err(e) => {
            shutdown_all(id, &mut conns, &format!("job failed: {e}"));
            Err(e)
        }
    }
}

/// Best-effort `Shutdown` to every connection (failures are moot: the
/// session is over either way).
fn shutdown_all(id: u64, conns: &mut [JobConnection], reason: &str) {
    for conn in conns.iter_mut() {
        let _ = write_frame(
            &mut conn.stream,
            &Frame::Shutdown {
                job: id,
                reason: reason.to_string(),
            },
        );
    }
}

fn drive_job(
    id: u64,
    spec: &ScenarioSpec,
    conns: &mut [JobConnection],
    events: &Receiver<ConnEvent>,
) -> Result<ScenarioReport, ServerError> {
    let cluster = spec.cluster;
    let n = cluster.workers();
    let honest = cluster.honest();
    let f = cluster.byzantine();
    let expected_conns = honest + usize::from(f > 0);
    if conns.len() != expected_conns {
        return Err(ServerError::protocol(format!(
            "job {id} needs {expected_conns} connections ({honest} honest + \
             {} adversary), got {}",
            usize::from(f > 0),
            conns.len()
        )));
    }

    // Server-side wiring: the workload is built only for its metrics hooks
    // (probe, optimum, accuracy) — the per-worker estimators run on the
    // other end of the sockets.
    let workload = spec.estimator.build(honest, spec.seed)?;
    let dim = workload.dim;
    let arity = spec.execution.aggregation_arity(n);
    let aggregator = spec.rule.build(arity, f)?;
    let config = TrainingConfig {
        rounds: spec.rounds,
        schedule: spec.schedule,
        seed: spec.seed,
        eval_every: spec.eval_every,
        known_optimum: if spec.probes.track_optimum {
            workload.optimum
        } else {
            None
        },
    };
    let mut core = RoundCore::new(cluster, aggregator, config, dim)?;
    if spec.probes.accuracy {
        if let Some(accuracy) = workload.accuracy {
            core.set_accuracy_probe(accuracy);
        }
    }
    // Same probe fallback as the in-process engine: the dedicated probe
    // when the workload has one, otherwise worker 0's estimator (which
    // only answers loss/true-gradient queries here — its RNG stream is
    // consumed by the remote worker it mirrors).
    let mut estimators = workload.estimators;
    let probe: Box<dyn GradientEstimator> = match workload.probe {
        Some(p) => p,
        None => estimators.swap_remove(0),
    };
    drop(estimators);

    let (quorum, max_staleness, record_quorum) = close_policy(&spec.execution, n);
    let mut params = match spec.init {
        InitSpec::Zeros => Vector::zeros(dim),
        InitSpec::Fill { value } => Vector::filled(dim, value),
        InitSpec::Sample { strategy, seed } => spec.estimator.init_params(strategy, seed)?,
    };

    let mut history = TrainingHistory::new(
        format!(
            "{} vs {} (n={n}, f={f}, d={dim}, served)",
            core.aggregator_name(),
            spec.attack
        ),
        core.aggregator_name().to_string(),
        spec.attack.to_string(),
        n,
        f,
    );

    let wall_start = Instant::now();
    let mut pending: Vec<Pending> = Vec::new();
    for round in 0..spec.rounds {
        let record = serve_round(
            id,
            round,
            spec,
            conns,
            events,
            &mut core,
            &*probe,
            &mut params,
            &mut pending,
            quorum,
            max_staleness,
            record_quorum,
        )?;
        history.push(record);
    }
    let wall_nanos = wall_start.elapsed().as_nanos();

    // Final frames: the trained model, then the goodbye (sent by the
    // caller's shutdown pass).
    for conn in conns.iter_mut() {
        write_frame(
            &mut conn.stream,
            &Frame::Aggregate {
                job: id,
                round: spec.rounds as u64,
                params: params.as_slice().to_vec(),
            },
        )?;
    }

    Ok(ScenarioReport {
        spec: spec.clone(),
        final_params: params,
        history,
        wall_nanos,
    })
}

/// Serves one round; see the module docs for the protocol.
#[allow(clippy::too_many_arguments)]
fn serve_round(
    id: u64,
    round: usize,
    spec: &ScenarioSpec,
    conns: &mut [JobConnection],
    events: &Receiver<ConnEvent>,
    core: &mut RoundCore,
    probe: &dyn GradientEstimator,
    params: &mut Vector,
    pending: &mut Vec<Pending>,
    quorum: usize,
    max_staleness: usize,
    record_quorum: bool,
) -> Result<RoundRecord, ServerError> {
    let cluster = spec.cluster;
    let n = cluster.workers();
    let honest = cluster.honest();
    let f = cluster.byzantine();
    let dim = core.dim();
    let round_open = Instant::now();
    let mut wire_bytes: u64 = 0;

    // Broadcast x_t to the honest workers (the adversary hears later, with
    // its observations).
    let broadcast = Frame::Broadcast {
        job: id,
        round: round as u64,
        params: params.as_slice().to_vec(),
        observed: Vec::new(),
    };
    for conn in conns.iter_mut().take(honest) {
        wire_bytes += write_frame(&mut conn.stream, &broadcast)? as u64;
    }

    // Quorum selection state. Carried stragglers are already at the server:
    // they outrank every fresh arrival, consumed oldest-first with at most
    // one proposal per worker per quorum.
    pending.sort_by_key(|p| (p.issued_round, p.worker));
    let mut taken = vec![false; n];
    let mut selected: Vec<Selected> = Vec::with_capacity(quorum);
    let mut leftover: Vec<Pending> = Vec::new();
    let mut arrival_nanos: Option<u128> = None;
    let offer = |entry: Pending,
                 selected: &mut Vec<Selected>,
                 leftover: &mut Vec<Pending>,
                 taken: &mut [bool],
                 arrival_nanos: &mut Option<u128>,
                 now: &Instant| {
        if selected.len() < quorum && !taken[entry.worker] {
            taken[entry.worker] = true;
            selected.push(Selected {
                worker: entry.worker,
                issued_round: entry.issued_round,
                vector: entry.vector,
            });
            if selected.len() == quorum {
                *arrival_nanos = Some(now.elapsed().as_nanos());
            }
        } else {
            leftover.push(entry);
        }
    };
    for entry in pending.drain(..) {
        offer(
            entry,
            &mut selected,
            &mut leftover,
            &mut taken,
            &mut arrival_nanos,
            &round_open,
        );
    }

    // Collect this round's fresh proposals in real arrival order. The loop
    // drains *every* proposal of the round (the quorum may close earlier —
    // `arrival_nanos` pins that moment — but stragglers are bookkept into
    // the carry pool before the next round opens, matching the in-process
    // async engine's accounting).
    let mut honest_seen = vec![false; honest];
    let mut byzantine_seen = vec![false; f];
    // Clones of the honest proposals for the adversary relay, worker order.
    let mut observed: Vec<Option<Vec<f64>>> = if f > 0 {
        vec![None; honest]
    } else {
        Vec::new()
    };
    let mut honest_arrived = 0usize;
    let mut byzantine_arrived = 0usize;
    let mut relay_sent = f == 0;
    let mut relay_at: Option<Instant> = None;
    let mut propose_nanos: u128 = 0;
    let mut attack_nanos: u128 = 0;
    while honest_arrived < honest || byzantine_arrived < f {
        let event = events.recv_timeout(ROUND_TIMEOUT).map_err(|e| match e {
            RecvTimeoutError::Timeout => ServerError::Timeout {
                seconds: ROUND_TIMEOUT.as_secs(),
                what: format!(
                    "round {round} proposals of job {id} \
                     ({honest_arrived}/{honest} honest, {byzantine_arrived}/{f} byzantine)"
                ),
            },
            RecvTimeoutError::Disconnected => {
                ServerError::protocol("every reader thread hung up mid-job")
            }
        })?;
        let (conn_worker, frame, bytes) = match event {
            ConnEvent::Closed { worker, error } => {
                return Err(ServerError::WorkerLost {
                    worker,
                    round: round as u64,
                    message: error
                        .map(|e| e.to_string())
                        .unwrap_or_else(|| "connection closed".into()),
                })
            }
            ConnEvent::Frame {
                worker,
                frame,
                bytes,
            } => (worker, frame, bytes),
        };
        wire_bytes += bytes as u64;
        let (job, propose_round, worker, proposal) = match frame {
            Frame::Propose {
                job,
                round,
                worker,
                proposal,
            } => (job, round, worker as usize, proposal),
            other => {
                return Err(ServerError::protocol(format!(
                    "unexpected {} frame from worker {conn_worker} during round {round}",
                    other.name()
                )))
            }
        };
        if job != id {
            return Err(ServerError::protocol(format!(
                "worker {conn_worker} proposed for foreign job {job} (serving job {id})"
            )));
        }
        if propose_round != round as u64 {
            return Err(ServerError::protocol(format!(
                "worker {conn_worker} proposed for round {propose_round} during round {round}"
            )));
        }
        if proposal.len() != dim {
            return Err(ServerError::protocol(format!(
                "worker {conn_worker} proposed dimension {}, expected {dim}",
                proposal.len()
            )));
        }
        // Authority: honest connections propose exactly their own slot, the
        // adversary connection proposes exactly the Byzantine slots.
        let from_adversary = conn_worker as usize == honest;
        if from_adversary {
            if worker < honest || worker >= n {
                return Err(ServerError::protocol(format!(
                    "the adversary proposed for honest slot {worker}"
                )));
            }
            if std::mem::replace(&mut byzantine_seen[worker - honest], true) {
                return Err(ServerError::protocol(format!(
                    "duplicate Byzantine proposal for slot {worker} in round {round}"
                )));
            }
            byzantine_arrived += 1;
            if let Some(at) = relay_at {
                attack_nanos = at.elapsed().as_nanos();
            }
        } else {
            if worker != conn_worker as usize {
                return Err(ServerError::protocol(format!(
                    "worker {conn_worker} proposed for slot {worker}"
                )));
            }
            if std::mem::replace(&mut honest_seen[worker], true) {
                return Err(ServerError::protocol(format!(
                    "duplicate proposal from worker {worker} in round {round}"
                )));
            }
            honest_arrived += 1;
            propose_nanos = round_open.elapsed().as_nanos();
            if f > 0 {
                observed[worker] = Some(proposal.clone());
            }
        }
        offer(
            Pending {
                worker,
                issued_round: round,
                vector: Vector::from(proposal),
            },
            &mut selected,
            &mut leftover,
            &mut taken,
            &mut arrival_nanos,
            &round_open,
        );

        // Omniscient-adversary relay: once every honest proposal of the
        // round is in, the adversary observes them (worker order — the
        // same order the in-process engines hand to `Attack::forge`) and
        // answers with the `f` Byzantine proposals.
        if !relay_sent && honest_arrived == honest {
            let relay = Frame::Broadcast {
                job: id,
                round: round as u64,
                params: params.as_slice().to_vec(),
                observed: observed
                    .iter_mut()
                    .map(|slot| slot.take().expect("every honest proposal arrived"))
                    .collect(),
            };
            wire_bytes += write_frame(&mut conns[honest].stream, &relay)? as u64;
            relay_sent = true;
            relay_at = Some(Instant::now());
        }
    }
    debug_assert_eq!(
        selected.len(),
        quorum,
        "all n workers proposed, so the quorum must have filled"
    );
    let arrival_nanos = arrival_nanos.unwrap_or_else(|| round_open.elapsed().as_nanos());

    // Carry the unselected proposals forward under the staleness bound.
    let mut dropped_stale = 0usize;
    for entry in leftover {
        if round + 1 - entry.issued_round > max_staleness {
            dropped_stale += 1;
        } else {
            pending.push(entry);
        }
    }
    let pending_carryover = pending.len();

    // Quorum/staleness stats, then the deterministic aggregation layout:
    // (issued_round, worker) order, exactly like the in-process async
    // engine (plain worker order when the quorum is all-fresh).
    let quorum_size = selected.len();
    let stale_in_quorum = selected.iter().filter(|s| s.issued_round < round).count();
    let max_staleness_in_quorum = selected
        .iter()
        .map(|s| round - s.issued_round)
        .max()
        .unwrap_or(0);
    selected.sort_by_key(|s| (s.issued_round, s.worker));
    let meta: Vec<(usize, usize)> = selected
        .iter()
        .map(|s| (s.worker, s.issued_round))
        .collect();
    let vectors: Vec<Vector> = selected.into_iter().map(|s| s.vector).collect();

    // Aggregate → step → record through the shared core.
    let true_gradient = probe.true_gradient(params);
    let mut record = core.close_round(params, round, &vectors, true_gradient, Some(probe))?;
    record.selected_worker = record.selected_worker.map(|slot| meta[slot].0);
    record.selected_byzantine = record.selected_worker.map(|w| w >= honest);
    record.propose_nanos = propose_nanos;
    record.attack_nanos = attack_nanos;
    if record_quorum {
        record.quorum_size = Some(quorum_size);
        record.stale_in_quorum = Some(stale_in_quorum);
        record.max_staleness_in_quorum = Some(max_staleness_in_quorum);
        record.dropped_stale = Some(dropped_stale);
        record.pending_carryover = Some(pending_carryover);
    }
    record.arrival_nanos = Some(arrival_nanos);

    // Close the round towards the workers.
    let closed = Frame::RoundClosed {
        job: id,
        round: round as u64,
        quorum: quorum_size as u32,
        aggregate_norm: record.aggregate_norm,
    };
    for conn in conns.iter_mut() {
        wire_bytes += write_frame(&mut conn.stream, &closed)? as u64;
    }
    record.wire_bytes = Some(wire_bytes);
    record.round_nanos = round_open.elapsed().as_nanos();
    Ok(record)
}
