//! # krum-server
//!
//! The networked face of the reproduction: a Byzantine-tolerant
//! **aggregation service** where Blanchard et al.'s parameter server is an
//! actual server — proposals arrive as length-framed bytes on TCP sockets
//! (`krum-wire`), rounds close on **real arrival order**, and many training
//! jobs run concurrently in one process. Hand-rolled on `std::net` +
//! threads, consistent with the workspace's vendored-only policy.
//!
//! ## Architecture
//!
//! ```text
//!  krum worker ──Hello──▶ ┌───────────────────────────────┐
//!  krum worker ──Hello──▶ │ Server (accept + handshake)   │
//!       …                 │   ├── JobSlot 0 ──────────────┼──▶ job thread
//!                         │   ├── JobSlot 1 … K-1         │    broadcast ▶
//!  reader thread per conn │   └── (JobAssign: slot, seed, │    collect ◀
//!  feeds the job channel  │        scenario JSON)         │    relay ▶ close
//!                         └───────────────────────────────┘    RoundCore
//! ```
//!
//! * [`Server`] accepts connections, checks the wire-protocol version, and
//!   staffs jobs first-fit; each job starts the moment its roster fills.
//! * Each **job** runs the round state machine of [`job`](self): broadcast
//!   `x_t`, collect proposals in real arrival order, relay the honest
//!   proposals to the adversary connection (the paper's omniscient
//!   adversary as bytes), close the round at the full barrier or at the
//!   configured quorum with the async engine's staleness/carry-over
//!   semantics, and aggregate through the same
//!   [`RoundCore`](krum_dist::RoundCore) the in-process engines use.
//! * [`WorkerClient`] is the other end of the socket: an honest worker
//!   rebuilds its estimator (and RNG stream) from the assigned scenario,
//!   the adversary connection rebuilds the registered attack and controls
//!   all `f` Byzantine slots.
//! * [`run_loopback`] wires server + workers in one process over localhost
//!   sockets — with a full barrier the trajectory is **bit-identical** to
//!   the in-process [`Scenario::run`](krum_scenario::Scenario) for the
//!   same spec (the determinism contract of the subsystem, pinned by
//!   `tests/loopback_determinism.rs`). Timing-sensitive adversaries
//!   (`last-to-respond`) observe real rather than simulated arrival
//!   order, so only their observation *order* may differ.
//!
//! The per-round wire cost is visible in the metrics: the `wire_bytes` and
//! `arrival_nanos` columns of
//! [`RoundRecord`](krum_metrics::RoundRecord) are filled by this subsystem
//! only, and `BENCH_server_loopback.json` records loopback overhead vs the
//! in-process engine.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod chaos;
mod checkpoint;
mod error;
mod job;
mod loopback;
mod server;
mod worker;

pub use chaos::{run_chaos, ChaosOptions, ChaosOutcome, ChaosProxy};
pub use checkpoint::CheckpointConfig;
pub use error::ServerError;
pub use loopback::{run_loopback, run_loopback_jobs};
pub use server::{JobOutcome, Server};
pub use worker::{run_worker, WorkerClient, WorkerSession, WorkerSummary};

/// Convenience prelude for the server crate.
pub mod prelude {
    pub use crate::{
        run_chaos, run_loopback, run_loopback_jobs, run_worker, ChaosOptions, ChaosOutcome,
        ChaosProxy, CheckpointConfig, JobOutcome, Server, ServerError, WorkerClient, WorkerSession,
        WorkerSummary,
    };
}
