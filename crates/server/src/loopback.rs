//! One-process loopback: server + workers over real sockets.
//!
//! `krum loopback spec.json` is the CI-friendly face of the subsystem: it
//! binds the server on an ephemeral localhost port, spawns one thread per
//! worker connection running the real [`WorkerClient`](crate::WorkerClient),
//! and runs the jobs to completion. Every byte still crosses a TCP socket
//! and every round still closes on real arrival order — only the process
//! boundary is gone. With a full barrier (or `quorum = n`) the resulting
//! trajectory is **bit-identical** to the in-process
//! [`Scenario::run`](krum_scenario::Scenario) for the same spec and seed
//! (pinned by `tests/loopback_determinism.rs`).

use std::thread;

use krum_scenario::{ScenarioReport, ScenarioSpec};

use crate::error::ServerError;
use crate::server::Server;
use crate::worker::run_worker;

/// Runs one job over loopback sockets and returns its report.
///
/// # Errors
///
/// Returns the job's error (worker lost, poisoned round, …) or any
/// transport/handshake failure.
pub fn run_loopback(spec: ScenarioSpec) -> Result<ScenarioReport, ServerError> {
    let mut reports = run_loopback_jobs(spec, 1)?;
    reports
        .pop()
        .ok_or_else(|| ServerError::protocol("loopback run produced no report"))
}

/// Runs `jobs` concurrent jobs over loopback sockets (job `k > 0` uses
/// `name#k` and `seed + k`, as under `krum serve --jobs K`) and returns
/// their reports in job order.
///
/// # Errors
///
/// Returns the first failing job's error, or any transport/handshake
/// failure — including a worker-side error that the server did not
/// observe.
pub fn run_loopback_jobs(
    spec: ScenarioSpec,
    jobs: usize,
) -> Result<Vec<ScenarioReport>, ServerError> {
    let server = Server::bind("127.0.0.1:0", spec, jobs)?;
    let addr = server.local_addr()?;
    let connections = server.connections_per_job() * jobs;
    let workers: Vec<_> = (0..connections)
        .map(|i| {
            thread::Builder::new()
                .name(format!("krum-loopback-worker-{i}"))
                .spawn(move || run_worker(addr))
                .map_err(ServerError::from)
        })
        .collect::<Result<_, _>>()?;

    let outcomes = server.run();
    let worker_results: Vec<Result<_, ServerError>> = workers
        .into_iter()
        .map(|handle| {
            handle
                .join()
                .unwrap_or_else(|_| Err(ServerError::protocol("worker thread panicked")))
        })
        .collect();

    // Server-level failures (bind/accept) first, then per-job failures,
    // then worker-side failures the server never saw.
    let outcomes = outcomes?;
    let mut reports = Vec::with_capacity(outcomes.len());
    for outcome in outcomes {
        reports.push(outcome.result?);
    }
    for result in worker_results {
        result?;
    }
    Ok(reports)
}
