//! The worker side of the wire: honest estimators and the adversary.
//!
//! A [`WorkerClient`] connects, handshakes, and serves whatever role the
//! server assigns:
//!
//! * **honest worker `w < n − f`** — rebuilds the scenario's workload from
//!   the spec JSON and seed in the `JobAssign` frame, keeps worker `w`'s
//!   estimator, and answers every `Broadcast` with one gradient estimate
//!   drawn from the same RNG stream (`stream_rng(seed, w)`) the in-process
//!   engines use — which is why loopback trajectories are bit-identical to
//!   in-process ones;
//! * **adversary (`w = n − f`, present when `f > 0`)** — one connection
//!   controls all `f` Byzantine workers, mirroring the paper's single
//!   omniscient adversary. Its `Broadcast` frames carry the honest
//!   proposals of the round (the observation relay); it rebuilds the
//!   registered [`AttackSpec`](krum_attacks::AttackSpec) from the scenario,
//!   forges with the in-process adversary's RNG stream
//!   (`stream_rng(seed, ATTACK_STREAM)`), and proposes for every Byzantine
//!   slot.

use std::net::{TcpStream, ToSocketAddrs};

use krum_attacks::{Attack, AttackContext};
use krum_dist::{stream_rng, ATTACK_STREAM};
use krum_models::GradientEstimator;
use krum_scenario::ScenarioSpec;
use krum_tensor::Vector;
use krum_wire::{read_frame, write_frame, Frame, PROTOCOL_VERSION};
use rand_chacha::ChaCha8Rng;

use crate::error::ServerError;

/// What a finished worker session did, for logs and tests.
#[derive(Debug)]
pub struct WorkerSummary {
    /// Job the worker served.
    pub job: u64,
    /// Assigned worker slot.
    pub worker: u32,
    /// `true` when the slot was the adversary connection.
    pub adversary: bool,
    /// Rounds the worker proposed in.
    pub rounds: u64,
    /// Total bytes sent + received on the wire.
    pub wire_bytes: u64,
    /// The final model, when the server published one before shutdown.
    pub final_params: Option<Vector>,
    /// The server's shutdown reason.
    pub shutdown_reason: String,
}

/// The worker's assigned role.
enum Role {
    Honest {
        estimator: Box<dyn GradientEstimator>,
        rng: ChaCha8Rng,
    },
    Adversary {
        attack: Box<dyn Attack>,
        rng: ChaCha8Rng,
        /// Full-knowledge probe for the true gradient (the omniscient
        /// adversary of the paper knows `∇Q`).
        probe: Box<dyn GradientEstimator>,
        rule_name: String,
        byzantine: usize,
        total_workers: usize,
    },
}

/// A connected worker session.
pub struct WorkerClient {
    stream: TcpStream,
    agent: String,
}

impl WorkerClient {
    /// Connects to a serving `krum-server`.
    ///
    /// # Errors
    ///
    /// Returns [`ServerError::Io`] when the connection fails.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Self, ServerError> {
        let stream = TcpStream::connect(addr)?;
        // Latency-bound ping-pong traffic: disable Nagle's algorithm.
        stream.set_nodelay(true)?;
        Ok(Self {
            stream,
            agent: "krum-worker".into(),
        })
    }

    /// Sets the free-form agent label sent in the handshake.
    pub fn with_agent(mut self, agent: impl Into<String>) -> Self {
        self.agent = agent.into();
        self
    }

    /// Handshakes, serves the assigned role until the server shuts the
    /// session down, and returns a summary.
    ///
    /// # Errors
    ///
    /// Returns [`ServerError::Rejected`] when the server refuses the
    /// connection, [`ServerError::Wire`]/[`ServerError::Io`] on transport
    /// failures, and [`ServerError::Protocol`] when the server violates the
    /// protocol.
    pub fn run(mut self) -> Result<WorkerSummary, ServerError> {
        let mut wire_bytes: u64 = 0;
        wire_bytes += write_frame(
            &mut self.stream,
            &Frame::Hello {
                version: PROTOCOL_VERSION,
                agent: self.agent.clone(),
            },
        )? as u64;

        let (frame, bytes) = read_frame(&mut self.stream)?;
        wire_bytes += bytes as u64;
        let (job, worker, seed, spec_json) = match frame {
            Frame::JobAssign {
                job,
                worker,
                seed,
                spec_json,
            } => (job, worker, seed, spec_json),
            Frame::Shutdown { reason, .. } => return Err(ServerError::Rejected { reason }),
            other => {
                return Err(ServerError::protocol(format!(
                    "expected JobAssign, got {}",
                    other.name()
                )))
            }
        };

        let spec = ScenarioSpec::from_json(&spec_json)?;
        let cluster = spec.cluster;
        let n = cluster.workers();
        let honest = cluster.honest();
        let f = cluster.byzantine();
        let dim = spec.dim()?;
        let slot = worker as usize;

        // Rebuild this worker's piece of the scenario. The whole workload
        // is a deterministic function of (spec, seed), so each worker can
        // derive exactly its own estimator — or, for the adversary, the
        // probe — without any further coordination. Each worker builds the
        // *full* cluster and keeps one slot: dataset generation/sharding
        // consumes one RNG stream front to back, so a build-one-slot
        // shortcut would have to replay the same draws anyway; the thrown
        // away estimators are thin wrappers over shards, and determinism
        // is what buys the bit-identical loopback trajectories.
        let mut role = if slot < honest {
            let workload = spec.estimator.build(honest, seed)?;
            let estimator = workload.estimators.into_iter().nth(slot).ok_or_else(|| {
                ServerError::protocol(format!("workload has no estimator for slot {slot}"))
            })?;
            Role::Honest {
                estimator,
                rng: stream_rng(seed, u64::from(worker)),
            }
        } else if slot == honest && f > 0 {
            let workload = spec.estimator.build(honest, seed)?;
            let mut estimators = workload.estimators;
            let probe = match workload.probe {
                Some(p) => p,
                None => estimators.swap_remove(0),
            };
            let arity = spec.execution.aggregation_arity(n);
            Role::Adversary {
                attack: spec.attack.build(dim)?,
                rng: stream_rng(seed, ATTACK_STREAM),
                probe,
                rule_name: spec.rule.build(arity, f)?.name(),
                byzantine: f,
                total_workers: n,
            }
        } else {
            return Err(ServerError::protocol(format!(
                "assigned slot {slot} does not exist for n = {n}, f = {f}"
            )));
        };

        let mut rounds = 0u64;
        let mut final_params: Option<Vector> = None;
        let shutdown_reason;
        loop {
            let (frame, bytes) = read_frame(&mut self.stream)?;
            wire_bytes += bytes as u64;
            match frame {
                Frame::Broadcast {
                    job: j,
                    round,
                    params,
                    observed,
                } => {
                    if j != job {
                        return Err(ServerError::protocol(format!(
                            "broadcast for foreign job {j} (serving job {job})"
                        )));
                    }
                    if params.len() != dim {
                        return Err(ServerError::protocol(format!(
                            "broadcast of dimension {}, expected {dim}",
                            params.len()
                        )));
                    }
                    wire_bytes += self.propose(&mut role, job, worker, round, params, observed)?;
                    rounds += 1;
                }
                Frame::RoundClosed { .. } => {}
                Frame::Aggregate { params, .. } => {
                    final_params = Some(Vector::from(params));
                }
                Frame::Shutdown { reason, .. } => {
                    shutdown_reason = reason;
                    break;
                }
                other => {
                    return Err(ServerError::protocol(format!(
                        "unexpected {} frame from the server",
                        other.name()
                    )))
                }
            }
        }

        Ok(WorkerSummary {
            job,
            worker,
            adversary: matches!(role, Role::Adversary { .. }),
            rounds,
            wire_bytes,
            final_params,
            shutdown_reason,
        })
    }

    /// Answers one `Broadcast` with this role's proposals; returns the
    /// bytes written.
    fn propose(
        &mut self,
        role: &mut Role,
        job: u64,
        worker: u32,
        round: u64,
        params: Vec<f64>,
        observed: Vec<Vec<f64>>,
    ) -> Result<u64, ServerError> {
        let params = Vector::from(params);
        let mut bytes = 0u64;
        match role {
            Role::Honest { estimator, rng } => {
                let proposal = estimator.estimate(&params, rng)?;
                bytes += write_frame(
                    &mut self.stream,
                    &Frame::Propose {
                        job,
                        round,
                        worker,
                        proposal: proposal.into_inner(),
                    },
                )? as u64;
            }
            Role::Adversary {
                attack,
                rng,
                probe,
                rule_name,
                byzantine,
                total_workers,
            } => {
                let honest = *total_workers - *byzantine;
                if observed.len() != honest {
                    return Err(ServerError::protocol(format!(
                        "observation relay carried {} proposals, expected {honest}",
                        observed.len()
                    )));
                }
                let observed: Vec<Vector> = observed.into_iter().map(Vector::from).collect();
                let true_gradient = probe.true_gradient(&params);
                let ctx = AttackContext {
                    honest_proposals: &observed,
                    current_params: &params,
                    true_gradient: true_gradient.as_ref(),
                    byzantine_count: *byzantine,
                    total_workers: *total_workers,
                    round: round as usize,
                    aggregator_name: rule_name,
                };
                let forged = attack.forge(&ctx, rng)?;
                if forged.len() != *byzantine {
                    return Err(ServerError::protocol(format!(
                        "the attack forged {} proposals, expected {byzantine}",
                        forged.len()
                    )));
                }
                for (b, proposal) in forged.into_iter().enumerate() {
                    bytes += write_frame(
                        &mut self.stream,
                        &Frame::Propose {
                            job,
                            round,
                            worker: (honest + b) as u32,
                            proposal: proposal.into_inner(),
                        },
                    )? as u64;
                }
            }
        }
        Ok(bytes)
    }
}

impl std::fmt::Debug for WorkerClient {
    fn fmt(&self, out: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        out.debug_struct("WorkerClient")
            .field("agent", &self.agent)
            .field("peer", &self.stream.peer_addr().ok())
            .finish_non_exhaustive()
    }
}

/// Connects to `addr` and serves one full worker session — the body of
/// `krum worker --connect ADDR`.
///
/// # Errors
///
/// See [`WorkerClient::run`].
pub fn run_worker(addr: impl ToSocketAddrs) -> Result<WorkerSummary, ServerError> {
    WorkerClient::connect(addr)?.run()
}
