//! The worker side of the wire: honest estimators and the adversary.
//!
//! A [`WorkerClient`] connects, handshakes, and serves whatever role the
//! server assigns:
//!
//! * **honest worker `w < n − f`** — rebuilds the scenario's workload from
//!   the spec JSON and seed in the `JobAssign` frame, keeps worker `w`'s
//!   estimator, and answers every `Broadcast` with one gradient estimate
//!   drawn from the same RNG stream (`stream_rng(seed, w)`) the in-process
//!   engines use — which is why loopback trajectories are bit-identical to
//!   in-process ones;
//! * **adversary (`w = n − f`, present when `f > 0`)** — one connection
//!   controls all `f` Byzantine workers, mirroring the paper's single
//!   omniscient adversary. Its `Broadcast` frames carry the honest
//!   proposals of the round (the observation relay); it rebuilds the
//!   registered [`AttackSpec`](krum_attacks::AttackSpec) from the scenario,
//!   forges with the in-process adversary's RNG stream
//!   (`stream_rng(seed, ATTACK_STREAM)`), and proposes for every Byzantine
//!   slot.
//!
//! ## Crash resilience
//!
//! Workers built with [`WorkerClient::with_retries`] survive a severed
//! connection: the session sleeps a bounded, seed-jittered exponential
//! backoff, reconnects, and handshakes with a [`Frame::Rejoin`] naming its
//! old job and slot. Determinism survives the churn two ways:
//!
//! * **answered-frame cache** — the frames answering the latest broadcast
//!   are cached before the first write, so a re-broadcast after a rejoin
//!   resends bit-identical answers (the RNG is *not* re-consumed);
//! * **fast-forward** — a worker that skipped rounds (the server proceeded
//!   at quorum while it was gone, or it restarted from scratch) replays the
//!   missed estimator/attack calls against dummy inputs before answering.
//!   Estimator and attack RNG consumption is input-independent, so the
//!   replay restores the exact RNG cursor an uninterrupted worker would
//!   have.

use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::Duration;

use krum_attacks::{Attack, AttackContext, RoundFeedback};
use krum_compress::GradientCodec;
use krum_dist::{stream_rng, ATTACK_STREAM};
use krum_models::GradientEstimator;
use krum_scenario::ScenarioSpec;
use krum_tensor::Vector;
use krum_wire::{read_frame, write_frame, Frame, PROTOCOL_VERSION};
use rand_chacha::ChaCha8Rng;

use crate::error::ServerError;

/// Backoff before rejoin attempt `k`: `min(50 · 2^k, 1600)` ms plus up to
/// 25 ms of deterministic per-worker jitter (see [`backoff_millis`]).
const BACKOFF_BASE_MILLIS: u64 = 50;
const BACKOFF_CAP_MILLIS: u64 = 1600;
const BACKOFF_JITTER_MILLIS: u64 = 25;

/// What a finished worker session did, for logs and tests.
#[derive(Debug)]
pub struct WorkerSummary {
    /// Job the worker served.
    pub job: u64,
    /// Assigned worker slot.
    pub worker: u32,
    /// `true` when the slot was the adversary connection.
    pub adversary: bool,
    /// Rounds the worker proposed in (fresh answers, not cache replays).
    pub rounds: u64,
    /// Times the worker lost its connection and successfully rejoined.
    pub reconnects: u64,
    /// Total bytes sent + received on the wire.
    pub wire_bytes: u64,
    /// The final model, when the server published one before shutdown.
    pub final_params: Option<Vector>,
    /// The server's shutdown reason.
    pub shutdown_reason: String,
}

/// The worker's assigned role.
enum Role {
    Honest {
        estimator: Box<dyn GradientEstimator>,
        rng: ChaCha8Rng,
    },
    Adversary {
        attack: Box<dyn Attack>,
        rng: ChaCha8Rng,
        /// Full-knowledge probe for the true gradient (the omniscient
        /// adversary of the paper knows `∇Q`).
        probe: Box<dyn GradientEstimator>,
        rule_name: String,
        byzantine: usize,
        total_workers: usize,
    },
}

/// A connected (but not yet handshaked) worker.
pub struct WorkerClient {
    stream: TcpStream,
    agent: String,
    retries: u32,
    version: u16,
}

impl WorkerClient {
    /// Connects to a serving `krum-server`.
    ///
    /// # Errors
    ///
    /// Returns [`ServerError::Io`] when the connection fails.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Self, ServerError> {
        let stream = TcpStream::connect(addr)?;
        // Latency-bound ping-pong traffic: disable Nagle's algorithm.
        stream.set_nodelay(true)?;
        Ok(Self {
            stream,
            agent: "krum-worker".into(),
            retries: 0,
            version: PROTOCOL_VERSION,
        })
    }

    /// Sets the free-form agent label sent in the handshake.
    #[must_use]
    pub fn with_agent(mut self, agent: impl Into<String>) -> Self {
        self.agent = agent.into();
        self
    }

    /// Sets how many times a severed session tries to rejoin before giving
    /// up (default `0`: fail fast, the pre-churn behaviour).
    #[must_use]
    pub fn with_retries(mut self, retries: u32) -> Self {
        self.retries = retries;
        self
    }

    /// Overrides the protocol version announced in the handshake (default:
    /// the crate's [`PROTOCOL_VERSION`]). A v1 session never negotiates a
    /// codec — on a codec-bearing job it exchanges raw (already quantized)
    /// frames, exercising the server's version fallback.
    #[must_use]
    pub fn with_protocol_version(mut self, version: u16) -> Self {
        self.version = version;
        self
    }

    /// Handshakes (`Hello` → `JobAssign`) and returns the assigned session
    /// without serving it — useful when the caller wants to pin connection
    /// order or inspect the assignment first.
    ///
    /// # Errors
    ///
    /// Returns [`ServerError::Rejected`] when the server refuses the
    /// connection, [`ServerError::Wire`]/[`ServerError::Io`] on transport
    /// failures, and [`ServerError::Protocol`] when the server violates
    /// the protocol.
    pub fn handshake(mut self) -> Result<WorkerSession, ServerError> {
        let mut wire_bytes: u64 = 0;
        let peer = self.stream.peer_addr()?;
        wire_bytes += write_frame(
            &mut self.stream,
            &Frame::Hello {
                version: self.version,
                agent: self.agent.clone(),
            },
        )? as u64;

        let (frame, bytes) = read_frame(&mut self.stream)?;
        wire_bytes += bytes as u64;
        let (job, worker, seed, spec_json) = match frame {
            Frame::JobAssign {
                job,
                worker,
                seed,
                spec_json,
            } => (job, worker, seed, spec_json),
            Frame::Shutdown { reason, .. } => return Err(ServerError::Rejected { reason }),
            other => {
                return Err(ServerError::protocol(format!(
                    "expected JobAssign, got {}",
                    other.name()
                )))
            }
        };

        let spec = ScenarioSpec::from_json(&spec_json)?;
        let cluster = spec.cluster;
        let n = cluster.workers();
        let honest = cluster.honest();
        let f = cluster.byzantine();
        let dim = spec.dim()?;
        let slot = worker as usize;

        // Rebuild this worker's piece of the scenario. The whole workload
        // is a deterministic function of (spec, seed), so each worker can
        // derive exactly its own estimator — or, for the adversary, the
        // probe — without any further coordination. Each worker builds the
        // *full* cluster and keeps one slot: dataset generation/sharding
        // consumes one RNG stream front to back, so a build-one-slot
        // shortcut would have to replay the same draws anyway; the thrown
        // away estimators are thin wrappers over shards, and determinism
        // is what buys the bit-identical loopback trajectories.
        let role = if slot < honest {
            let workload = spec.estimator.build(honest, seed)?;
            let estimator = workload.estimators.into_iter().nth(slot).ok_or_else(|| {
                ServerError::protocol(format!("workload has no estimator for slot {slot}"))
            })?;
            Role::Honest {
                estimator,
                rng: stream_rng(seed, u64::from(worker)),
            }
        } else if slot == honest && f > 0 {
            let workload = spec.estimator.build(honest, seed)?;
            let mut estimators = workload.estimators;
            let probe = match workload.probe {
                Some(p) => p,
                None => estimators.swap_remove(0),
            };
            let arity = spec.execution.aggregation_arity(n);
            Role::Adversary {
                attack: spec.attack.build(dim)?,
                rng: stream_rng(seed, ATTACK_STREAM),
                probe,
                rule_name: spec.rule.build(arity, f)?.name(),
                byzantine: f,
                total_workers: n,
            }
        } else {
            return Err(ServerError::protocol(format!(
                "assigned slot {slot} does not exist for n = {n}, f = {f}"
            )));
        };

        // A codec only exists when both the spec names one and this
        // session negotiated a compression-capable protocol version; a v1
        // session on a codec-bearing job exchanges raw quantized frames.
        let codec: Option<Box<dyn GradientCodec>> = if self.version >= 2 {
            spec.compression.as_ref().map(|c| c.build())
        } else {
            None
        };

        Ok(WorkerSession {
            stream: self.stream,
            peer,
            retries: self.retries,
            version: self.version,
            job,
            worker,
            seed,
            dim,
            role,
            codec,
            calls_made: 0,
            answered: None,
            rounds: 0,
            reconnects: 0,
            wire_bytes,
        })
    }

    /// Handshakes, serves the assigned role until the server shuts the
    /// session down, and returns a summary.
    ///
    /// # Errors
    ///
    /// See [`WorkerClient::handshake`] and [`WorkerSession::serve`].
    pub fn run(self) -> Result<WorkerSummary, ServerError> {
        self.handshake()?.serve()
    }
}

/// Whether a rejoin attempt resumed the session or ended it gracefully.
enum RejoinOutcome {
    Resumed,
    Ended(String),
}

/// A handshaked worker session, ready to serve rounds.
pub struct WorkerSession {
    stream: TcpStream,
    peer: SocketAddr,
    retries: u32,
    version: u16,
    job: u64,
    worker: u32,
    seed: u64,
    dim: usize,
    role: Role,
    /// The negotiated gradient codec (`None` for uncompressed jobs and v1
    /// sessions): proposals go out through `encode`, broadcasts come in
    /// through `decode`.
    codec: Option<Box<dyn GradientCodec>>,
    /// Estimator/attack calls made so far — the RNG cursor in rounds.
    calls_made: u64,
    /// The frames answering the latest broadcast, cached *before* the
    /// first write so a post-rejoin re-broadcast resends identical bits.
    answered: Option<(u64, Vec<Frame>)>,
    rounds: u64,
    reconnects: u64,
    wire_bytes: u64,
}

impl WorkerSession {
    /// The worker slot the server assigned.
    pub fn worker(&self) -> u32 {
        self.worker
    }

    /// The job the session is pinned to.
    pub fn job(&self) -> u64 {
        self.job
    }

    /// Serves the assigned role until the server shuts the session down
    /// (or the connection dies and every rejoin attempt fails).
    ///
    /// # Errors
    ///
    /// Returns [`ServerError::Wire`]/[`ServerError::Io`] when the
    /// connection dies with no retries left, and [`ServerError::Protocol`]
    /// when the server violates the protocol.
    pub fn serve(mut self) -> Result<WorkerSummary, ServerError> {
        let mut final_params: Option<Vector> = None;
        let shutdown_reason;
        loop {
            let frame = match read_frame(&mut self.stream) {
                Ok((frame, bytes)) => {
                    self.wire_bytes += bytes as u64;
                    frame
                }
                Err(e) => match self.rejoin(e.into())? {
                    RejoinOutcome::Resumed => continue,
                    RejoinOutcome::Ended(reason) => {
                        shutdown_reason = reason;
                        break;
                    }
                },
            };
            match frame {
                Frame::Broadcast {
                    job: j,
                    round,
                    params,
                    observed,
                } => {
                    if j != self.job {
                        return Err(ServerError::protocol(format!(
                            "broadcast for foreign job {j} (serving job {})",
                            self.job
                        )));
                    }
                    if params.len() != self.dim {
                        return Err(ServerError::protocol(format!(
                            "broadcast of dimension {}, expected {}",
                            params.len(),
                            self.dim
                        )));
                    }
                    match self.answer_broadcast(round, params, observed) {
                        Ok(()) => {}
                        Err(e) if is_transport(&e) => match self.rejoin(e)? {
                            RejoinOutcome::Resumed => {}
                            RejoinOutcome::Ended(reason) => {
                                shutdown_reason = reason;
                                break;
                            }
                        },
                        Err(e) => return Err(e),
                    }
                }
                Frame::BroadcastC {
                    job: j,
                    round,
                    params,
                    observed,
                } => {
                    if j != self.job {
                        return Err(ServerError::protocol(format!(
                            "broadcast for foreign job {j} (serving job {})",
                            self.job
                        )));
                    }
                    let Some(codec) = &self.codec else {
                        return Err(ServerError::protocol(
                            "compressed broadcast on a session that negotiated no codec"
                                .to_string(),
                        ));
                    };
                    let params = codec.decode_params(&params, self.dim).map_err(|e| {
                        ServerError::protocol(format!("undecodable broadcast params: {e}"))
                    })?;
                    let observed = observed
                        .iter()
                        .map(|o| codec.decode(o, &params, self.dim))
                        .collect::<Result<Vec<_>, _>>()
                        .map_err(|e| {
                            ServerError::protocol(format!("undecodable observation relay: {e}"))
                        })?;
                    match self.answer_broadcast(round, params, observed) {
                        Ok(()) => {}
                        Err(e) if is_transport(&e) => match self.rejoin(e)? {
                            RejoinOutcome::Resumed => {}
                            RejoinOutcome::Ended(reason) => {
                                shutdown_reason = reason;
                                break;
                            }
                        },
                        Err(e) => return Err(e),
                    }
                }
                Frame::Ping { job: _, nonce } => {
                    let pong = Frame::Pong {
                        job: self.job,
                        nonce,
                    };
                    match write_frame(&mut self.stream, &pong) {
                        Ok(bytes) => self.wire_bytes += bytes as u64,
                        Err(e) => match self.rejoin(e.into())? {
                            RejoinOutcome::Resumed => {}
                            RejoinOutcome::Ended(reason) => {
                                shutdown_reason = reason;
                                break;
                            }
                        },
                    }
                }
                Frame::RoundClosed { .. } => {}
                Frame::RoundFeedback {
                    job: j,
                    round,
                    aggregate,
                    learning_rate,
                    selected,
                    quorum,
                } => {
                    if j != self.job {
                        return Err(ServerError::protocol(format!(
                            "round-feedback for foreign job {j} (serving job {})",
                            self.job
                        )));
                    }
                    // The server only addresses feedback to the adversary
                    // connection of a stateful attack; anyone else hearing
                    // it means the server is confused about roles.
                    let Role::Adversary { attack, .. } = &mut self.role else {
                        return Err(ServerError::protocol(
                            "round-feedback sent to an honest worker".to_string(),
                        ));
                    };
                    let feedback = RoundFeedback {
                        round: round as usize,
                        aggregate: Vector::from(aggregate),
                        learning_rate,
                        selected_worker: selected.map(|s| s.worker as usize),
                        selected_byzantine: selected.map(|s| s.byzantine),
                        quorum_workers: quorum.into_iter().map(|w| w as usize).collect(),
                    };
                    attack.observe(&feedback);
                }
                Frame::Aggregate { params, .. } => {
                    final_params = Some(Vector::from(params));
                }
                Frame::Shutdown { reason, .. } => {
                    shutdown_reason = reason;
                    break;
                }
                other => {
                    return Err(ServerError::protocol(format!(
                        "unexpected {} frame from the server",
                        other.name()
                    )))
                }
            }
        }

        Ok(WorkerSummary {
            job: self.job,
            worker: self.worker,
            adversary: matches!(self.role, Role::Adversary { .. }),
            rounds: self.rounds,
            reconnects: self.reconnects,
            wire_bytes: self.wire_bytes,
            final_params,
            shutdown_reason,
        })
    }

    /// Answers one `Broadcast`: replays the cached answer bit-identically
    /// for a re-broadcast, fast-forwards skipped rounds, or computes (and
    /// caches) a fresh answer.
    fn answer_broadcast(
        &mut self,
        round: u64,
        params: Vec<f64>,
        observed: Vec<Vec<f64>>,
    ) -> Result<(), ServerError> {
        if let Some((answered_round, frames)) = &self.answered {
            if *answered_round == round {
                let frames = frames.clone();
                for frame in &frames {
                    self.wire_bytes += write_frame(&mut self.stream, frame)? as u64;
                }
                return Ok(());
            }
        }
        let params = Vector::from(params);
        // The server proceeded without us (or we restarted from round 0):
        // replay the missed calls so the RNG cursor matches an
        // uninterrupted worker's. Consumption is input-independent, so
        // dummy inputs restore it exactly.
        while self.calls_made < round {
            self.dummy_call(&params)?;
            self.calls_made += 1;
        }
        if self.calls_made > round {
            return Err(ServerError::protocol(format!(
                "re-broadcast of round {round} but the cached answer is gone \
                 (RNG cursor already at round {})",
                self.calls_made
            )));
        }
        let frames = self.compute_frames(round, &params, observed)?;
        self.answered = Some((round, frames.clone()));
        self.calls_made += 1;
        self.rounds += 1;
        for frame in &frames {
            self.wire_bytes += write_frame(&mut self.stream, frame)? as u64;
        }
        Ok(())
    }

    /// One discarded estimator/attack call, purely to advance the RNG.
    fn dummy_call(&mut self, params: &Vector) -> Result<(), ServerError> {
        match &mut self.role {
            Role::Honest { estimator, rng } => {
                let _ = estimator.estimate(params, rng)?;
            }
            // Dummy replay restores an RNG cursor, but a stateful attack's
            // memory is built from the *real* round feedback it observed —
            // feedback the server no longer has. Refuse instead of silently
            // forging from reset state.
            Role::Adversary { attack, .. } if attack.stateful() => {
                return Err(ServerError::protocol(
                    "a stateful attack cannot fast-forward skipped rounds: \
                     the round feedback it missed cannot be replayed"
                        .to_string(),
                ));
            }
            Role::Adversary {
                attack,
                rng,
                probe,
                rule_name,
                byzantine,
                total_workers,
            } => {
                let honest = *total_workers - *byzantine;
                let dummies = vec![Vector::zeros(self.dim); honest];
                let true_gradient = probe.true_gradient(params);
                let ctx = AttackContext {
                    honest_proposals: &dummies,
                    current_params: params,
                    true_gradient: true_gradient.as_ref(),
                    byzantine_count: *byzantine,
                    total_workers: *total_workers,
                    round: self.calls_made as usize,
                    aggregator_name: rule_name,
                };
                let _ = attack.forge(&ctx, rng)?;
            }
        }
        Ok(())
    }

    /// Computes the `Propose` frames answering one fresh broadcast
    /// (`ProposeC`, encoded against this round's broadcast params, when a
    /// codec was negotiated).
    fn compute_frames(
        &mut self,
        round: u64,
        params: &Vector,
        observed: Vec<Vec<f64>>,
    ) -> Result<Vec<Frame>, ServerError> {
        let job = self.job;
        let codec = self.codec.as_deref();
        let worker = self.worker;
        match &mut self.role {
            Role::Honest { estimator, rng } => {
                let proposal = estimator.estimate(params, rng)?;
                Ok(vec![propose_frame(
                    codec, job, round, worker, proposal, params,
                )])
            }
            Role::Adversary {
                attack,
                rng,
                probe,
                rule_name,
                byzantine,
                total_workers,
            } => {
                let honest = *total_workers - *byzantine;
                // A degraded round relays fewer than `honest` proposals
                // (crashed workers are missing); an empty or oversized
                // relay is still a protocol violation.
                if observed.is_empty() || observed.len() > honest {
                    return Err(ServerError::protocol(format!(
                        "observation relay carried {} proposals, expected 1..={honest}",
                        observed.len()
                    )));
                }
                let observed: Vec<Vector> = observed.into_iter().map(Vector::from).collect();
                let true_gradient = probe.true_gradient(params);
                let ctx = AttackContext {
                    honest_proposals: &observed,
                    current_params: params,
                    true_gradient: true_gradient.as_ref(),
                    byzantine_count: *byzantine,
                    total_workers: *total_workers,
                    round: round as usize,
                    aggregator_name: rule_name,
                };
                let forged = attack.forge(&ctx, rng)?;
                if forged.len() != *byzantine {
                    return Err(ServerError::protocol(format!(
                        "the attack forged {} proposals, expected {byzantine}",
                        forged.len()
                    )));
                }
                Ok(forged
                    .into_iter()
                    .enumerate()
                    .map(|(b, proposal)| {
                        propose_frame(codec, job, round, (honest + b) as u32, proposal, params)
                    })
                    .collect())
            }
        }
    }

    /// Reconnects and re-handshakes with `Rejoin`, sleeping a bounded
    /// seed-jittered exponential backoff between attempts. Returns the
    /// original error when no retries are configured or all fail.
    fn rejoin(&mut self, original: ServerError) -> Result<RejoinOutcome, ServerError> {
        if self.retries == 0 {
            return Err(original);
        }
        // A stateful attack adapts to feedback frames it may have missed
        // while the socket was down; no replay can restore that history, so
        // the adversary session fails fast instead of rejoining with a
        // diverged attack state.
        if matches!(&self.role, Role::Adversary { attack, .. } if attack.stateful()) {
            return Err(ServerError::protocol(format!(
                "a stateful attack cannot rejoin: feedback observed while \
                 disconnected cannot be replayed (disconnect: {original})"
            )));
        }
        let mut last = original;
        for attempt in 1..=self.retries {
            std::thread::sleep(Duration::from_millis(backoff_millis(
                self.seed,
                self.worker,
                attempt,
            )));
            match self.try_rejoin() {
                Ok(outcome) => {
                    if matches!(outcome, RejoinOutcome::Resumed) {
                        self.reconnects += 1;
                    }
                    return Ok(outcome);
                }
                Err(e) if is_transport(&e) => last = e,
                Err(e) => return Err(e),
            }
        }
        Err(last)
    }

    /// One rejoin attempt: connect, `Rejoin`, expect our old assignment.
    fn try_rejoin(&mut self) -> Result<RejoinOutcome, ServerError> {
        let mut stream = TcpStream::connect(self.peer)?;
        stream.set_nodelay(true)?;
        self.wire_bytes += write_frame(
            &mut stream,
            &Frame::Rejoin {
                version: self.version,
                job: self.job,
                worker: self.worker,
            },
        )? as u64;
        let (frame, bytes) = read_frame(&mut stream)?;
        self.wire_bytes += bytes as u64;
        match frame {
            Frame::JobAssign { job, worker, .. } => {
                if job != self.job || worker != self.worker {
                    return Err(ServerError::protocol(format!(
                        "rejoined as job {job} worker {worker}, \
                         expected job {} worker {}",
                        self.job, self.worker
                    )));
                }
                self.stream = stream;
                Ok(RejoinOutcome::Resumed)
            }
            Frame::Shutdown { reason, .. } => Ok(RejoinOutcome::Ended(reason)),
            other => Err(ServerError::protocol(format!(
                "expected JobAssign or Shutdown on rejoin, got {}",
                other.name()
            ))),
        }
    }
}

impl std::fmt::Debug for WorkerSession {
    fn fmt(&self, out: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        out.debug_struct("WorkerSession")
            .field("job", &self.job)
            .field("worker", &self.worker)
            .field("peer", &self.peer)
            .finish_non_exhaustive()
    }
}

/// `true` for errors a rejoin can heal (the transport died), `false` for
/// protocol violations and local failures.
fn is_transport(e: &ServerError) -> bool {
    matches!(e, ServerError::Wire(_) | ServerError::Io(_))
}

/// Wraps one proposal in its negotiated framing: `ProposeC` (encoded
/// against this round's broadcast params) under a codec, raw `Propose`
/// otherwise.
fn propose_frame(
    codec: Option<&dyn GradientCodec>,
    job: u64,
    round: u64,
    worker: u32,
    proposal: Vector,
    params: &Vector,
) -> Frame {
    match codec {
        Some(codec) => Frame::ProposeC {
            job,
            round,
            worker,
            proposal: codec.encode(proposal.as_slice(), params.as_slice()),
        },
        None => Frame::Propose {
            job,
            round,
            worker,
            proposal: proposal.into_inner(),
        },
    }
}

/// Deterministic backoff for attempt `k` (1-based): bounded exponential
/// plus a per-worker jitter hash so a crashed fleet does not thunder back
/// in lockstep.
fn backoff_millis(seed: u64, worker: u32, attempt: u32) -> u64 {
    let base = (BACKOFF_BASE_MILLIS << attempt.min(5)).min(BACKOFF_CAP_MILLIS);
    let jitter = splitmix(seed ^ (u64::from(worker) << 32) ^ u64::from(attempt));
    base + jitter % BACKOFF_JITTER_MILLIS
}

/// SplitMix64 finalizer — a tiny, dependency-free bit mixer.
fn splitmix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

impl std::fmt::Debug for WorkerClient {
    fn fmt(&self, out: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        out.debug_struct("WorkerClient")
            .field("agent", &self.agent)
            .field("peer", &self.stream.peer_addr().ok())
            .finish_non_exhaustive()
    }
}

/// Connects to `addr` and serves one full worker session — the body of
/// `krum worker --connect ADDR`.
///
/// # Errors
///
/// See [`WorkerClient::run`].
pub fn run_worker(addr: impl ToSocketAddrs) -> Result<WorkerSummary, ServerError> {
    WorkerClient::connect(addr)?.run()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_is_bounded_exponential_with_deterministic_jitter() {
        let a = backoff_millis(7, 2, 1);
        assert_eq!(a, backoff_millis(7, 2, 1), "jitter must be deterministic");
        assert!((100..125).contains(&a), "attempt 1 ≈ 100 ms, got {a}");
        for attempt in 1..200 {
            let ms = backoff_millis(42, 0, attempt);
            assert!(
                ms < BACKOFF_CAP_MILLIS + BACKOFF_JITTER_MILLIS,
                "backoff must stay bounded, got {ms}"
            );
        }
        assert_ne!(
            backoff_millis(7, 0, 1) % BACKOFF_JITTER_MILLIS,
            backoff_millis(7, 1, 1) % BACKOFF_JITTER_MILLIS,
            "workers should not thunder back in lockstep (for this seed)"
        );
    }
}
