//! Deterministic fault injection: an in-process chaos proxy and harness.
//!
//! [`ChaosProxy`] sits between workers and the server as a TCP
//! man-in-the-middle and executes the connection-level faults of a
//! [`FaultPlan`](krum_scenario::FaultPlan): it parses the client→server
//! byte stream into wire frames (without decoding them) and, at the
//! scripted frame index, drops/delays/blackholes/truncates/corrupts —
//! exactly once, on exactly the scripted connection. Because the faults
//! are data and the trigger is a frame *count* (not a timer), a chaos run
//! is reproducible: the same spec and plan disturb the same bytes.
//!
//! [`run_chaos`] is the full harness: server + proxy + workers in one
//! process, every worker configured to rejoin through the proxy, plus the
//! scripted `kill -9` — when the plan sets `kill_server_after_round`, the
//! server halts after checkpointing that round (sockets severed, no
//! goodbye, like a real crash), a fresh [`Server::resume`] picks the jobs
//! back up from disk, the proxy's upstream swings to the new port, and the
//! surviving workers rejoin mid-flight. The stitched run must be
//! bit-identical to an uninterrupted one — `tests/churn_recovery.rs` pins
//! exactly that.

use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use krum_scenario::{FaultAction, FaultPlan, FaultSpec, ScenarioReport, ScenarioSpec};
use krum_wire::{Frame, MAX_FRAME_BYTES};

use crate::error::ServerError;
use crate::server::Server;
use crate::worker::WorkerClient;

/// How often the proxy's accept loop polls for new connections.
const PROXY_POLL: Duration = Duration::from_millis(2);

/// A fault-injecting TCP proxy for one chaos run.
///
/// Lives until dropped; new connections (including worker rejoins) are
/// accepted throughout. Connections are numbered in accept order and only
/// the faults naming a connection's index apply to it — rejoin connections
/// get fresh (fault-free) indices, so a scripted fault fires exactly once.
pub struct ChaosProxy {
    addr: SocketAddr,
    upstream: Arc<Mutex<SocketAddr>>,
    stop: Arc<AtomicBool>,
}

impl ChaosProxy {
    /// Binds the proxy on an ephemeral localhost port in front of
    /// `upstream`, executing `faults` (one per scripted connection/frame).
    ///
    /// # Errors
    ///
    /// Returns [`ServerError::Io`] when the bind fails.
    pub fn start(upstream: SocketAddr, faults: Vec<FaultSpec>) -> Result<Self, ServerError> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let upstream = Arc::new(Mutex::new(upstream));
        let stop = Arc::new(AtomicBool::new(false));
        let accept_upstream = Arc::clone(&upstream);
        let accept_stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut conn_index: u32 = 0;
            while !accept_stop.load(Ordering::Relaxed) {
                match listener.accept() {
                    Ok((client, _)) => {
                        let conn_faults: Vec<FaultSpec> = faults
                            .iter()
                            .copied()
                            .filter(|f| f.conn == conn_index)
                            .collect();
                        conn_index += 1;
                        let target = *accept_upstream.lock().expect("upstream lock");
                        pipe_connection(client, target, conn_faults);
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        std::thread::sleep(PROXY_POLL);
                    }
                    Err(_) => break,
                }
            }
        });
        Ok(Self {
            addr,
            upstream,
            stop,
        })
    }

    /// The address workers should connect to.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Swings the upstream — new connections (rejoins included) go to
    /// `addr`. Existing pipes keep their old upstream until they die.
    pub fn set_upstream(&self, addr: SocketAddr) {
        *self.upstream.lock().expect("upstream lock") = addr;
    }
}

impl Drop for ChaosProxy {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
    }
}

impl std::fmt::Debug for ChaosProxy {
    fn fmt(&self, out: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        out.debug_struct("ChaosProxy")
            .field("addr", &self.addr)
            .field("upstream", &self.upstream.lock().ok().map(|a| *a))
            .finish_non_exhaustive()
    }
}

/// Wires one accepted client to the upstream: a frame-aware client→server
/// pump (where the faults fire) and a raw server→client pump.
fn pipe_connection(client: TcpStream, upstream: SocketAddr, faults: Vec<FaultSpec>) {
    let Ok(server) = TcpStream::connect(upstream) else {
        // No upstream (e.g. the scripted kill window): refuse the
        // connection so the worker retries with backoff.
        let _ = client.shutdown(Shutdown::Both);
        return;
    };
    let _ = client.set_nodelay(true);
    let _ = server.set_nodelay(true);
    let (Ok(client_read), Ok(server_read)) = (client.try_clone(), server.try_clone()) else {
        let _ = client.shutdown(Shutdown::Both);
        let _ = server.shutdown(Shutdown::Both);
        return;
    };
    std::thread::spawn(move || pump_frames(client_read, server, faults));
    std::thread::spawn(move || pump_raw(server_read, client));
}

/// Copies client→server traffic frame by frame, firing the scripted fault
/// when its frame index comes up. Heartbeat `Pong`s are not counted (their
/// timing is nondeterministic); the frame index is over everything else:
/// frame 0 is the handshake, an honest round-`r` proposal is frame `r + 1`.
fn pump_frames(mut from: TcpStream, mut to: TcpStream, faults: Vec<FaultSpec>) {
    let pong_tag = Frame::Pong { job: 0, nonce: 0 }.tag();
    let mut counted: u64 = 0;
    let mut blackholed = false;
    loop {
        let mut header = [0u8; 4];
        if from.read_exact(&mut header).is_err() {
            break;
        }
        let len = u32::from_le_bytes(header) as usize;
        if len == 0 || len > MAX_FRAME_BYTES {
            break;
        }
        let mut frame = vec![0u8; 4 + len + 4];
        frame[..4].copy_from_slice(&header);
        if from.read_exact(&mut frame[4..]).is_err() {
            break;
        }
        let tag = frame[4];
        let fault = if tag == pong_tag {
            None
        } else {
            let index = counted;
            counted += 1;
            faults
                .iter()
                .find(|f| f.at_frame == index)
                .map(|f| f.action)
        };
        match fault {
            None => {
                if blackholed {
                    continue;
                }
                if to.write_all(&frame).is_err() {
                    break;
                }
            }
            Some(FaultAction::Drop) => break,
            Some(FaultAction::Delay { millis }) => {
                std::thread::sleep(Duration::from_millis(millis));
                if to.write_all(&frame).is_err() {
                    break;
                }
            }
            Some(FaultAction::Blackhole) => {
                // Keep draining so the client never blocks on a full send
                // buffer, but forward nothing from here on.
                blackholed = true;
            }
            Some(FaultAction::Truncate { bytes }) => {
                let keep = (bytes as usize).min(frame.len());
                let _ = to.write_all(&frame[..keep]);
                break;
            }
            Some(FaultAction::Corrupt) => {
                // Flip one bit mid-payload; the CRC trailer now lies.
                let byte = 4 + len / 2;
                frame[byte] ^= 0x20;
                if to.write_all(&frame).is_err() {
                    break;
                }
            }
        }
    }
    let _ = from.shutdown(Shutdown::Both);
    let _ = to.shutdown(Shutdown::Both);
}

/// Copies server→client traffic verbatim until either side dies.
fn pump_raw(mut from: TcpStream, mut to: TcpStream) {
    let mut buf = [0u8; 16 * 1024];
    loop {
        match from.read(&mut buf) {
            Ok(0) | Err(_) => break,
            Ok(n) => {
                if to.write_all(&buf[..n]).is_err() {
                    break;
                }
            }
        }
    }
    let _ = from.shutdown(Shutdown::Both);
    let _ = to.shutdown(Shutdown::Both);
}

/// Knobs for [`run_chaos`] beyond what the spec's fault plan scripts.
#[derive(Debug, Clone)]
pub struct ChaosOptions {
    /// Checkpoint directory. Defaults to a per-process temp directory;
    /// required (and auto-created) when the plan kills the server.
    pub checkpoint_dir: Option<PathBuf>,
    /// Checkpoint cadence in rounds (default every round, so a scripted
    /// kill can always resume from the round it halted after).
    pub checkpoint_every: u64,
    /// Rejoin attempts per worker (default 40 — with the bounded backoff
    /// that is well over a minute of patience, enough to ride out a
    /// server kill/resume window).
    pub worker_retries: u32,
}

impl Default for ChaosOptions {
    fn default() -> Self {
        Self {
            checkpoint_dir: None,
            checkpoint_every: 1,
            worker_retries: 40,
        }
    }
}

/// What one chaos run produced.
#[derive(Debug)]
pub struct ChaosOutcome {
    /// The stitched scenario report (identical to an undisturbed run's
    /// when every worker recovered).
    pub report: ScenarioReport,
    /// Total successful rejoins across all workers.
    pub worker_reconnects: u64,
    /// `true` when the plan killed the server and a resume finished the
    /// job.
    pub server_resumed: bool,
    /// Workers whose sessions ended in an error (0 when every fault was
    /// healed by a rejoin).
    pub worker_failures: u64,
}

/// Runs `spec` through the full chaos harness: server behind a
/// [`ChaosProxy`] executing the spec's fault plan, workers staffed
/// sequentially through the proxy (so connection `i` is worker slot `i`)
/// with rejoin retries, checkpointing on, and the scripted server
/// kill/resume when the plan asks for one.
///
/// # Errors
///
/// Returns the spec/plan validation error, any bind failure, the job's
/// structured error when the run could not be completed, or a worker-side
/// handshake failure.
pub fn run_chaos(spec: ScenarioSpec, opts: ChaosOptions) -> Result<ChaosOutcome, ServerError> {
    spec.validate()?;
    let plan = spec.fault_plan.clone().unwrap_or(FaultPlan {
        description: String::new(),
        faults: Vec::new(),
        kill_server_after_round: None,
    });
    let kill_after = plan.kill_server_after_round;
    if let Some(kill) = kill_after {
        if kill + 1 >= spec.rounds as u64 {
            return Err(ServerError::protocol(format!(
                "kill_server_after_round = {kill} leaves nothing to resume \
                 (the scenario has {} rounds)",
                spec.rounds
            )));
        }
    }
    let checkpoint_dir = opts
        .checkpoint_dir
        .clone()
        .unwrap_or_else(|| std::env::temp_dir().join(format!("krum-chaos-{}", std::process::id())));
    std::fs::create_dir_all(&checkpoint_dir)?;
    let every = opts.checkpoint_every.max(1);

    let mut server =
        Server::bind("127.0.0.1:0", spec, 1)?.with_checkpoints(checkpoint_dir.clone(), every);
    if let Some(kill) = kill_after {
        server = server.with_halt_after_round(kill);
    }
    let server_addr = server.local_addr()?;
    let connections = server.connections_per_job();
    let proxy = ChaosProxy::start(server_addr, plan.faults.clone())?;
    let proxy_addr = proxy.addr();

    let server_thread = std::thread::spawn(move || server.run());

    // Staff sequentially so proxy connection `i` is worker slot `i` — the
    // contract `FaultSpec::conn` is scripted against. The handshake is a
    // full round trip, so slot assignment cannot race.
    let mut workers = Vec::with_capacity(connections);
    for i in 0..connections {
        let session = WorkerClient::connect(proxy_addr)?
            .with_agent(format!("krum-chaos-worker-{i}"))
            .with_retries(opts.worker_retries)
            .handshake()?;
        workers.push(
            std::thread::Builder::new()
                .name(format!("krum-chaos-worker-{i}"))
                .spawn(move || session.serve())?,
        );
    }

    let mut outcomes = server_thread
        .join()
        .unwrap_or(Err(ServerError::protocol("the server thread panicked")))?;
    let first = outcomes
        .pop()
        .ok_or_else(|| ServerError::protocol("the server produced no job outcome"))?;

    let mut server_resumed = false;
    let report = match first.result {
        Err(ServerError::Halted { .. }) if kill_after.is_some() => {
            // The scripted kill -9: bring up a fresh server from the
            // checkpoints, swing the proxy, and let the workers (already
            // in their rejoin loops) find it.
            let resumed = Server::resume("127.0.0.1:0", &checkpoint_dir)?
                .with_checkpoints(checkpoint_dir.clone(), every);
            proxy.set_upstream(resumed.local_addr()?);
            server_resumed = true;
            let mut outcomes = resumed.run()?;
            let outcome = outcomes
                .pop()
                .ok_or_else(|| ServerError::protocol("the resumed server produced no outcome"))?;
            outcome.result?
        }
        other => other?,
    };

    let mut worker_reconnects = 0u64;
    let mut worker_failures = 0u64;
    for handle in workers {
        match handle.join() {
            Ok(Ok(summary)) => worker_reconnects += summary.reconnects,
            // A worker whose session the chaos permanently severed; the
            // job itself already succeeded, so record rather than fail.
            Ok(Err(_)) | Err(_) => worker_failures += 1,
        }
    }

    Ok(ChaosOutcome {
        report,
        worker_reconnects,
        server_resumed,
        worker_failures,
    })
}
