//! Job checkpoint/resume: periodic snapshots, bit-identical continuation.
//!
//! A checkpoint is one encoded [`Frame::Checkpoint`] written to
//! `<dir>/job-<id>.ckpt` — the wire codec's length prefix, CRC-32 and
//! [`MAX_FRAME_BYTES`](krum_wire::MAX_FRAME_BYTES) cap guard the file
//! exactly like they guard a socket, so a torn or bit-flipped checkpoint is
//! rejected structurally instead of resuming onto garbage. The parameter
//! vector and the carry-over queue travel as raw `f64` bit patterns
//! (NaN/∞-safe); the spec and the recorded history ride in the frame's JSON
//! sidecar.
//!
//! What makes a resumed run *bit-identical* to an uninterrupted one is not
//! in this file: the snapshot stores the completed-round count, and
//! reconnecting workers rebuild their RNG streams from `(seed, slot)` and
//! fast-forward the exact number of consumed draws (see
//! [`crate::worker`]) — the checkpoint only has to restore the server-side
//! state: `x_t`, the straggler queue and the history.

use std::fs;
use std::path::{Path, PathBuf};

use krum_core::StatefulState;
use krum_metrics::TrainingHistory;
use krum_scenario::ScenarioSpec;
use krum_tensor::Vector;
use krum_wire::{read_frame, write_frame, CarryOver, Frame};
use serde::{Deserialize, Serialize};

use crate::error::ServerError;

/// Periodic checkpointing for a served job: where snapshots go and how
/// often they are taken.
#[derive(Debug, Clone)]
pub struct CheckpointConfig {
    /// Directory receiving one `job-<id>.ckpt` file per job.
    pub dir: PathBuf,
    /// Cadence: a snapshot is written after every `every`-th completed
    /// round (and always before a fault-plan halt).
    pub every: u64,
}

impl CheckpointConfig {
    /// The checkpoint file of job `id` under this config.
    pub fn path(&self, id: u64) -> PathBuf {
        self.dir.join(format!("job-{id}.ckpt"))
    }
}

/// The JSON sidecar inside a [`Frame::Checkpoint`]: the plain-data half of
/// the snapshot (the binary half — params and carry-overs — rides the frame
/// body as raw bits).
#[derive(Serialize, Deserialize)]
struct CheckpointState {
    spec: ScenarioSpec,
    history: TrainingHistory,
    wall_nanos: u128,
    /// Cross-round memory of a stateful aggregation rule (reputation
    /// weights, clip momentum); `None` for stateless rules. Restoring it is
    /// what keeps a resumed reputation-weighted run bit-identical to an
    /// uninterrupted one.
    stateful_rule: Option<StatefulState>,
}

/// Everything a restarted server needs to continue a job where its
/// checkpoint left off.
#[derive(Debug)]
pub(crate) struct ResumeState {
    /// The job id the checkpoint belongs to.
    pub id: u64,
    /// First round the resumed job runs (== rounds completed).
    pub start_round: u64,
    /// Parameter vector at `start_round`.
    pub params: Vector,
    /// Carry-over queue of in-flight stale proposals.
    pub pending: Vec<CarryOver>,
    /// The spec the job was running (seed/name already job-adjusted).
    pub spec: ScenarioSpec,
    /// History of the completed rounds.
    pub history: TrainingHistory,
    /// Wall-clock nanoseconds already accumulated before the restart.
    pub wall_nanos: u128,
    /// Snapshotted cross-round memory of a stateful aggregation rule.
    pub stateful_rule: Option<StatefulState>,
}

/// Writes one job snapshot atomically (`.tmp` + rename) and returns the
/// bytes on disk.
///
/// # Errors
///
/// Returns [`ServerError::Wire`] when the snapshot exceeds the frame cap
/// (the same bound a socket would enforce) and [`ServerError::Io`] on
/// filesystem failures.
#[allow(clippy::too_many_arguments)]
pub(crate) fn write_checkpoint(
    config: &CheckpointConfig,
    id: u64,
    rounds_done: u64,
    params: &Vector,
    pending: &[CarryOver],
    spec: &ScenarioSpec,
    history: &TrainingHistory,
    wall_nanos: u128,
    stateful_rule: Option<StatefulState>,
) -> Result<u64, ServerError> {
    let state = CheckpointState {
        spec: spec.clone(),
        history: history.clone(),
        wall_nanos,
        stateful_rule,
    };
    let state_json = serde_json::to_string(&state)
        .map_err(|e| ServerError::Checkpoint(format!("state serialisation failed: {e}")))?;
    let frame = Frame::Checkpoint {
        job: id,
        round: rounds_done,
        params: params.as_slice().to_vec(),
        pending: pending.to_vec(),
        state_json,
    };
    let mut bytes = Vec::with_capacity(frame.encoded_len());
    write_frame(&mut bytes, &frame)?;
    fs::create_dir_all(&config.dir)?;
    let path = config.path(id);
    let tmp = path.with_extension("ckpt.tmp");
    fs::write(&tmp, &bytes)?;
    fs::rename(&tmp, &path)?;
    Ok(bytes.len() as u64)
}

/// Reads one checkpoint file back into a [`ResumeState`].
///
/// # Errors
///
/// Returns [`ServerError::Io`] when the file is unreadable,
/// [`ServerError::Wire`] when the frame is torn/corrupt/oversized, and
/// [`ServerError::Checkpoint`] when the frame or its sidecar is not a
/// well-formed snapshot.
pub(crate) fn read_checkpoint(path: &Path) -> Result<ResumeState, ServerError> {
    let bytes = fs::read(path)?;
    let mut cursor = bytes.as_slice();
    let (frame, consumed) = read_frame(&mut cursor)?;
    if consumed != bytes.len() {
        return Err(ServerError::Checkpoint(format!(
            "{} has {} trailing bytes after the snapshot frame",
            path.display(),
            bytes.len() - consumed
        )));
    }
    let Frame::Checkpoint {
        job,
        round,
        params,
        pending,
        state_json,
    } = frame
    else {
        return Err(ServerError::Checkpoint(format!(
            "{} holds a non-checkpoint frame",
            path.display()
        )));
    };
    let state: CheckpointState = serde_json::from_str(&state_json)
        .map_err(|e| ServerError::Checkpoint(format!("bad state sidecar: {e}")))?;
    state
        .spec
        .validate()
        .map_err(|e| ServerError::Checkpoint(format!("snapshotted spec is invalid: {e}")))?;
    let dim = state
        .spec
        .dim()
        .map_err(|e| ServerError::Checkpoint(format!("snapshotted spec has no dimension: {e}")))?;
    if params.len() != dim {
        return Err(ServerError::Checkpoint(format!(
            "snapshot params have dimension {}, spec says {dim}",
            params.len()
        )));
    }
    if state.history.rounds.len() as u64 != round {
        return Err(ServerError::Checkpoint(format!(
            "snapshot says {round} rounds completed but records {}",
            state.history.rounds.len()
        )));
    }
    if round >= state.spec.rounds as u64 {
        return Err(ServerError::Checkpoint(format!(
            "snapshot already holds all {} rounds; nothing to resume",
            state.spec.rounds
        )));
    }
    Ok(ResumeState {
        id: job,
        start_round: round,
        params: Vector::from(params),
        pending,
        spec: state.spec,
        history: state.history,
        wall_nanos: state.wall_nanos,
        stateful_rule: state.stateful_rule,
    })
}

/// All checkpoint files under `dir`, sorted by job id.
///
/// # Errors
///
/// Returns [`ServerError::Io`] when the directory is unreadable and
/// [`ServerError::Checkpoint`] when it holds no checkpoints.
pub(crate) fn list_checkpoints(dir: &Path) -> Result<Vec<(u64, PathBuf)>, ServerError> {
    let mut found = Vec::new();
    for entry in fs::read_dir(dir)? {
        let path = entry?.path();
        let Some(name) = path.file_name().and_then(|n| n.to_str()) else {
            continue;
        };
        if let Some(id) = name
            .strip_prefix("job-")
            .and_then(|rest| rest.strip_suffix(".ckpt"))
            .and_then(|id| id.parse::<u64>().ok())
        {
            found.push((id, path));
        }
    }
    if found.is_empty() {
        return Err(ServerError::Checkpoint(format!(
            "no job-<id>.ckpt files under {}",
            dir.display()
        )));
    }
    found.sort_by_key(|(id, _)| *id);
    Ok(found)
}

#[cfg(test)]
mod tests {
    use super::*;
    use krum_scenario::ScenarioBuilder;

    fn spec() -> ScenarioSpec {
        ScenarioBuilder::new(9, 2)
            .name("ckpt-test")
            .rounds(6)
            .spec()
            .unwrap()
    }

    fn dir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("krum-ckpt-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&d);
        d
    }

    #[test]
    fn snapshot_round_trips_including_nonfinite_params() {
        let dir = dir("roundtrip");
        let config = CheckpointConfig {
            dir: dir.clone(),
            every: 2,
        };
        let spec = spec();
        let dim = spec.dim().unwrap();
        // NaN and ±∞ must survive: divergence is a legitimate outcome and
        // the snapshot rides the binary frame, not JSON.
        let mut values = vec![1.5; dim];
        values[0] = f64::NAN;
        values[1] = f64::INFINITY;
        let params = Vector::from(values);
        let pending = vec![CarryOver {
            worker: 3,
            issued_round: 1,
            proposal: vec![0.25; dim],
        }];
        let history = {
            let mut h = krum_metrics::TrainingHistory::new("t", "krum", "none", 9, 2);
            h.push(krum_metrics::RoundRecord::new(0, 1.0, 0.1));
            h.push(krum_metrics::RoundRecord::new(1, 0.5, 0.1));
            h
        };
        let stateful = StatefulState {
            reputation: vec![1.0, 0.25, f64::MIN_POSITIVE],
            clip_center: vec![0.5; dim],
        };
        let bytes = write_checkpoint(
            &config,
            0,
            2,
            &params,
            &pending,
            &spec,
            &history,
            42,
            Some(stateful.clone()),
        )
        .unwrap();
        assert_eq!(
            bytes,
            fs::metadata(config.path(0)).unwrap().len(),
            "reported bytes are the file size"
        );

        let resumed = read_checkpoint(&config.path(0)).unwrap();
        assert_eq!(resumed.id, 0);
        assert_eq!(resumed.start_round, 2);
        assert!(resumed.params.as_slice()[0].is_nan());
        assert_eq!(resumed.params.as_slice()[1], f64::INFINITY);
        assert_eq!(resumed.params.as_slice()[2], 1.5);
        assert_eq!(resumed.pending, pending);
        assert_eq!(resumed.spec, spec);
        assert_eq!(resumed.history.rounds.len(), 2);
        assert_eq!(resumed.wall_nanos, 42);
        assert_eq!(resumed.stateful_rule, Some(stateful));

        assert_eq!(list_checkpoints(&dir).unwrap(), vec![(0, config.path(0))]);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_and_inconsistent_snapshots_are_rejected() {
        let dir = dir("corrupt");
        let config = CheckpointConfig {
            dir: dir.clone(),
            every: 1,
        };
        let spec = spec();
        let dim = spec.dim().unwrap();
        let params = Vector::zeros(dim);
        let mut history = krum_metrics::TrainingHistory::new("t", "krum", "none", 9, 2);
        history.push(krum_metrics::RoundRecord::new(0, 1.0, 0.1));
        write_checkpoint(&config, 1, 1, &params, &[], &spec, &history, 0, None).unwrap();
        let path = config.path(1);

        // Flip one byte: the CRC catches it, structurally.
        let mut bytes = fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            read_checkpoint(&path).unwrap_err(),
            ServerError::Wire(_)
        ));

        // Truncate it: torn writes do not resume.
        let good = {
            write_checkpoint(&config, 1, 1, &params, &[], &spec, &history, 0, None).unwrap();
            fs::read(&path).unwrap()
        };
        fs::write(&path, &good[..good.len() - 3]).unwrap();
        assert!(matches!(
            read_checkpoint(&path).unwrap_err(),
            ServerError::Wire(_)
        ));

        // A snapshot whose round count disagrees with its history is
        // rejected before any job starts.
        let empty = krum_metrics::TrainingHistory::new("t", "krum", "none", 9, 2);
        write_checkpoint(&config, 1, 1, &params, &[], &spec, &empty, 0, None).unwrap();
        assert!(matches!(
            read_checkpoint(&path).unwrap_err(),
            ServerError::Checkpoint(_)
        ));

        // A finished job has nothing to resume.
        let mut full = krum_metrics::TrainingHistory::new("t", "krum", "none", 9, 2);
        for r in 0..spec.rounds {
            full.push(krum_metrics::RoundRecord::new(r, 1.0, 0.1));
        }
        write_checkpoint(
            &config,
            1,
            spec.rounds as u64,
            &params,
            &[],
            &spec,
            &full,
            0,
            None,
        )
        .unwrap();
        assert!(matches!(
            read_checkpoint(&path).unwrap_err(),
            ServerError::Checkpoint(_)
        ));

        assert!(list_checkpoints(&std::env::temp_dir().join("definitely-missing-krum")).is_err());
        fs::remove_dir_all(&dir).unwrap();
    }
}
