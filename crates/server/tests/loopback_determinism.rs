//! The determinism contract of the server subsystem: a loopback run —
//! real sockets, real threads, real arrival order — reproduces the
//! in-process `Scenario::run()` trajectory **bit-for-bit** for the same
//! spec and seed whenever rounds close at the full barrier (or at
//! `quorum = n`). This is the acceptance criterion of the `krum-server`
//! tentpole.

use krum_attacks::AttackSpec;
use krum_core::RuleSpec;
use krum_dist::{ClusterSpec, LatencyModel, LearningRateSchedule, NetworkModel};
use krum_models::{DataSpec, EstimatorSpec, ModelSpec};
use krum_scenario::{ExecutionSpec, InitSpec, ProbeSpec, Scenario, ScenarioReport, ScenarioSpec};
use krum_server::{run_loopback, run_loopback_jobs, ServerError};

fn spec() -> ScenarioSpec {
    ScenarioSpec {
        name: "loopback-determinism".into(),
        cluster: ClusterSpec::new(9, 2).unwrap(),
        rule: RuleSpec::Krum,
        attack: AttackSpec::SignFlip { scale: 3.0 },
        estimator: EstimatorSpec::GaussianQuadratic { dim: 6, sigma: 0.3 },
        schedule: LearningRateSchedule::Constant { gamma: 0.2 },
        execution: ExecutionSpec::Sequential,
        rounds: 15,
        eval_every: 4,
        seed: 7,
        init: InitSpec::Fill { value: 1.5 },
        probes: ProbeSpec::default(),
        fault_plan: None,
        compression: None,
    }
}

/// Every deterministic column must match bit-for-bit; only the measured
/// timings and the wire columns may differ between the two worlds.
fn assert_trajectories_identical(served: &ScenarioReport, in_process: &ScenarioReport) {
    assert_eq!(
        served.final_params, in_process.final_params,
        "final parameters must be bit-identical"
    );
    assert_eq!(served.history.len(), in_process.history.len());
    for (s, p) in served.history.rounds.iter().zip(&in_process.history.rounds) {
        assert_eq!(s.round, p.round);
        assert_eq!(s.aggregate_norm, p.aggregate_norm, "round {}", s.round);
        assert_eq!(s.loss, p.loss, "round {}", s.round);
        assert_eq!(s.accuracy, p.accuracy, "round {}", s.round);
        assert_eq!(s.true_gradient_norm, p.true_gradient_norm);
        assert_eq!(s.alignment, p.alignment, "round {}", s.round);
        assert_eq!(s.distance_to_optimum, p.distance_to_optimum);
        assert_eq!(s.selected_worker, p.selected_worker, "round {}", s.round);
        assert_eq!(s.selected_byzantine, p.selected_byzantine);
        assert_eq!(s.learning_rate, p.learning_rate);
    }
}

/// Acceptance: `krum loopback` with barrier rounds is bit-identical to
/// `Scenario::run()` per seed, and fills the wire columns the in-process
/// engine cannot.
#[test]
fn loopback_barrier_matches_in_process_scenario_bit_for_bit() {
    let served = run_loopback(spec()).unwrap();
    let in_process = Scenario::from_spec(spec()).unwrap().run().unwrap();
    assert_trajectories_identical(&served, &in_process);

    // The served run measured the wire; the in-process run could not.
    for record in &served.history.rounds {
        let bytes = record.wire_bytes.expect("served rounds count wire bytes");
        assert!(bytes > 0, "round {} moved no bytes", record.round);
        assert!(record.arrival_nanos.is_some());
        // Barrier execution leaves the quorum columns empty, like the
        // in-process barrier engines.
        assert!(record.quorum_size.is_none());
    }
    assert!(in_process.history.rounds[0].wire_bytes.is_none());
    assert!(served.history.mean_wire_bytes() > 0.0);
    assert!(served.history.mean_arrival_nanos() > 0.0);
    // The CSV export carries the wire columns.
    let csv = served.to_csv();
    assert!(csv.contains("wire_bytes"));
    assert!(csv.contains("arrival_nanos"));
    assert!(csv.contains("# execution: sequential"));
}

/// `quorum = n` over real sockets: same trajectory as the in-process
/// async-quorum engine (which itself reproduces Sequential), with the
/// quorum columns recorded and no staleness.
#[test]
fn loopback_full_quorum_matches_in_process_async_engine() {
    let mut async_spec = spec();
    async_spec.execution = ExecutionSpec::AsyncQuorum {
        quorum: 9,
        max_staleness: 2,
        reuse_stale: false,
        network: NetworkModel {
            latency: LatencyModel::Constant { nanos: 0 },
            nanos_per_byte: 0.0,
        },
    };
    let served = run_loopback(async_spec.clone()).unwrap();
    let in_process = Scenario::from_spec(async_spec).unwrap().run().unwrap();
    assert_trajectories_identical(&served, &in_process);
    for (s, p) in served.history.rounds.iter().zip(&in_process.history.rounds) {
        assert_eq!(s.quorum_size, p.quorum_size);
        assert_eq!(s.stale_in_quorum, p.stale_in_quorum);
        assert_eq!(s.dropped_stale, p.dropped_stale);
        assert_eq!(s.pending_carryover, p.pending_carryover);
    }
    assert!((served.history.mean_quorum_size() - 9.0).abs() < 1e-12);
    assert_eq!(served.history.mean_stale_in_quorum(), 0.0);
}

/// The `Remote` execution spec (which the in-process runner refuses) runs
/// over loopback and, with a full barrier, still reproduces the Sequential
/// trajectory — the spec's execution field changes *where* rounds close,
/// never *what* is computed.
#[test]
fn remote_barrier_spec_reproduces_the_sequential_trajectory() {
    let mut remote = spec();
    remote.execution = ExecutionSpec::remote(None, 0);
    assert!(matches!(
        Scenario::from_spec(remote.clone()),
        Err(krum_scenario::ScenarioError::InvalidSpec(_))
    ));
    let served = run_loopback(remote).unwrap();
    let sequential = Scenario::from_spec(spec()).unwrap().run().unwrap();
    assert_eq!(served.final_params, sequential.final_params);
    for (s, p) in served.history.rounds.iter().zip(&sequential.history.rounds) {
        assert_eq!(s.aggregate_norm, p.aggregate_norm);
        assert_eq!(s.selected_worker, p.selected_worker);
    }
}

/// A remote partial quorum (`Remote { quorum: Some(q) }`) serves end to
/// end: rounds close at the q-th real arrival, the quorum/staleness
/// columns are recorded, the rule is validated against the quorum arity,
/// and repeated runs stay finite and well-formed.
#[test]
fn remote_partial_quorum_serves_with_staleness_accounting() {
    let mut remote = spec();
    remote.execution = ExecutionSpec::remote(Some(7), 2);
    let served = run_loopback(remote).unwrap();
    assert!(served.final_params.is_finite());
    assert!((served.history.mean_quorum_size() - 7.0).abs() < 1e-12);
    for record in &served.history.rounds {
        assert_eq!(record.quorum_size, Some(7));
        assert!(record.dropped_stale.is_some());
        assert!(record.pending_carryover.is_some());
        assert!(record.wire_bytes.is_some());
    }
    // 9 workers race for 7 slots every round: the surplus carries.
    let carried: usize = served
        .history
        .rounds
        .iter()
        .filter_map(|r| r.pending_carryover)
        .sum();
    assert!(carried > 0, "a 7-of-9 quorum must carry stragglers");
}

/// Loopback runs are reproducible: two servings of the same spec produce
/// identical trajectories even though thread scheduling and real arrival
/// order differ between them (the barrier sorts arrivals back into worker
/// order).
#[test]
fn loopback_runs_are_reproducible_across_servings() {
    let a = run_loopback(spec()).unwrap();
    let b = run_loopback(spec()).unwrap();
    assert_trajectories_identical(&a, &b);
}

/// A synthetic (dataset-backed) workload with accuracy probes crosses the
/// wire bit-exactly too — estimator clusters, probe, holdout split and
/// accuracy hook all rebuild deterministically on the worker side.
#[test]
fn synthetic_workload_with_accuracy_probe_matches_in_process() {
    let mut s = spec();
    s.cluster = ClusterSpec::new(7, 2).unwrap();
    s.estimator = EstimatorSpec::Synthetic {
        model: ModelSpec::Logistic { features: 5 },
        data: DataSpec::LogisticRegression { samples: 160 },
        batch: 8,
        holdout: 0.25,
    };
    s.schedule = LearningRateSchedule::Constant { gamma: 0.5 };
    s.rounds = 10;
    s.eval_every = 3;
    s.init = InitSpec::Zeros;
    let served = run_loopback(s.clone()).unwrap();
    let in_process = Scenario::from_spec(s).unwrap().run().unwrap();
    assert_trajectories_identical(&served, &in_process);
    assert!(
        served.summary().final_accuracy.is_some(),
        "the served run must evaluate held-out accuracy"
    );
}

/// Multi-job serving: `--jobs K` derives job k from the base spec with
/// `name#k` / `seed + k`; job 0 is exactly the single-job run and every
/// job matches its in-process twin.
#[test]
fn concurrent_jobs_are_independent_seed_derived_runs() {
    let mut base = spec();
    base.rounds = 8;
    let reports = run_loopback_jobs(base.clone(), 2).unwrap();
    assert_eq!(reports.len(), 2);
    assert_eq!(reports[0].spec.name, "loopback-determinism");
    assert_eq!(reports[1].spec.name, "loopback-determinism#1");
    assert_eq!(reports[1].spec.seed, base.seed + 1);

    let solo = run_loopback(base.clone()).unwrap();
    assert_eq!(reports[0].final_params, solo.final_params);

    let mut twin = base.clone();
    twin.seed += 1;
    let twin_run = Scenario::from_spec(twin).unwrap().run().unwrap();
    assert_eq!(reports[1].final_params, twin_run.final_params);
    assert_ne!(
        reports[0].final_params, reports[1].final_params,
        "different seeds must give different trajectories"
    );
}

/// The PR-4 NaN-poisoning guarantee holds across the wire: a non-finite
/// attacker against a filtering rule (krum) yields a fully finite
/// trajectory; against plain averaging the job fails with the structured
/// poisoned-round error — never a panic, never silent garbage.
#[test]
fn nan_poisoning_guarantee_extends_across_the_wire() {
    let mut filtered = spec();
    filtered.attack = AttackSpec::NonFinite;
    filtered.rounds = 6;
    let report = run_loopback(filtered).unwrap();
    assert!(report.final_params.is_finite());
    assert!(!report.summary().diverged);

    let mut poisoned = spec();
    poisoned.attack = AttackSpec::NonFinite;
    poisoned.rule = RuleSpec::Average;
    poisoned.rounds = 6;
    let err = run_loopback(poisoned).unwrap_err();
    match err {
        ServerError::Train(train) => {
            assert!(train.to_string().contains("poisoned round"), "got: {train}")
        }
        other => panic!("expected a structured poisoned-round error, got: {other}"),
    }
}

/// A worker count of zero Byzantine (f = 0) serves without an adversary
/// connection at all.
#[test]
fn clean_clusters_serve_without_an_adversary_connection() {
    let mut clean = spec();
    clean.cluster = ClusterSpec::new(6, 0).unwrap();
    clean.attack = AttackSpec::None;
    clean.rule = RuleSpec::Average;
    clean.rounds = 6;
    let served = run_loopback(clean.clone()).unwrap();
    let in_process = Scenario::from_spec(clean).unwrap().run().unwrap();
    assert_trajectories_identical(&served, &in_process);
}

/// Tentpole: a hierarchical rule serves over real sockets unchanged — the
/// spec travels as its string form (`hierarchical:groups=4`), the server
/// builds the two-stage rule, and the served trajectory is bit-identical
/// to the in-process run.
#[test]
fn loopback_hierarchical_rule_matches_in_process() {
    let mut hier = spec();
    hier.cluster = ClusterSpec::new(24, 3).unwrap();
    hier.rule = RuleSpec::Hierarchical {
        groups: 4,
        inner: krum_core::StageRule::Krum,
        outer: krum_core::StageRule::Krum,
    };
    hier.rounds = 10;
    let served = run_loopback(hier.clone()).unwrap();
    let in_process = Scenario::from_spec(hier).unwrap().run().unwrap();
    assert_trajectories_identical(&served, &in_process);
}

/// Reuse-stale execution needs an engine-side latest-proposal table the
/// wire protocol cannot express; the server refuses it with a structured
/// error instead of silently running different semantics.
#[test]
fn loopback_rejects_reuse_stale_execution() {
    let mut reuse = spec();
    reuse.execution = ExecutionSpec::AsyncQuorum {
        quorum: 3,
        max_staleness: 4,
        network: NetworkModel {
            latency: LatencyModel::Constant { nanos: 0 },
            nanos_per_byte: 0.0,
        },
        reuse_stale: true,
    };
    let err = run_loopback(reuse).unwrap_err();
    match err {
        ServerError::Protocol(message) => {
            assert!(message.contains("reuse-stale"), "got: {message}")
        }
        other => panic!("expected a structured protocol error, got: {other}"),
    }
}
