//! The robustness contract of PR 6: worker churn, crash-fault
//! degradation, and server kill/resume — all driven by the deterministic
//! chaos harness, all pinned against the uninterrupted run.
//!
//! The two headline properties:
//!
//! * **crash + rejoin is invisible** — under the `WaitForRejoin` policy, a
//!   run where a worker's connection is dropped/blackholed/truncated/
//!   corrupted mid-job and the worker rejoins is **bit-identical** to the
//!   same spec served with no faults at all;
//! * **kill −9 + `--resume` is invisible** — a run where the server is
//!   halted after round `k` (checkpoint on disk, sockets severed, no
//!   goodbye) and a fresh server resumes from the checkpoint directory is
//!   bit-identical to the uninterrupted run.

use std::net::TcpStream;
use std::path::PathBuf;

use krum_attacks::AttackSpec;
use krum_core::RuleSpec;
use krum_dist::{ClusterSpec, LearningRateSchedule};
use krum_models::EstimatorSpec;
use krum_scenario::{
    CrashPolicy, ExecutionSpec, FaultAction, FaultPlan, FaultSpec, InitSpec, ProbeSpec,
    ScenarioReport, ScenarioSpec,
};
use krum_server::{run_chaos, run_loopback, run_worker, ChaosOptions, Server, ServerError};
use krum_wire::{read_frame, write_frame, Frame, PROTOCOL_VERSION};

/// A small barrier-mode remote scenario with test-friendly timeouts: a
/// 1-second heartbeat so hung-worker detection fires in ~3 s, not minutes.
fn spec(on_crash: CrashPolicy) -> ScenarioSpec {
    ScenarioSpec {
        name: "churn-recovery".into(),
        cluster: ClusterSpec::new(9, 2).unwrap(),
        rule: RuleSpec::Krum,
        attack: AttackSpec::SignFlip { scale: 3.0 },
        estimator: EstimatorSpec::GaussianQuadratic { dim: 6, sigma: 0.3 },
        schedule: LearningRateSchedule::Constant { gamma: 0.2 },
        execution: ExecutionSpec::Remote {
            quorum: None,
            max_staleness: 0,
            round_timeout_secs: 60,
            handshake_timeout_secs: 10,
            staffing_timeout_secs: 60,
            heartbeat_secs: 1,
            on_crash,
        },
        rounds: 6,
        eval_every: 3,
        seed: 21,
        init: InitSpec::Fill { value: 1.5 },
        probes: ProbeSpec::default(),
        fault_plan: None,
        compression: None,
    }
}

fn plan(faults: Vec<FaultSpec>) -> FaultPlan {
    FaultPlan {
        description: String::new(),
        faults,
        kill_server_after_round: None,
    }
}

fn ckpt_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("krum-churn-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Every deterministic column must match bit-for-bit; only measured
/// timings, wire byte counts and the churn columns may differ.
fn assert_trajectories_identical(disturbed: &ScenarioReport, control: &ScenarioReport) {
    assert_eq!(
        disturbed.final_params, control.final_params,
        "final parameters must be bit-identical"
    );
    assert_eq!(disturbed.history.len(), control.history.len());
    for (d, c) in disturbed.history.rounds.iter().zip(&control.history.rounds) {
        assert_eq!(d.round, c.round);
        assert_eq!(d.aggregate_norm, c.aggregate_norm, "round {}", d.round);
        assert_eq!(d.loss, c.loss, "round {}", d.round);
        assert_eq!(d.accuracy, c.accuracy, "round {}", d.round);
        assert_eq!(d.true_gradient_norm, c.true_gradient_norm);
        assert_eq!(d.alignment, c.alignment, "round {}", d.round);
        assert_eq!(d.distance_to_optimum, c.distance_to_optimum);
        assert_eq!(d.selected_worker, c.selected_worker, "round {}", d.round);
        assert_eq!(d.selected_byzantine, c.selected_byzantine);
        assert_eq!(d.learning_rate, c.learning_rate);
    }
}

/// Tentpole acceptance 1: a worker whose connection is severed mid-job
/// rejoins into its old slot and the trajectory is bit-identical to the
/// undisturbed run — the crash never happened, as far as training is
/// concerned.
#[test]
fn dropped_worker_rejoins_and_the_run_is_bit_identical() {
    let control = run_loopback(spec(CrashPolicy::WaitForRejoin)).unwrap();

    let mut disturbed = spec(CrashPolicy::WaitForRejoin);
    // Connection 2 = honest worker 2; frame 3 = its round-2 proposal.
    disturbed.fault_plan = Some(plan(vec![FaultSpec {
        conn: 2,
        at_frame: 3,
        action: FaultAction::Drop,
    }]));
    let outcome = run_chaos(
        disturbed,
        ChaosOptions {
            checkpoint_dir: Some(ckpt_dir("drop")),
            ..ChaosOptions::default()
        },
    )
    .unwrap();

    assert_trajectories_identical(&outcome.report, &control);
    assert!(
        outcome.worker_reconnects >= 1,
        "the dropped worker must have rejoined"
    );
    assert_eq!(outcome.worker_failures, 0);
    assert!(!outcome.server_resumed);
    assert_eq!(
        outcome.report.history.total_degraded_rounds(),
        0,
        "wait-for-rejoin never degrades a round"
    );
    assert!(
        outcome.report.history.total_reconnects() >= 1,
        "the reconnect is visible in the metrics"
    );
}

/// Tentpole acceptance 2: under `ProceedAtQuorum` a hung (blackholed)
/// worker is absorbed as a crash fault — the round closes degraded at the
/// live arrivals with the rule rebuilt for the smaller arity — and the
/// worker's rejoin restores full-strength rounds.
#[test]
fn blackholed_worker_degrades_rounds_then_recovers() {
    let mut disturbed = spec(CrashPolicy::ProceedAtQuorum);
    disturbed.fault_plan = Some(plan(vec![
        FaultSpec {
            conn: 1,
            at_frame: 2, // worker 1's round-1 proposal vanishes silently
            action: FaultAction::Blackhole,
        },
        // Hold round 4 open long enough for worker 1's rejoin to land
        // mid-job (proceed-at-quorum rounds otherwise close in
        // microseconds once the hung slot is declared dead).
        FaultSpec {
            conn: 3,
            at_frame: 5, // worker 3's round-4 proposal, delayed
            action: FaultAction::Delay { millis: 2_000 },
        },
    ]));
    let outcome = run_chaos(
        disturbed,
        ChaosOptions {
            checkpoint_dir: Some(ckpt_dir("blackhole")),
            ..ChaosOptions::default()
        },
    )
    .unwrap();

    let report = &outcome.report;
    assert_eq!(report.history.len(), 6, "the job must run to completion");
    assert!(report.final_params.is_finite());
    assert!(
        report.history.total_degraded_rounds() >= 1,
        "losing a worker mid-round must be visible as a degraded round"
    );
    assert!(
        outcome.worker_reconnects >= 1,
        "the hung worker must come back once the server severs it"
    );
    assert_eq!(outcome.worker_failures, 0);
    // Degradation is bounded: once the worker rejoined, later rounds are
    // full strength again.
    let last = report.history.rounds.last().unwrap();
    assert_eq!(last.degraded_rounds, Some(0), "the final round recovered");
}

/// Tentpole acceptance 3: kill −9 after round `k` + resume from the
/// checkpoint directory continues the job **bit-identically** — the
/// carry-over queue, history, params and worker RNG cursors all survive
/// the restart.
#[test]
fn server_kill_and_resume_is_bit_identical() {
    let control = run_loopback(spec(CrashPolicy::WaitForRejoin)).unwrap();

    let mut disturbed = spec(CrashPolicy::WaitForRejoin);
    disturbed.fault_plan = Some(FaultPlan {
        description: "kill -9 after round 2, resume from checkpoints".into(),
        faults: vec![],
        kill_server_after_round: Some(2),
    });
    let outcome = run_chaos(
        disturbed,
        ChaosOptions {
            checkpoint_dir: Some(ckpt_dir("kill")),
            checkpoint_every: 2,
            ..ChaosOptions::default()
        },
    )
    .unwrap();

    assert!(outcome.server_resumed, "the scripted kill must have fired");
    assert_trajectories_identical(&outcome.report, &control);
    assert!(
        outcome.worker_reconnects as usize >= outcome.report.spec.cluster.honest(),
        "every worker had to rejoin the resumed server"
    );
    assert!(
        outcome.report.history.total_checkpoint_bytes() > 0,
        "checkpoint costs are accounted in the metrics"
    );
}

/// Tentpole acceptance 4: every fault action heals under rejoin — no
/// scripted fault panics the server, and with `WaitForRejoin` each one is
/// invisible in the trajectory.
#[test]
fn every_fault_action_heals_under_rejoin_bit_identically() {
    let control = run_loopback(spec(CrashPolicy::WaitForRejoin)).unwrap();
    let actions = [
        FaultAction::Drop,
        FaultAction::Delay { millis: 50 },
        FaultAction::Blackhole,
        FaultAction::Truncate { bytes: 5 },
        FaultAction::Corrupt,
    ];
    for action in actions {
        let mut disturbed = spec(CrashPolicy::WaitForRejoin);
        disturbed.fault_plan = Some(plan(vec![FaultSpec {
            conn: 0,
            at_frame: 1, // worker 0's round-0 proposal
            action,
        }]));
        let outcome = run_chaos(
            disturbed,
            ChaosOptions {
                checkpoint_dir: Some(ckpt_dir(&format!("{action}").replace(['(', ')'], "-"))),
                ..ChaosOptions::default()
            },
        )
        .unwrap_or_else(|e| panic!("{action}: chaos run failed: {e}"));
        assert_trajectories_identical(&outcome.report, &control);
        assert_eq!(outcome.worker_failures, 0, "{action}");
        if !matches!(action, FaultAction::Delay { .. }) {
            assert!(
                outcome.worker_reconnects >= 1,
                "{action} must force a rejoin"
            );
        }
    }
}

/// Satellite S1 regression: a raw client that handshakes, proposes once
/// and dies mid-round under the fail-fast (non-churn) configuration
/// produces a structured `WorkerLost` job error — never a panicked job
/// thread, never a stringly error.
#[test]
fn dying_worker_yields_structured_error_not_a_panic() {
    let mut fail_fast = spec(CrashPolicy::WaitForRejoin);
    fail_fast.cluster = ClusterSpec::new(5, 0).unwrap();
    fail_fast.attack = AttackSpec::None;
    fail_fast.rule = RuleSpec::Average;
    // Sequential execution serves over loopback with the pre-churn
    // fail-fast semantics (no crash policy).
    fail_fast.execution = ExecutionSpec::Sequential;

    let server = Server::bind("127.0.0.1:0", fail_fast, 1).unwrap();
    let addr = server.local_addr().unwrap();
    let server_thread = std::thread::spawn(move || server.run());

    // Four well-behaved workers…
    let workers: Vec<_> = (0..4)
        .map(|_| std::thread::spawn(move || run_worker(addr)))
        .collect();
    // …and one that handshakes, answers round 0, then drops dead.
    let mut dying = TcpStream::connect(addr).unwrap();
    write_frame(
        &mut dying,
        &Frame::Hello {
            version: PROTOCOL_VERSION,
            agent: "about-to-die".into(),
        },
    )
    .unwrap();
    let (frame, _) = read_frame(&mut dying).unwrap();
    let (job, worker) = match frame {
        Frame::JobAssign { job, worker, .. } => (job, worker),
        other => panic!("expected JobAssign, got {other:?}"),
    };
    let (frame, _) = read_frame(&mut dying).unwrap();
    match frame {
        Frame::Broadcast { round, params, .. } => {
            write_frame(
                &mut dying,
                &Frame::Propose {
                    job,
                    round,
                    worker,
                    proposal: params, // dimension is all that matters here
                },
            )
            .unwrap();
        }
        other => panic!("expected Broadcast, got {other:?}"),
    }
    drop(dying);

    let outcomes = server_thread.join().expect("server thread must not panic");
    let outcome = outcomes.unwrap().pop().unwrap();
    match outcome.result {
        Err(ServerError::WorkerLost { worker: lost, .. }) => {
            assert_eq!(lost, worker);
        }
        other => panic!("expected a structured WorkerLost error, got: {other:?}"),
    }
    // The surviving workers were told why, in a structured Shutdown.
    for handle in workers {
        let summary = handle.join().unwrap().unwrap();
        assert!(
            summary.shutdown_reason.contains("job failed"),
            "got: {}",
            summary.shutdown_reason
        );
    }
}

/// A fault plan that kills the server with nothing left to resume is
/// rejected up front with a structured error, not discovered mid-run.
#[test]
fn kill_beyond_the_last_round_is_rejected() {
    let mut bad = spec(CrashPolicy::WaitForRejoin);
    bad.fault_plan = Some(FaultPlan {
        description: String::new(),
        faults: vec![],
        kill_server_after_round: Some(5), // rounds = 6: nothing after it
    });
    let err = run_chaos(bad, ChaosOptions::default()).unwrap_err();
    assert!(err.to_string().contains("nothing to resume"), "got: {err}");
}
