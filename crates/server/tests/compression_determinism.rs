//! The determinism contract of the `krum-compress` tentpole: a loopback
//! run under any negotiated codec — compressed frames on real sockets —
//! reproduces the in-process run of the *same quantized scenario*
//! **bit-for-bit** per seed. Quantize-before-aggregate means both worlds
//! feed identical post-transform bits to the aggregation rule, so the
//! trajectories cannot drift. Also pins the `raw_bytes` accounting and
//! the v1-client-vs-v2-server uncompressed fallback.

use std::thread;

use krum_attacks::AttackSpec;
use krum_compress::CompressionSpec;
use krum_core::RuleSpec;
use krum_dist::{ClusterSpec, LearningRateSchedule};
use krum_models::EstimatorSpec;
use krum_scenario::{ExecutionSpec, InitSpec, ProbeSpec, Scenario, ScenarioReport, ScenarioSpec};
use krum_server::{run_loopback, Server, ServerError, WorkerClient};

fn spec() -> ScenarioSpec {
    ScenarioSpec {
        name: "compression-determinism".into(),
        cluster: ClusterSpec::new(9, 2).unwrap(),
        rule: RuleSpec::Krum,
        attack: AttackSpec::SignFlip { scale: 3.0 },
        estimator: EstimatorSpec::GaussianQuadratic { dim: 6, sigma: 0.3 },
        schedule: LearningRateSchedule::Constant { gamma: 0.2 },
        execution: ExecutionSpec::Sequential,
        rounds: 15,
        eval_every: 4,
        seed: 7,
        init: InitSpec::Fill { value: 1.5 },
        probes: ProbeSpec::default(),
        fault_plan: None,
        compression: None,
    }
}

fn compressed(codec: CompressionSpec) -> ScenarioSpec {
    let mut s = spec();
    s.compression = Some(codec);
    s
}

/// Every deterministic column must match bit-for-bit; only the measured
/// timings and the wire columns may differ between the two worlds.
fn assert_trajectories_identical(served: &ScenarioReport, in_process: &ScenarioReport) {
    assert_eq!(
        served.final_params, in_process.final_params,
        "final parameters must be bit-identical"
    );
    assert_eq!(served.history.len(), in_process.history.len());
    for (s, p) in served.history.rounds.iter().zip(&in_process.history.rounds) {
        assert_eq!(s.round, p.round);
        assert_eq!(s.aggregate_norm, p.aggregate_norm, "round {}", s.round);
        assert_eq!(s.loss, p.loss, "round {}", s.round);
        assert_eq!(s.accuracy, p.accuracy, "round {}", s.round);
        assert_eq!(s.true_gradient_norm, p.true_gradient_norm);
        assert_eq!(s.alignment, p.alignment, "round {}", s.round);
        assert_eq!(s.distance_to_optimum, p.distance_to_optimum);
        assert_eq!(s.selected_worker, p.selected_worker, "round {}", s.round);
        assert_eq!(s.selected_byzantine, p.selected_byzantine);
        assert_eq!(s.learning_rate, p.learning_rate);
    }
}

/// Acceptance: for every codec the spec grammar can name, a loopback run
/// with compressed frames is bit-identical to the in-process run of the
/// same quantized scenario.
#[test]
fn every_codec_loopback_matches_in_process_quantized_run_bit_for_bit() {
    let codecs = [
        CompressionSpec::Bfp {
            block: 64,
            bits: 12,
        },
        CompressionSpec::TopK { k: 4 },
        CompressionSpec::DeltaBfp {
            block: 32,
            bits: 10,
        },
        CompressionSpec::DeltaTopK { k: 4 },
    ];
    for codec in codecs {
        let s = compressed(codec);
        let served = run_loopback(s.clone()).unwrap_or_else(|e| panic!("{codec}: {e}"));
        let in_process = Scenario::from_spec(s).unwrap().run().unwrap();
        assert_trajectories_identical(&served, &in_process);
    }
}

/// Quantization changes the trajectory (that is the point of pinning the
/// quantized run, not the fp64 one): a BFP-compressed run must differ from
/// the uncompressed run of the same seed, yet stay finite and convergent.
#[test]
fn quantization_perturbs_but_does_not_break_the_trajectory() {
    let base = run_loopback(spec()).unwrap();
    let quantized = run_loopback(compressed(CompressionSpec::Bfp { block: 64, bits: 8 })).unwrap();
    assert_ne!(
        base.final_params, quantized.final_params,
        "an 8-bit mantissa must actually quantize"
    );
    assert!(quantized.final_params.is_finite());
    assert!(!quantized.summary().diverged);
}

/// `raw_bytes` accounting: a compressed run reports post-compression
/// `wire_bytes` and the uncompressed-equivalent `raw_bytes`, with a real
/// reduction; an uncompressed run reports `raw_bytes == wire_bytes`.
#[test]
fn raw_bytes_records_the_uncompressed_wire_equivalent() {
    let compressed_run = run_loopback(compressed(CompressionSpec::Bfp {
        block: 64,
        bits: 12,
    }))
    .unwrap();
    for record in &compressed_run.history.rounds {
        let wire = record.wire_bytes.expect("served rounds count wire bytes");
        let raw = record.raw_bytes.expect("served rounds count raw bytes");
        assert!(
            wire < raw,
            "round {}: compressed wire {wire} must undercut raw {raw}",
            record.round
        );
    }
    let ratio = compressed_run.history.total_raw_bytes() as f64
        / compressed_run.history.mean_wire_bytes().max(1.0)
        / compressed_run.history.len() as f64;
    assert!(ratio > 1.0, "compression must shrink the wire, got {ratio}");
    assert!(compressed_run.history.mean_raw_bytes() > compressed_run.history.mean_wire_bytes());

    let plain = run_loopback(spec()).unwrap();
    for record in &plain.history.rounds {
        assert_eq!(
            record.raw_bytes, record.wire_bytes,
            "without a codec the raw figure is the wire figure"
        );
    }

    // The CSV carries the new column.
    let csv = compressed_run.to_csv();
    assert!(csv.contains("raw_bytes"));
    assert!(csv.contains("# compression: bfp:block=64,bits=12"));
}

/// Runs a loopback where every worker pins the given wire-protocol
/// version instead of the default.
fn run_loopback_with_version(
    spec: ScenarioSpec,
    version: u16,
) -> Result<ScenarioReport, ServerError> {
    let server = Server::bind("127.0.0.1:0", spec, 1)?;
    let addr = server.local_addr()?;
    let workers: Vec<_> = (0..server.connections_per_job())
        .map(|i| {
            thread::Builder::new()
                .name(format!("krum-v{version}-worker-{i}"))
                .spawn(move || {
                    WorkerClient::connect(addr)?
                        .with_protocol_version(version)
                        .run()
                })
                .map_err(ServerError::from)
        })
        .collect::<Result<_, _>>()?;
    let outcomes = server.run()?;
    let mut reports = Vec::new();
    for outcome in outcomes {
        reports.push(outcome.result?);
    }
    for handle in workers {
        handle
            .join()
            .unwrap_or_else(|_| Err(ServerError::protocol("worker thread panicked")))?;
    }
    Ok(reports.pop().expect("one job produces one report"))
}

/// Version fallback: a v1 worker fleet against a v2 server with a codec
/// in the spec completes the job over *uncompressed* frames — and because
/// the server transforms raw proposals itself, the trajectory is still
/// bit-identical to the in-process quantized run. Never a hard break.
#[test]
fn v1_workers_against_v2_server_fall_back_to_uncompressed_frames() {
    let s = compressed(CompressionSpec::Bfp {
        block: 64,
        bits: 12,
    });
    let served_v1 = run_loopback_with_version(s.clone(), 1).unwrap();
    let in_process = Scenario::from_spec(s).unwrap().run().unwrap();
    assert_trajectories_identical(&served_v1, &in_process);

    // Uncompressed framing: the v1 run pays the full raw price.
    for record in &served_v1.history.rounds {
        assert_eq!(
            record.raw_bytes, record.wire_bytes,
            "v1 sessions move raw frames only"
        );
    }
}

/// The fallback composes with negotiation: v2 workers on the same spec
/// move strictly fewer bytes than the v1 fleet while producing the same
/// bits.
#[test]
fn v2_negotiation_beats_the_v1_fallback_on_the_wire() {
    let s = compressed(CompressionSpec::Bfp {
        block: 64,
        bits: 12,
    });
    let v1 = run_loopback_with_version(s.clone(), 1).unwrap();
    let v2 = run_loopback(s).unwrap();
    assert_eq!(v1.final_params, v2.final_params);
    assert!(
        v2.history.mean_wire_bytes() < v1.history.mean_wire_bytes(),
        "v2 {} vs v1 {}",
        v2.history.mean_wire_bytes(),
        v1.history.mean_wire_bytes()
    );
    // Both fleets agree on what the traffic *would* have cost raw.
    assert_eq!(v1.history.total_raw_bytes(), v2.history.total_raw_bytes());
}

/// Compression survives the async-quorum path too: `quorum = n` over real
/// sockets with a codec still matches the in-process async engine run of
/// the quantized scenario.
#[test]
fn compressed_full_quorum_matches_in_process_async_engine() {
    use krum_dist::{LatencyModel, NetworkModel};
    let mut s = compressed(CompressionSpec::Bfp {
        block: 64,
        bits: 12,
    });
    s.execution = ExecutionSpec::AsyncQuorum {
        quorum: 9,
        max_staleness: 2,
        reuse_stale: false,
        network: NetworkModel {
            latency: LatencyModel::Constant { nanos: 0 },
            nanos_per_byte: 0.0,
        },
    };
    let served = run_loopback(s.clone()).unwrap();
    let in_process = Scenario::from_spec(s).unwrap().run().unwrap();
    assert_trajectories_identical(&served, &in_process);
}

/// Compressed loopback runs are reproducible across servings: real
/// arrival order differs, the bits do not.
#[test]
fn compressed_loopback_runs_are_reproducible_across_servings() {
    let s = compressed(CompressionSpec::DeltaBfp {
        block: 64,
        bits: 12,
    });
    let a = run_loopback(s.clone()).unwrap();
    let b = run_loopback(s).unwrap();
    assert_trajectories_identical(&a, &b);
}
