//! Handshake and protocol-violation behaviour of the serving loop, driven
//! through raw sockets: version mismatches are rejected with a structured
//! `Shutdown`, garbage handshakes only cost their own socket, and the
//! server keeps serving its legitimate workers throughout.

use std::net::TcpStream;

use krum_attacks::AttackSpec;
use krum_core::RuleSpec;
use krum_dist::{ClusterSpec, LearningRateSchedule};
use krum_models::EstimatorSpec;
use krum_scenario::{ExecutionSpec, InitSpec, ProbeSpec, ScenarioSpec};
use krum_server::{run_worker, Server};
use krum_wire::{read_frame, write_frame, Frame, PROTOCOL_VERSION};

fn spec() -> ScenarioSpec {
    ScenarioSpec {
        name: "wire-protocol".into(),
        cluster: ClusterSpec::new(5, 0).unwrap(),
        rule: RuleSpec::Average,
        attack: AttackSpec::None,
        estimator: EstimatorSpec::GaussianQuadratic { dim: 4, sigma: 0.1 },
        schedule: LearningRateSchedule::Constant { gamma: 0.2 },
        execution: ExecutionSpec::remote(None, 0),
        rounds: 3,
        eval_every: 3,
        seed: 11,
        init: InitSpec::Fill { value: 1.0 },
        probes: ProbeSpec::default(),
        fault_plan: None,
        compression: None,
    }
}

/// A peer speaking the wrong protocol version gets a structured `Shutdown`
/// naming both versions, and the server then serves its real workers to
/// completion.
#[test]
fn version_mismatch_is_rejected_with_a_structured_shutdown() {
    let server = Server::bind("127.0.0.1:0", spec(), 1).unwrap();
    let addr = server.local_addr().unwrap();
    let needed = server.connections_per_job();
    assert_eq!(needed, 5, "f = 0 needs no adversary connection");
    let server_thread = std::thread::spawn(move || server.run());

    // Wrong version: rejected without consuming a worker slot.
    let mut bad = TcpStream::connect(addr).unwrap();
    write_frame(
        &mut bad,
        &Frame::Hello {
            version: PROTOCOL_VERSION + 1,
            agent: "time-traveller".into(),
        },
    )
    .unwrap();
    let (frame, _) = read_frame(&mut bad).unwrap();
    match frame {
        Frame::Shutdown { reason, .. } => {
            assert!(reason.contains("version mismatch"), "got: {reason}");
            assert!(reason.contains(&format!("v{PROTOCOL_VERSION}")));
        }
        other => panic!("expected Shutdown, got {other:?}"),
    }
    drop(bad);

    // A non-Hello opener costs only its own socket.
    let mut rude = TcpStream::connect(addr).unwrap();
    write_frame(
        &mut rude,
        &Frame::Propose {
            job: 0,
            round: 0,
            worker: 0,
            proposal: vec![1.0; 4],
        },
    )
    .unwrap();
    drop(rude);

    // The legitimate workers still staff and finish the job.
    let workers: Vec<_> = (0..needed)
        .map(|_| std::thread::spawn(move || run_worker(addr)))
        .collect();
    let outcomes = server_thread.join().unwrap().unwrap();
    assert_eq!(outcomes.len(), 1);
    let report = outcomes.into_iter().next().unwrap().result.unwrap();
    assert_eq!(report.history.len(), 3);
    for worker in workers {
        let summary = worker.join().unwrap().unwrap();
        assert_eq!(summary.rounds, 3);
        assert!(!summary.adversary);
        assert_eq!(summary.shutdown_reason, "job complete");
        assert_eq!(
            summary.final_params.as_ref().map(|p| p.dim()),
            Some(4),
            "every worker receives the final model"
        );
        assert!(summary.wire_bytes > 0);
    }
}

/// Binding rejects invalid configurations up front: a spec that fails
/// cross-validation and a zero job count.
#[test]
fn bind_validates_spec_and_job_count() {
    let mut bad = spec();
    bad.rounds = 0;
    assert!(Server::bind("127.0.0.1:0", bad, 1).is_err());
    assert!(Server::bind("127.0.0.1:0", spec(), 0).is_err());
    // Remote quorum bounds are enforced through the same validation.
    let mut bad = spec();
    bad.execution = ExecutionSpec::remote(Some(2), 1); // quorum < n - f = 5
    assert!(Server::bind("127.0.0.1:0", bad, 1).is_err());
    // A model too large for the observation relay frame is rejected at
    // bind time with a clear message, not mid-round at the receiver.
    let mut huge = spec();
    huge.estimator = EstimatorSpec::GaussianQuadratic {
        dim: 10_000_000,
        sigma: 0.1,
    };
    let err = Server::bind("127.0.0.1:0", huge, 1).unwrap_err();
    assert!(
        err.to_string().contains("wire"),
        "expected a wire-size error, got: {err}"
    );
}

/// `job_specs` exposes the derived per-job scenarios (`name#k`,
/// `seed + k`) so operators can see exactly what a `--jobs K` serve runs.
#[test]
fn job_specs_expose_the_seed_derivation() {
    let server = Server::bind("127.0.0.1:0", spec(), 3).unwrap();
    let specs = server.job_specs();
    assert_eq!(specs.len(), 3);
    assert_eq!(specs[0].name, "wire-protocol");
    assert_eq!(specs[0].seed, 11);
    assert_eq!(specs[2].name, "wire-protocol#2");
    assert_eq!(specs[2].seed, 13);
}
