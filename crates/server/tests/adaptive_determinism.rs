//! Determinism of the adaptive-adversary layer: stateful attacks and
//! stateful defenses must keep every invariant the stateless world has —
//! repeat runs are bit-identical, the async engine at `quorum = n`
//! reproduces Sequential, and a loopback serving (real sockets, the
//! `RoundFeedback` relay as bytes on the wire) reproduces the in-process
//! trajectory bit-for-bit.

use krum_attacks::{AttackSpec, DriftTarget};
use krum_core::RuleSpec;
use krum_dist::{ClusterSpec, LatencyModel, LearningRateSchedule, NetworkModel};
use krum_models::EstimatorSpec;
use krum_scenario::{ExecutionSpec, InitSpec, ProbeSpec, Scenario, ScenarioReport, ScenarioSpec};
use krum_server::run_loopback;

fn spec(attack: AttackSpec, rule: RuleSpec) -> ScenarioSpec {
    ScenarioSpec {
        name: "adaptive-determinism".into(),
        cluster: ClusterSpec::new(9, 2).unwrap(),
        rule,
        attack,
        estimator: EstimatorSpec::GaussianQuadratic { dim: 6, sigma: 0.3 },
        schedule: LearningRateSchedule::Constant { gamma: 0.2 },
        execution: ExecutionSpec::Sequential,
        rounds: 12,
        eval_every: 4,
        seed: 11,
        init: InitSpec::Fill { value: 1.5 },
        probes: ProbeSpec::default(),
        fault_plan: None,
        compression: None,
    }
}

fn attacks() -> Vec<AttackSpec> {
    vec![
        AttackSpec::InlierDrift {
            sigma: 1.5,
            target: DriftTarget::Neg,
        },
        AttackSpec::AlieVariance { scale: 1.0 },
        AttackSpec::AdaptiveProbe {
            start: 1.0,
            grow: 1.25,
            backoff: 0.5,
        },
    ]
}

fn rules() -> Vec<RuleSpec> {
    vec![
        RuleSpec::ReputationWeighted { eta: 0.2 },
        RuleSpec::CenteredClip {
            tau: 2.0,
            beta: 0.9,
        },
    ]
}

/// Deterministic columns only — timings and wire columns are measured.
fn assert_trajectories_identical(a: &ScenarioReport, b: &ScenarioReport, cell: &str) {
    assert_eq!(
        a.final_params, b.final_params,
        "{cell}: final parameters must be bit-identical"
    );
    assert_eq!(a.history.len(), b.history.len(), "{cell}");
    for (x, y) in a.history.rounds.iter().zip(&b.history.rounds) {
        assert_eq!(x.round, y.round, "{cell}");
        assert_eq!(
            x.aggregate_norm, y.aggregate_norm,
            "{cell} round {}",
            x.round
        );
        assert_eq!(x.loss, y.loss, "{cell} round {}", x.round);
        assert_eq!(
            x.selected_worker, y.selected_worker,
            "{cell} round {}",
            x.round
        );
        assert_eq!(x.selected_byzantine, y.selected_byzantine, "{cell}");
        assert_eq!(x.learning_rate, y.learning_rate, "{cell}");
        assert_eq!(
            x.dist_to_honest_mean, y.dist_to_honest_mean,
            "{cell} round {}",
            x.round
        );
        assert_eq!(
            x.attacker_displacement, y.attacker_displacement,
            "{cell} round {}",
            x.round
        );
        assert_eq!(x.reputation_spread, y.reputation_spread, "{cell}");
    }
}

/// Every stateful attack × stateful defense cell reruns bit-identically:
/// attack state, defense state and the drift columns are all deterministic
/// functions of (spec, seed).
#[test]
fn stateful_cells_are_bit_identical_across_repeat_runs() {
    for attack in attacks() {
        for rule in rules() {
            let cell = format!("{attack} vs {}", rule.name());
            let s = spec(attack, rule);
            let a = Scenario::from_spec(s.clone()).unwrap().run().unwrap();
            let b = Scenario::from_spec(s).unwrap().run().unwrap();
            assert_trajectories_identical(&a, &b, &cell);
            // The drift layer actually ran: at least one round recorded a
            // distance and a displacement.
            assert!(
                a.history
                    .rounds
                    .iter()
                    .any(|r| r.dist_to_honest_mean.is_some()),
                "{cell}: no drift column was filled"
            );
            assert!(
                a.history
                    .rounds
                    .iter()
                    .any(|r| r.attacker_displacement.is_some()),
                "{cell}: no displacement was recorded"
            );
        }
    }
}

/// The async engine at `quorum = n` (zero latency, zero staleness) closes
/// the same quorums as the barrier engine, so the stateful trajectories —
/// attack memory keyed by rounds, defense memory keyed by worker ids —
/// must coincide bit-for-bit with Sequential.
#[test]
fn full_quorum_async_matches_sequential_for_stateful_cells() {
    for attack in attacks() {
        for rule in rules() {
            let cell = format!("{attack} vs {} (async)", rule.name());
            let sequential = Scenario::from_spec(spec(attack, rule))
                .unwrap()
                .run()
                .unwrap();
            let mut async_spec = spec(attack, rule);
            async_spec.execution = ExecutionSpec::AsyncQuorum {
                quorum: 9,
                max_staleness: 2,
                reuse_stale: false,
                network: NetworkModel {
                    latency: LatencyModel::Constant { nanos: 0 },
                    nanos_per_byte: 0.0,
                },
            };
            let asynchronous = Scenario::from_spec(async_spec).unwrap().run().unwrap();
            assert_trajectories_identical(&sequential, &asynchronous, &cell);
        }
    }
}

/// Loopback serving of a stateful × stateful cell: the adversary observes
/// through `Frame::RoundFeedback` frames instead of an in-process call,
/// the defense state lives server-side, and the trajectory is still
/// bit-identical to the in-process run. One cell per attack keeps the
/// socket-heavy part of the suite bounded.
#[test]
fn loopback_stateful_cells_match_in_process_bit_for_bit() {
    let cells = vec![
        (
            AttackSpec::InlierDrift {
                sigma: 1.5,
                target: DriftTarget::Neg,
            },
            RuleSpec::ReputationWeighted { eta: 0.2 },
        ),
        (
            AttackSpec::AdaptiveProbe {
                start: 1.0,
                grow: 1.25,
                backoff: 0.5,
            },
            RuleSpec::CenteredClip {
                tau: 2.0,
                beta: 0.9,
            },
        ),
        (AttackSpec::AlieVariance { scale: 1.0 }, RuleSpec::Krum),
    ];
    for (attack, rule) in cells {
        let cell = format!("{attack} vs {} (loopback)", rule.name());
        let s = spec(attack, rule);
        let served = run_loopback(s.clone()).unwrap();
        let in_process = Scenario::from_spec(s).unwrap().run().unwrap();
        assert_trajectories_identical(&served, &in_process, &cell);
    }
}

/// A stateful defense against a *stateless* attack also crosses the wire
/// bit-exactly — no feedback frames fire (the attack has no observe hook),
/// but the server-side reputation state still shapes every aggregate.
#[test]
fn loopback_stateful_defense_against_stateless_attack_matches_in_process() {
    let s = spec(
        AttackSpec::SignFlip { scale: 3.0 },
        RuleSpec::ReputationWeighted { eta: 0.25 },
    );
    let served = run_loopback(s.clone()).unwrap();
    let in_process = Scenario::from_spec(s).unwrap().run().unwrap();
    assert_trajectories_identical(&served, &in_process, "sign-flip vs reputation-weighted");
    assert!(
        served
            .history
            .rounds
            .iter()
            .any(|r| r.reputation_spread.is_some()),
        "the reputation column must be live on the served run"
    );
}
