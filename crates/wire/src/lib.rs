//! # krum-wire
//!
//! The wire protocol of the krum aggregation server: a versioned,
//! length-framed binary codec over any `Read`/`Write` transport (in
//! production a `TcpStream`), hand-rolled on `std` only — the build
//! environment vendors no serialisation or networking crate, and the frame
//! layout is simple enough that a schema compiler would be overkill.
//!
//! ## Frame layout
//!
//! ```text
//! ┌──────────────┬─────────┬──────────────┬───────────────┐
//! │ u32 LE       │ u8      │ body bytes   │ u32 LE        │
//! │ payload len  │ tag     │ (per frame)  │ CRC-32 of     │
//! │ (tag + body) │         │              │ tag + body    │
//! └──────────────┴─────────┴──────────────┴───────────────┘
//! ```
//!
//! * the length prefix is validated against [`MAX_FRAME_BYTES`] **before**
//!   any allocation, so a corrupt or hostile peer cannot make the server
//!   allocate gigabytes;
//! * the trailing CRC-32 (IEEE) covers the tag and body, so bit flips and
//!   framing slips surface as [`WireError::ChecksumMismatch`] instead of
//!   garbage vectors;
//! * all integers are little-endian; `f64` coordinates travel as their IEEE
//!   bit pattern (`to_le_bytes`), so a proposal crosses the wire
//!   **bit-exactly** — the loopback server reproduces in-process
//!   trajectories to the last ulp.
//!
//! Decoding never panics: every malformed input — truncated buffer, unknown
//! tag, oversized declared length, trailing bytes, invalid UTF-8 — returns a
//! structured [`WireError`] (property-tested in
//! `tests/frame_roundtrip.rs`).
//!
//! The protocol itself (who sends what when) lives in `krum-server`; this
//! crate only defines the vocabulary: [`Frame`] and its codec.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// The never-panic decode invariant, enforced at compile time on top of the
// `krum audit` PANIC001 pass: production code in this crate may not unwrap
// or expect (tests may — see `allow-unwrap-in-tests` in clippy.toml).
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

use std::io::{Read, Write};

use thiserror::Error;

/// Version of the wire protocol spoken by this build. A [`Frame::Hello`]
/// carries the client's version; the server accepts any version in
/// [`MIN_PROTOCOL_VERSION`]`..=`[`PROTOCOL_VERSION`] and speaks the
/// peer's dialect (a v1 peer never sees a v2-only frame), rejecting
/// anything else with [`WireError::VersionMismatch`] rather than guessing
/// at frame layouts.
///
/// * **v1** — the original uncompressed protocol: every vector travels as
///   raw `f64` bit patterns.
/// * **v2** — adds the compressed [`Frame::BroadcastC`] /
///   [`Frame::ProposeC`] pair carrying codec-encoded payloads
///   (`krum-compress`). v2 is a strict superset: a v2 job with no codec
///   configured uses the v1 frames unchanged.
pub const PROTOCOL_VERSION: u16 = 2;

/// Oldest protocol version this build still serves (see
/// [`PROTOCOL_VERSION`] for the dialect differences).
pub const MIN_PROTOCOL_VERSION: u16 = 1;

/// Upper bound on one frame's payload (tag + body), 64 MiB — roughly 80
/// `d = 100_000` vectors, so an observation relay fits for any cluster this
/// workspace benches. Small enough that a corrupt length prefix cannot
/// drive an allocation bomb; the sender enforces it too ([`write_frame`]),
/// so an oversized scenario fails with a structured error at the producer,
/// not as a confusing mid-run rejection at the consumer.
pub const MAX_FRAME_BYTES: usize = 1 << 26;

/// Canonical lowercase names of every frame kind, in tag order (shown by
/// `krum list`).
pub const FRAME_NAMES: &[&str] = &[
    "hello",
    "job-assign",
    "broadcast",
    "propose",
    "round-closed",
    "aggregate",
    "shutdown",
    "ping",
    "pong",
    "rejoin",
    "checkpoint",
    "broadcast-compressed",
    "propose-compressed",
    "round-feedback",
];

/// Errors raised while encoding, decoding or transporting frames.
#[derive(Debug, Error)]
pub enum WireError {
    /// The underlying transport failed.
    #[error("transport: {0}")]
    Io(#[from] std::io::Error),
    /// The peer closed the connection cleanly (EOF at a frame boundary).
    #[error("connection closed by peer")]
    Closed,
    /// A declared frame length exceeds [`MAX_FRAME_BYTES`].
    #[error("frame of {len} bytes exceeds the {max}-byte limit")]
    FrameTooLarge {
        /// Declared payload length.
        len: usize,
        /// The enforced limit ([`MAX_FRAME_BYTES`]).
        max: usize,
    },
    /// The payload checksum did not match the frame contents.
    #[error(
        "checksum mismatch: frame carries {carried:#010x}, payload hashes to {computed:#010x}"
    )]
    ChecksumMismatch {
        /// Checksum carried by the frame.
        carried: u32,
        /// Checksum computed over the received payload.
        computed: u32,
    },
    /// The frame tag byte does not name a known frame kind.
    #[error("unknown frame tag {0:#04x}")]
    UnknownTag(u8),
    /// The payload ended before the frame's fields were complete.
    #[error("truncated frame: needed {needed} more byte(s) at offset {offset}")]
    Truncated {
        /// How many further bytes the decoder needed.
        needed: usize,
        /// Payload offset at which the shortfall was found.
        offset: usize,
    },
    /// The payload had bytes left over after the frame's fields.
    #[error("malformed frame: {extra} trailing byte(s) after the last field")]
    TrailingBytes {
        /// Number of undecoded trailing bytes.
        extra: usize,
    },
    /// A string field was not valid UTF-8.
    #[error("string field is not valid UTF-8")]
    BadUtf8,
    /// An enum-coded byte field held a value outside its legal range.
    #[error("field `{field}` holds invalid discriminant {value}")]
    BadEnum {
        /// Name of the offending field.
        field: &'static str,
        /// The byte the payload carried.
        value: u8,
    },
    /// The peer speaks a different protocol version.
    #[error("protocol version mismatch: peer speaks v{got}, this build speaks v{expected}")]
    VersionMismatch {
        /// Version announced by the peer.
        got: u16,
        /// Version of this build ([`PROTOCOL_VERSION`]).
        expected: u16,
    },
}

/// CRC-32 (IEEE 802.3) lookup table, built at compile time.
const CRC_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
};

/// CRC-32 (IEEE) of `bytes` — the checksum carried by every frame.
pub fn checksum(bytes: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        c = CRC_TABLE[((c ^ u32::from(b)) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

/// One message of the aggregation protocol.
///
/// Directions (worker ⇄ server):
///
/// | Frame | Direction | Purpose |
/// |-------|-----------|---------|
/// | [`Hello`](Frame::Hello) | worker → server | announce protocol version |
/// | [`JobAssign`](Frame::JobAssign) | server → worker | job id, worker slot, seed and scenario |
/// | [`Broadcast`](Frame::Broadcast) | server → worker | round parameters `x_t` (plus the observation relay for the adversary) |
/// | [`Propose`](Frame::Propose) | worker → server | one gradient proposal |
/// | [`RoundClosed`](Frame::RoundClosed) | server → worker | the round's quorum closed |
/// | [`Aggregate`](Frame::Aggregate) | server → worker | final parameters of a finished job |
/// | [`Shutdown`](Frame::Shutdown) | server → worker | end of session, with a reason |
/// | [`Ping`](Frame::Ping) | server → worker | liveness probe for a silent worker |
/// | [`Pong`](Frame::Pong) | worker → server | liveness reply, echoing the nonce |
/// | [`Rejoin`](Frame::Rejoin) | worker → server | re-staff a crashed worker into its old slot |
/// | [`Checkpoint`](Frame::Checkpoint) | server → disk | serialized job snapshot (also the on-disk checkpoint format) |
/// | [`BroadcastC`](Frame::BroadcastC) | server → worker | v2 only: codec-compressed round parameters and observation relay |
/// | [`ProposeC`](Frame::ProposeC) | worker → server | v2 only: one codec-compressed gradient proposal |
/// | [`RoundFeedback`](Frame::RoundFeedback) | server → adversary | what a stateful attack observes after a round closes |
#[derive(Debug, Clone, PartialEq)]
pub enum Frame {
    /// Client handshake: protocol version and a free-form agent label.
    Hello {
        /// The client's [`PROTOCOL_VERSION`].
        version: u16,
        /// Free-form client label (shown in server logs).
        agent: String,
    },
    /// Server handshake reply: which job and worker slot the connection now
    /// serves, the job's master seed, and the full scenario as JSON (the
    /// worker derives its estimator or attack, and its RNG stream, from
    /// these).
    JobAssign {
        /// Job identifier, unique within the server.
        job: u64,
        /// Worker slot: `0..n-f` are honest workers, `n-f` is the
        /// adversary connection controlling all `f` Byzantine workers.
        worker: u32,
        /// The job's master seed (worker streams derive from it).
        seed: u64,
        /// The job's `ScenarioSpec` as JSON.
        spec_json: String,
    },
    /// The server publishes the round's parameter vector. For the adversary
    /// connection, `observed` relays the honest proposals of the round in
    /// worker order — the omniscient-adversary model of the paper, made
    /// explicit as bytes.
    Broadcast {
        /// Job identifier.
        job: u64,
        /// Round index `t`.
        round: u64,
        /// The parameter vector `x_t`.
        params: Vec<f64>,
        /// Observation relay for the adversary (empty for honest workers).
        observed: Vec<Vec<f64>>,
    },
    /// One proposal from one worker slot for one round.
    Propose {
        /// Job identifier.
        job: u64,
        /// Round the proposal answers.
        round: u64,
        /// Proposing worker slot (the adversary proposes for slots
        /// `n-f..n`).
        worker: u32,
        /// The proposed vector.
        proposal: Vec<f64>,
    },
    /// The round's quorum closed; stats for the worker's bookkeeping.
    RoundClosed {
        /// Job identifier.
        job: u64,
        /// The closed round.
        round: u64,
        /// How many proposals the closing quorum held.
        quorum: u32,
        /// Norm of the aggregated update.
        aggregate_norm: f64,
    },
    /// Final parameters of a completed job.
    Aggregate {
        /// Job identifier.
        job: u64,
        /// Number of rounds the job ran.
        round: u64,
        /// The final parameter vector `x_T`.
        params: Vec<f64>,
    },
    /// The server ends the session (job complete, job failed, or the
    /// connection was rejected).
    Shutdown {
        /// Job identifier (0 when no job was assigned).
        job: u64,
        /// Human-readable reason.
        reason: String,
    },
    /// Liveness probe: the server pings a worker that has gone silent
    /// mid-round. A live worker answers with a [`Frame::Pong`] echoing the
    /// nonce; a hung one stays silent and is eventually declared a crash
    /// fault.
    Ping {
        /// Job identifier.
        job: u64,
        /// Opaque nonce echoed by the matching `Pong`.
        nonce: u64,
    },
    /// Liveness reply to a [`Frame::Ping`].
    Pong {
        /// Job identifier.
        job: u64,
        /// The nonce of the `Ping` being answered.
        nonce: u64,
    },
    /// Reconnection handshake: sent *instead of* [`Frame::Hello`] as the
    /// first frame by a worker whose connection died mid-job. The server
    /// re-staffs the worker into its old slot (answering with the same
    /// [`Frame::JobAssign`] a fresh staffing would get) and the round
    /// machine resumes feeding it.
    Rejoin {
        /// The client's [`PROTOCOL_VERSION`].
        version: u16,
        /// The job the worker was serving.
        job: u64,
        /// The worker slot it held.
        worker: u32,
    },
    /// A serialized job snapshot: everything the server needs to continue
    /// the job bit-identically after a restart. Written (framed, with the
    /// CRC) as the on-disk checkpoint file by `krum serve
    /// --checkpoint-dir`, read back by `krum serve --resume`. Vectors
    /// travel as raw `f64` bit patterns (NaN-safe); bookkeeping that is
    /// plain finite data (spec, history) rides in `state_json`.
    Checkpoint {
        /// Job identifier.
        job: u64,
        /// Rounds completed when the snapshot was taken (the resumed job
        /// starts at this round).
        round: u64,
        /// The parameter vector `x_round`.
        params: Vec<f64>,
        /// The carry-over queue of in-flight stale proposals.
        pending: Vec<CarryOver>,
        /// Spec and history as JSON (see `krum-server`'s checkpoint
        /// module for the exact layout).
        state_json: String,
    },
    /// v2 only: the round's parameter vector and observation relay as
    /// codec-encoded payloads. Which codec applies is negotiated out of
    /// band — it travels in the scenario JSON of the job's
    /// [`Frame::JobAssign`] — so the frame itself carries opaque,
    /// length-validated blobs.
    BroadcastC {
        /// Job identifier.
        job: u64,
        /// Round index `t`.
        round: u64,
        /// Codec-encoded parameter vector `x_t`
        /// (`GradientCodec::encode_params`).
        params: Vec<u8>,
        /// Codec-encoded observation relay for the adversary connection
        /// (empty for honest workers); entries are encoded against the
        /// round's params as reference.
        observed: Vec<Vec<u8>>,
    },
    /// v2 only: one codec-compressed proposal, encoded against the
    /// round's broadcast parameters as reference.
    ProposeC {
        /// Job identifier.
        job: u64,
        /// Round the proposal answers.
        round: u64,
        /// Proposing worker slot.
        worker: u32,
        /// Codec-encoded proposal (`GradientCodec::encode` with the
        /// round's params as reference).
        proposal: Vec<u8>,
    },
    /// What a *stateful* adversary observes after a round closes: the
    /// accepted aggregate, the applied learning rate, the selection outcome
    /// and the quorum roster — the wire twin of the in-process
    /// `RoundFeedback` the engines feed to `Attack::observe`, sent only to
    /// the adversary connection and only when the job's attack is stateful.
    /// Keeping the relayed fields identical to the in-process struct is
    /// what preserves loopback-equals-in-process for adaptive attacks.
    ///
    /// No [`PROTOCOL_VERSION`] bump: a job whose attack is stateful cannot
    /// be parsed by an older build in the first place (the attack spec
    /// grammar rejects it at `JobAssign` time), so no v2 peer can ever
    /// receive this frame unexpectedly.
    RoundFeedback {
        /// Job identifier.
        job: u64,
        /// The round that just closed.
        round: u64,
        /// The aggregate `F(V_1, …, V_n)` the server accepted.
        aggregate: Vec<f64>,
        /// Learning rate `γ_t` applied this round.
        learning_rate: f64,
        /// Worker whose proposal a selection rule picked, with its
        /// Byzantine attribution (`None` for mixing rules).
        selected: Option<SelectedWorker>,
        /// Workers whose proposals formed the round's quorum, in
        /// aggregation order.
        quorum: Vec<u32>,
    },
}

/// Selection outcome inside a [`Frame::RoundFeedback`]: which worker a
/// selection rule picked and whether that worker was Byzantine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SelectedWorker {
    /// The selected worker slot.
    pub worker: u32,
    /// Whether the selected worker was Byzantine.
    pub byzantine: bool,
}

/// One carried-over proposal inside a [`Frame::Checkpoint`]: a straggler
/// that arrived in an earlier round and is still eligible for a future
/// quorum.
#[derive(Debug, Clone, PartialEq)]
pub struct CarryOver {
    /// Proposing worker slot.
    pub worker: u32,
    /// Round the proposal was issued for.
    pub issued_round: u64,
    /// The proposed vector.
    pub proposal: Vec<f64>,
}

impl Frame {
    /// The frame's tag byte (first payload byte on the wire).
    pub fn tag(&self) -> u8 {
        match self {
            Self::Hello { .. } => 1,
            Self::JobAssign { .. } => 2,
            Self::Broadcast { .. } => 3,
            Self::Propose { .. } => 4,
            Self::RoundClosed { .. } => 5,
            Self::Aggregate { .. } => 6,
            Self::Shutdown { .. } => 7,
            Self::Ping { .. } => 8,
            Self::Pong { .. } => 9,
            Self::Rejoin { .. } => 10,
            Self::Checkpoint { .. } => 11,
            Self::BroadcastC { .. } => 12,
            Self::ProposeC { .. } => 13,
            Self::RoundFeedback { .. } => 14,
        }
    }

    /// Canonical lowercase name of the frame kind.
    pub fn name(&self) -> &'static str {
        // Tags are 1-based and `FRAME_NAMES` is kept in tag order; the
        // fallback is unreachable but keeps this path panic-free.
        FRAME_NAMES
            .get(usize::from(self.tag()).wrapping_sub(1))
            .copied()
            .unwrap_or("unknown")
    }

    /// Encodes the payload (tag + body, without length prefix or checksum)
    /// into `out`.
    fn encode_payload(&self, out: &mut Vec<u8>) {
        out.push(self.tag());
        match self {
            Self::Hello { version, agent } => {
                put_u16(out, *version);
                put_str(out, agent);
            }
            Self::JobAssign {
                job,
                worker,
                seed,
                spec_json,
            } => {
                put_u64(out, *job);
                put_u32(out, *worker);
                put_u64(out, *seed);
                put_str(out, spec_json);
            }
            Self::Broadcast {
                job,
                round,
                params,
                observed,
            } => {
                put_u64(out, *job);
                put_u64(out, *round);
                put_vec(out, params);
                put_u32(out, observed.len() as u32);
                for vector in observed {
                    put_vec(out, vector);
                }
            }
            Self::Propose {
                job,
                round,
                worker,
                proposal,
            } => {
                put_u64(out, *job);
                put_u64(out, *round);
                put_u32(out, *worker);
                put_vec(out, proposal);
            }
            Self::RoundClosed {
                job,
                round,
                quorum,
                aggregate_norm,
            } => {
                put_u64(out, *job);
                put_u64(out, *round);
                put_u32(out, *quorum);
                put_f64(out, *aggregate_norm);
            }
            Self::Aggregate { job, round, params } => {
                put_u64(out, *job);
                put_u64(out, *round);
                put_vec(out, params);
            }
            Self::Shutdown { job, reason } => {
                put_u64(out, *job);
                put_str(out, reason);
            }
            Self::Ping { job, nonce } | Self::Pong { job, nonce } => {
                put_u64(out, *job);
                put_u64(out, *nonce);
            }
            Self::Rejoin {
                version,
                job,
                worker,
            } => {
                put_u16(out, *version);
                put_u64(out, *job);
                put_u32(out, *worker);
            }
            Self::Checkpoint {
                job,
                round,
                params,
                pending,
                state_json,
            } => {
                put_u64(out, *job);
                put_u64(out, *round);
                put_vec(out, params);
                put_u32(out, pending.len() as u32);
                for entry in pending {
                    put_u32(out, entry.worker);
                    put_u64(out, entry.issued_round);
                    put_vec(out, &entry.proposal);
                }
                put_str(out, state_json);
            }
            Self::BroadcastC {
                job,
                round,
                params,
                observed,
            } => {
                put_u64(out, *job);
                put_u64(out, *round);
                put_blob(out, params);
                put_u32(out, observed.len() as u32);
                for blob in observed {
                    put_blob(out, blob);
                }
            }
            Self::ProposeC {
                job,
                round,
                worker,
                proposal,
            } => {
                put_u64(out, *job);
                put_u64(out, *round);
                put_u32(out, *worker);
                put_blob(out, proposal);
            }
            Self::RoundFeedback {
                job,
                round,
                aggregate,
                learning_rate,
                selected,
                quorum,
            } => {
                put_u64(out, *job);
                put_u64(out, *round);
                put_vec(out, aggregate);
                put_f64(out, *learning_rate);
                // Selection as one discriminant byte: 0 = none, 1 = honest
                // worker selected, 2 = Byzantine worker selected; the
                // worker slot follows only when a selection exists.
                match selected {
                    None => out.push(0),
                    Some(s) => {
                        out.push(if s.byzantine { 2 } else { 1 });
                        put_u32(out, s.worker);
                    }
                }
                put_u32(out, quorum.len() as u32);
                for &worker in quorum {
                    put_u32(out, worker);
                }
            }
        }
    }

    /// Encodes the full frame (length prefix, payload, checksum) and returns
    /// the bytes.
    pub fn encode(&self) -> Vec<u8> {
        let mut payload = Vec::with_capacity(64);
        self.encode_payload(&mut payload);
        let mut out = Vec::with_capacity(payload.len() + 8);
        put_u32(&mut out, payload.len() as u32);
        out.extend_from_slice(&payload);
        put_u32(&mut out, checksum(&payload));
        out
    }

    /// Total bytes this frame occupies on the wire.
    pub fn encoded_len(&self) -> usize {
        // length prefix + payload + checksum; payload size is cheap to
        // recompute structurally, but encoding is simpler and exact.
        self.encode().len()
    }

    /// Decodes one payload (tag + body, as framed between the length prefix
    /// and the checksum).
    ///
    /// # Errors
    ///
    /// Returns a structured [`WireError`] for every malformed input; never
    /// panics.
    pub fn decode(payload: &[u8]) -> Result<Self, WireError> {
        let mut r = Reader::new(payload);
        let tag = r.u8()?;
        let frame = match tag {
            1 => Self::Hello {
                version: r.u16()?,
                agent: r.string()?,
            },
            2 => Self::JobAssign {
                job: r.u64()?,
                worker: r.u32()?,
                seed: r.u64()?,
                spec_json: r.string()?,
            },
            3 => {
                let job = r.u64()?;
                let round = r.u64()?;
                let params = r.vec_f64()?;
                let count = r.u32()? as usize;
                let mut observed = Vec::new();
                for _ in 0..count {
                    // Reserve only what the remaining bytes can justify —
                    // the count itself is attacker-controlled.
                    observed.push(r.vec_f64()?);
                }
                Self::Broadcast {
                    job,
                    round,
                    params,
                    observed,
                }
            }
            4 => Self::Propose {
                job: r.u64()?,
                round: r.u64()?,
                worker: r.u32()?,
                proposal: r.vec_f64()?,
            },
            5 => Self::RoundClosed {
                job: r.u64()?,
                round: r.u64()?,
                quorum: r.u32()?,
                aggregate_norm: r.f64()?,
            },
            6 => Self::Aggregate {
                job: r.u64()?,
                round: r.u64()?,
                params: r.vec_f64()?,
            },
            7 => Self::Shutdown {
                job: r.u64()?,
                reason: r.string()?,
            },
            8 => Self::Ping {
                job: r.u64()?,
                nonce: r.u64()?,
            },
            9 => Self::Pong {
                job: r.u64()?,
                nonce: r.u64()?,
            },
            10 => Self::Rejoin {
                version: r.u16()?,
                job: r.u64()?,
                worker: r.u32()?,
            },
            11 => {
                let job = r.u64()?;
                let round = r.u64()?;
                let params = r.vec_f64()?;
                let count = r.u32()? as usize;
                // Each entry needs at least its fixed-width fields; an
                // attacker-controlled count cannot force an allocation the
                // remaining bytes cannot justify.
                let available = (r.remaining()) / (4 + 8 + 4);
                if count > available {
                    return Err(WireError::Truncated {
                        needed: (count - available).saturating_mul(16),
                        offset: r.position(),
                    });
                }
                let mut pending = Vec::with_capacity(count);
                for _ in 0..count {
                    pending.push(CarryOver {
                        worker: r.u32()?,
                        issued_round: r.u64()?,
                        proposal: r.vec_f64()?,
                    });
                }
                Self::Checkpoint {
                    job,
                    round,
                    params,
                    pending,
                    state_json: r.string()?,
                }
            }
            12 => {
                let job = r.u64()?;
                let round = r.u64()?;
                let params = r.blob()?;
                let count = r.u32()? as usize;
                let mut observed = Vec::new();
                for _ in 0..count {
                    // Each blob validates its own length against the
                    // remaining bytes; the count never drives an
                    // allocation on its own.
                    observed.push(r.blob()?);
                }
                Self::BroadcastC {
                    job,
                    round,
                    params,
                    observed,
                }
            }
            13 => Self::ProposeC {
                job: r.u64()?,
                round: r.u64()?,
                worker: r.u32()?,
                proposal: r.blob()?,
            },
            14 => {
                let job = r.u64()?;
                let round = r.u64()?;
                let aggregate = r.vec_f64()?;
                let learning_rate = r.f64()?;
                let selected = match r.u8()? {
                    0 => None,
                    tag @ (1 | 2) => Some(SelectedWorker {
                        worker: r.u32()?,
                        byzantine: tag == 2,
                    }),
                    value => {
                        return Err(WireError::BadEnum {
                            field: "selected",
                            value,
                        })
                    }
                };
                let count = r.u32()? as usize;
                // The count is attacker-controlled: each entry is 4 bytes,
                // so the remaining payload bounds the allocation.
                let available = r.remaining() / 4;
                if count > available {
                    return Err(WireError::Truncated {
                        needed: (count - available).saturating_mul(4),
                        offset: r.position(),
                    });
                }
                let mut quorum = Vec::with_capacity(count);
                for _ in 0..count {
                    quorum.push(r.u32()?);
                }
                Self::RoundFeedback {
                    job,
                    round,
                    aggregate,
                    learning_rate,
                    selected,
                    quorum,
                }
            }
            other => return Err(WireError::UnknownTag(other)),
        };
        r.finish()?;
        Ok(frame)
    }
}

/// Writes one frame to the transport, returning the bytes written.
///
/// # Errors
///
/// Returns [`WireError::FrameTooLarge`] when the frame's payload exceeds
/// [`MAX_FRAME_BYTES`] (nothing is written — the peer would only reject
/// it), or [`WireError::Io`] when the transport fails.
pub fn write_frame(w: &mut impl Write, frame: &Frame) -> Result<usize, WireError> {
    let bytes = frame.encode();
    let payload_len = bytes.len() - 8;
    if payload_len > MAX_FRAME_BYTES {
        return Err(WireError::FrameTooLarge {
            len: payload_len,
            max: MAX_FRAME_BYTES,
        });
    }
    w.write_all(&bytes)?;
    w.flush()?;
    Ok(bytes.len())
}

/// Reads one frame from the transport, returning it with the bytes
/// consumed. An EOF at a frame boundary is [`WireError::Closed`] (the peer
/// hung up cleanly); an EOF mid-frame is an I/O error.
///
/// # Errors
///
/// Returns a structured [`WireError`] for transport failures, oversized
/// frames, checksum mismatches and malformed payloads; never panics.
pub fn read_frame(r: &mut impl Read) -> Result<(Frame, usize), WireError> {
    let mut len_buf = [0u8; 4];
    // Distinguish "peer closed between frames" from "frame cut short".
    // The unfilled tail is tracked as a shrinking slice so no index
    // arithmetic can go out of range.
    let mut rest: &mut [u8] = &mut len_buf;
    while !rest.is_empty() {
        let n = r.read(rest)?;
        if n == 0 {
            let missing = rest.len();
            if missing == len_buf.len() {
                return Err(WireError::Closed);
            }
            return Err(WireError::Truncated {
                needed: missing,
                offset: len_buf.len() - missing,
            });
        }
        // `read` returns `n <= rest.len()`; a broken implementation that
        // lies lands on the empty tail and simply ends the loop.
        rest = std::mem::take(&mut rest).get_mut(n..).unwrap_or(&mut []);
    }
    let len = u32::from_le_bytes(len_buf) as usize;
    if len == 0 {
        return Err(WireError::Truncated {
            needed: 1,
            offset: 4,
        });
    }
    if len > MAX_FRAME_BYTES {
        return Err(WireError::FrameTooLarge {
            len,
            max: MAX_FRAME_BYTES,
        });
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    let mut crc_buf = [0u8; 4];
    r.read_exact(&mut crc_buf)?;
    let carried = u32::from_le_bytes(crc_buf);
    let computed = checksum(&payload);
    if carried != computed {
        return Err(WireError::ChecksumMismatch { carried, computed });
    }
    let frame = Frame::decode(&payload)?;
    Ok((frame, 8 + len))
}

fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_f64(out: &mut Vec<u8>, v: f64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

fn put_blob(out: &mut Vec<u8>, bytes: &[u8]) {
    put_u32(out, bytes.len() as u32);
    out.extend_from_slice(bytes);
}

fn put_vec(out: &mut Vec<u8>, v: &[f64]) {
    put_u32(out, v.len() as u32);
    for &x in v {
        put_f64(out, x);
    }
}

/// Bounds-checked little-endian payload reader.
struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        // `get` carries the bounds proof: no indexing, no arithmetic that
        // could overflow on attacker-controlled lengths.
        match self.buf.get(self.pos..self.pos.saturating_add(n)) {
            Some(slice) => {
                self.pos += n;
                Ok(slice)
            }
            None => Err(WireError::Truncated {
                needed: n - self.remaining(),
                offset: self.pos,
            }),
        }
    }

    /// Reads exactly `N` bytes into a fixed array. The zip copy cannot
    /// miss: `take` has already proven the slice holds `N` bytes, and the
    /// conversion has no panic-capable step (`PANIC001` keeps it that way).
    fn take_array<const N: usize>(&mut self) -> Result<[u8; N], WireError> {
        let slice = self.take(N)?;
        let mut out = [0u8; N];
        for (dst, src) in out.iter_mut().zip(slice) {
            *dst = *src;
        }
        Ok(out)
    }

    fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn position(&self) -> usize {
        self.pos
    }

    fn u8(&mut self) -> Result<u8, WireError> {
        let [b] = self.take_array()?;
        Ok(b)
    }

    fn u16(&mut self) -> Result<u16, WireError> {
        Ok(u16::from_le_bytes(self.take_array()?))
    }

    fn u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(self.take_array()?))
    }

    fn u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(self.take_array()?))
    }

    fn f64(&mut self) -> Result<f64, WireError> {
        Ok(f64::from_le_bytes(self.take_array()?))
    }

    fn string(&mut self) -> Result<String, WireError> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| WireError::BadUtf8)
    }

    /// A length-prefixed opaque byte blob: the declared length is
    /// validated against the remaining payload (by `take`) before any
    /// allocation happens.
    fn blob(&mut self) -> Result<Vec<u8>, WireError> {
        let len = self.u32()? as usize;
        Ok(self.take(len)?.to_vec())
    }

    fn vec_f64(&mut self) -> Result<Vec<f64>, WireError> {
        let count = self.u32()? as usize;
        // The count is attacker-controlled: verify the bytes exist before
        // allocating for them, without `count * 8` (which could wrap on a
        // 32-bit target and break the never-panic contract).
        let available = (self.buf.len() - self.pos) / 8;
        if count > available {
            return Err(WireError::Truncated {
                needed: (count - available).saturating_mul(8),
                offset: self.pos,
            });
        }
        let bytes = self.take(count * 8)?;
        let mut out = Vec::with_capacity(count);
        for chunk in bytes.chunks_exact(8) {
            // `chunks_exact(8)` only yields full chunks; the zip copy is
            // the panic-free spelling of `try_into().expect(..)`.
            let mut le = [0u8; 8];
            for (dst, src) in le.iter_mut().zip(chunk) {
                *dst = *src;
            }
            out.push(f64::from_le_bytes(le));
        }
        Ok(out)
    }

    fn finish(&self) -> Result<(), WireError> {
        if self.pos != self.buf.len() {
            return Err(WireError::TrailingBytes {
                extra: self.buf.len() - self.pos,
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frames() -> Vec<Frame> {
        vec![
            Frame::Hello {
                version: PROTOCOL_VERSION,
                agent: "unit-test".into(),
            },
            Frame::JobAssign {
                job: 3,
                worker: 7,
                seed: 42,
                spec_json: "{\"name\":\"x\"}".into(),
            },
            Frame::Broadcast {
                job: 3,
                round: 9,
                params: vec![1.5, -2.25, f64::MIN_POSITIVE],
                observed: vec![vec![0.0, -0.0], vec![f64::INFINITY]],
            },
            Frame::Propose {
                job: 3,
                round: 9,
                worker: 2,
                proposal: vec![f64::NAN, 1.0],
            },
            Frame::RoundClosed {
                job: 3,
                round: 9,
                quorum: 7,
                aggregate_norm: 0.125,
            },
            Frame::Aggregate {
                job: 3,
                round: 20,
                params: vec![],
            },
            Frame::Shutdown {
                job: 0,
                reason: "complete".into(),
            },
            Frame::Ping { job: 3, nonce: 17 },
            Frame::Pong {
                job: 3,
                nonce: u64::MAX,
            },
            Frame::Rejoin {
                version: PROTOCOL_VERSION,
                job: 3,
                worker: 4,
            },
            Frame::Checkpoint {
                job: 3,
                round: 12,
                params: vec![1.0, f64::NAN, -0.0],
                pending: vec![
                    CarryOver {
                        worker: 2,
                        issued_round: 11,
                        proposal: vec![f64::NEG_INFINITY, 4.5],
                    },
                    CarryOver {
                        worker: 6,
                        issued_round: 12,
                        proposal: vec![],
                    },
                ],
                state_json: "{\"spec\":{},\"history\":{}}".into(),
            },
            Frame::BroadcastC {
                job: 3,
                round: 9,
                params: vec![0x01, 0x02, 0xFF, 0x00],
                observed: vec![vec![0xAA; 7], vec![], vec![0x55]],
            },
            Frame::ProposeC {
                job: 3,
                round: 9,
                worker: 2,
                proposal: vec![0xDE, 0xAD, 0xBE, 0xEF],
            },
            Frame::RoundFeedback {
                job: 3,
                round: 9,
                aggregate: vec![0.25, -1.5, f64::NAN],
                learning_rate: 0.05,
                selected: Some(SelectedWorker {
                    worker: 7,
                    byzantine: true,
                }),
                quorum: vec![0, 1, 2, 7],
            },
            Frame::RoundFeedback {
                job: 3,
                round: 10,
                aggregate: vec![],
                learning_rate: 0.05,
                selected: None,
                quorum: vec![],
            },
        ]
    }

    /// NaN-tolerant structural equality (the codec must carry NaN payloads
    /// bit-exactly; `PartialEq` on `f64` would reject them).
    fn bits_equal(a: &Frame, b: &Frame) -> bool {
        let (ea, eb) = (a.encode(), b.encode());
        ea == eb
    }

    #[test]
    fn every_frame_round_trips_through_a_byte_stream() {
        for frame in frames() {
            let encoded = frame.encode();
            assert_eq!(encoded.len(), frame.encoded_len());
            let mut cursor = std::io::Cursor::new(encoded.clone());
            let (back, consumed) = read_frame(&mut cursor).unwrap();
            assert_eq!(consumed, encoded.len());
            assert!(
                bits_equal(&frame, &back),
                "{} did not round-trip bit-exactly",
                frame.name()
            );
        }
    }

    #[test]
    fn frames_stream_back_to_back() {
        let all = frames();
        let mut stream = Vec::new();
        for frame in &all {
            write_frame(&mut stream, frame).unwrap();
        }
        let mut cursor = std::io::Cursor::new(stream);
        for frame in &all {
            let (back, _) = read_frame(&mut cursor).unwrap();
            assert!(bits_equal(frame, &back));
        }
        assert!(matches!(read_frame(&mut cursor), Err(WireError::Closed)));
    }

    #[test]
    fn corrupted_bytes_fail_the_checksum() {
        let frame = Frame::Propose {
            job: 1,
            round: 2,
            worker: 3,
            proposal: vec![1.0, 2.0, 3.0],
        };
        let mut bytes = frame.encode();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        let mut cursor = std::io::Cursor::new(bytes);
        assert!(matches!(
            read_frame(&mut cursor),
            Err(WireError::ChecksumMismatch { .. })
        ));
    }

    #[test]
    fn oversized_length_prefix_is_rejected_before_allocation() {
        let mut bytes = Vec::new();
        put_u32(&mut bytes, (MAX_FRAME_BYTES + 1) as u32);
        bytes.extend_from_slice(&[0; 16]);
        let mut cursor = std::io::Cursor::new(bytes);
        assert!(matches!(
            read_frame(&mut cursor),
            Err(WireError::FrameTooLarge { .. })
        ));
    }

    #[test]
    fn truncated_streams_are_structured_errors() {
        let frame = Frame::Aggregate {
            job: 1,
            round: 5,
            params: vec![1.0; 16],
        };
        let bytes = frame.encode();
        // Cut at every prefix length: never a panic, always an error.
        for cut in 0..bytes.len() - 1 {
            let mut cursor = std::io::Cursor::new(bytes[..cut].to_vec());
            let result = read_frame(&mut cursor);
            if cut == 0 {
                assert!(matches!(result, Err(WireError::Closed)));
            } else {
                assert!(result.is_err(), "prefix of {cut} bytes must not decode");
            }
        }
    }

    #[test]
    fn unknown_tags_and_trailing_bytes_are_rejected() {
        assert!(matches!(
            Frame::decode(&[99]),
            Err(WireError::UnknownTag(99))
        ));
        let mut payload = Vec::new();
        payload.push(7u8); // Shutdown
        put_u64(&mut payload, 0);
        put_str(&mut payload, "bye");
        payload.push(0xAB);
        assert!(matches!(
            Frame::decode(&payload),
            Err(WireError::TrailingBytes { extra: 1 })
        ));
        // Invalid UTF-8 in a string field.
        let mut payload = Vec::new();
        payload.push(7u8);
        put_u64(&mut payload, 0);
        put_u32(&mut payload, 2);
        payload.extend_from_slice(&[0xFF, 0xFE]);
        assert!(matches!(Frame::decode(&payload), Err(WireError::BadUtf8)));
    }

    /// The producer refuses oversized frames instead of shipping bytes the
    /// consumer would reject.
    #[test]
    fn write_frame_rejects_oversized_payloads() {
        let frame = Frame::Propose {
            job: 1,
            round: 0,
            worker: 0,
            proposal: vec![0.0; MAX_FRAME_BYTES / 8 + 1],
        };
        let mut sink = Vec::new();
        assert!(matches!(
            write_frame(&mut sink, &frame),
            Err(WireError::FrameTooLarge { .. })
        ));
        assert!(sink.is_empty(), "nothing may reach the wire");
    }

    #[test]
    fn checksum_matches_known_vectors() {
        // CRC-32 (IEEE) of "123456789" is the classic check value.
        assert_eq!(checksum(b"123456789"), 0xCBF4_3926);
        assert_eq!(checksum(b""), 0);
    }

    #[test]
    fn names_cover_every_tag() {
        for frame in frames() {
            assert_eq!(FRAME_NAMES[(frame.tag() - 1) as usize], frame.name());
        }
        assert_eq!(FRAME_NAMES.len(), 14);
    }

    /// A feedback frame with an out-of-range selection discriminant or a
    /// lying quorum count is a structured error, never a panic or an
    /// unbounded allocation.
    #[test]
    fn round_feedback_rejects_bad_discriminants_and_lying_counts() {
        let mut payload = Vec::new();
        payload.push(14u8); // RoundFeedback
        put_u64(&mut payload, 1); // job
        put_u64(&mut payload, 2); // round
        put_vec(&mut payload, &[1.0]); // aggregate
        put_f64(&mut payload, 0.1); // learning rate
        payload.push(3); // selection discriminant: a lie
        assert!(matches!(
            Frame::decode(&payload),
            Err(WireError::BadEnum {
                field: "selected",
                value: 3
            })
        ));
        let mut payload = Vec::new();
        payload.push(14u8);
        put_u64(&mut payload, 1);
        put_u64(&mut payload, 2);
        put_vec(&mut payload, &[1.0]);
        put_f64(&mut payload, 0.1);
        payload.push(0); // no selection
        put_u32(&mut payload, u32::MAX); // quorum count: a lie
        assert!(matches!(
            Frame::decode(&payload),
            Err(WireError::Truncated { .. })
        ));
    }

    /// A compressed broadcast whose blob length lies about the remaining
    /// bytes is a structured truncation, never an allocation.
    #[test]
    fn compressed_frames_with_lying_blob_lengths_are_truncation() {
        let mut payload = Vec::new();
        payload.push(12u8); // BroadcastC
        put_u64(&mut payload, 1); // job
        put_u64(&mut payload, 2); // round
        put_u32(&mut payload, u32::MAX); // params blob length: a lie
        assert!(matches!(
            Frame::decode(&payload),
            Err(WireError::Truncated { .. })
        ));
        let mut payload = Vec::new();
        payload.push(13u8); // ProposeC
        put_u64(&mut payload, 1);
        put_u64(&mut payload, 2);
        put_u32(&mut payload, 0); // worker
        put_u32(&mut payload, 1 << 30); // proposal blob length: a lie
        assert!(matches!(
            Frame::decode(&payload),
            Err(WireError::Truncated { .. })
        ));
    }

    /// A checkpoint whose pending count promises more entries than the
    /// payload holds is rejected before any allocation.
    #[test]
    fn checkpoint_with_lying_pending_count_is_truncation_not_allocation() {
        let mut payload = Vec::new();
        payload.push(11u8); // Checkpoint
        put_u64(&mut payload, 1); // job
        put_u64(&mut payload, 2); // round
        put_vec(&mut payload, &[1.0]); // params
        put_u32(&mut payload, u32::MAX); // pending count: a lie
        assert!(matches!(
            Frame::decode(&payload),
            Err(WireError::Truncated { .. })
        ));
    }
}
