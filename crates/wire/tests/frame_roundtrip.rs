//! Property tests for the wire codec: every frame kind round-trips
//! bit-exactly through the byte stream, and every corrupted or truncated
//! input comes back as a structured [`WireError`] — never a panic.

use krum_wire::{
    read_frame, write_frame, CarryOver, Frame, SelectedWorker, WireError, MAX_FRAME_BYTES,
    PROTOCOL_VERSION,
};
use proptest::prelude::*;

/// Deterministic f64 payload covering the ugly corners of the value space:
/// specials (NaN, ±∞, ±0, subnormal) interleaved with ordinary magnitudes.
fn payload(len: usize, salt: u64) -> Vec<f64> {
    (0..len)
        .map(|i| match (i as u64).wrapping_add(salt) % 9 {
            0 => f64::NAN,
            1 => f64::INFINITY,
            2 => f64::NEG_INFINITY,
            3 => -0.0,
            4 => f64::MIN_POSITIVE / 2.0, // subnormal
            5 => f64::MAX,
            6 => -1.0e-300,
            7 => (i as f64) * 1.25e6,
            _ => -(i as f64) / 3.0,
        })
        .collect()
}

/// Deterministic string with embedded separators and multi-byte UTF-8.
fn label(salt: u64, len: usize) -> String {
    let alphabet = ["a", ",", "\n", "é", "{", "\"", "0", "→"];
    (0..len)
        .map(|i| alphabet[((i as u64).wrapping_mul(7).wrapping_add(salt) % 8) as usize])
        .collect()
}

/// Deterministic opaque blob for the v2 compressed frames: arbitrary
/// bytes, since the wire treats codec output as length-validated opaque
/// payload.
fn blob(len: usize, salt: u64) -> Vec<u8> {
    (0..len)
        .map(|i| (i as u64).wrapping_mul(0x9E37_79B9).wrapping_add(salt) as u8)
        .collect()
}

/// One frame of each kind, sized and salted by the inputs — covers every
/// variant across the proptest cases.
fn frame(kind: usize, len: usize, salt: u64) -> Frame {
    match kind % 14 {
        0 => Frame::Hello {
            version: (salt % u64::from(u16::MAX)) as u16,
            agent: label(salt, len % 32),
        },
        1 => Frame::JobAssign {
            job: salt,
            worker: (salt % 1000) as u32,
            seed: salt.wrapping_mul(31),
            spec_json: label(salt, len % 256),
        },
        2 => Frame::Broadcast {
            job: salt,
            round: salt % 10_000,
            params: payload(len, salt),
            observed: (0..(salt % 5) as usize)
                .map(|i| payload(len % 97, salt.wrapping_add(i as u64)))
                .collect(),
        },
        3 => Frame::Propose {
            job: salt,
            round: salt % 10_000,
            worker: (salt % 64) as u32,
            proposal: payload(len, salt),
        },
        4 => Frame::RoundClosed {
            job: salt,
            round: salt % 10_000,
            quorum: (salt % 64) as u32,
            aggregate_norm: f64::from_bits(salt.wrapping_mul(0x9E37_79B9_7F4A_7C15)),
        },
        5 => Frame::Aggregate {
            job: salt,
            round: salt % 10_000,
            params: payload(len, salt),
        },
        6 => Frame::Shutdown {
            job: salt,
            reason: label(salt, len % 64),
        },
        7 => Frame::Ping {
            job: salt,
            nonce: salt.wrapping_mul(0x9E37_79B9_7F4A_7C15),
        },
        8 => Frame::Pong {
            job: salt,
            nonce: salt.rotate_left(17),
        },
        9 => Frame::Rejoin {
            version: (salt % u64::from(u16::MAX)) as u16,
            job: salt,
            worker: (salt % 1000) as u32,
        },
        11 => Frame::BroadcastC {
            job: salt,
            round: salt % 10_000,
            params: blob(len, salt),
            observed: (0..(salt % 5) as usize)
                .map(|i| blob(len % 97, salt.wrapping_add(i as u64)))
                .collect(),
        },
        12 => Frame::ProposeC {
            job: salt,
            round: salt % 10_000,
            worker: (salt % 64) as u32,
            proposal: blob(len, salt),
        },
        13 => Frame::RoundFeedback {
            job: salt,
            round: salt % 10_000,
            aggregate: payload(len, salt),
            learning_rate: f64::from_bits(salt),
            selected: match salt % 3 {
                0 => None,
                s => Some(SelectedWorker {
                    worker: (salt % 64) as u32,
                    byzantine: s == 2,
                }),
            },
            quorum: (0..(salt % 9)).map(|w| w as u32).collect(),
        },
        _ => Frame::Checkpoint {
            job: salt,
            round: salt % 10_000,
            params: payload(len, salt),
            pending: (0..(salt % 4) as usize)
                .map(|i| CarryOver {
                    worker: (salt.wrapping_add(i as u64) % 64) as u32,
                    issued_round: salt % 10_000,
                    proposal: payload(len % 61, salt.wrapping_add(i as u64)),
                })
                .collect(),
            state_json: label(salt, len % 128),
        },
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Arbitrary payloads of every frame kind round-trip bit-exactly
    /// (encoded-bytes equality tolerates NaN, which `PartialEq` would not).
    #[test]
    fn frames_round_trip_bit_exactly(kind in 0usize..14, len in 0usize..2048, salt in 0u64..u64::MAX) {
        let original = frame(kind, len, salt);
        let bytes = original.encode();
        prop_assert!(bytes.len() <= MAX_FRAME_BYTES + 8);
        let mut cursor = std::io::Cursor::new(bytes.clone());
        let (back, consumed) = read_frame(&mut cursor).unwrap_or_else(|e| {
            panic!("{} of {len} coords failed to round-trip: {e}", original.name())
        });
        prop_assert_eq!(consumed, bytes.len());
        prop_assert_eq!(back.encode(), bytes);
    }

    /// Any single flipped byte is a structured error, never a panic and
    /// never a silently different frame.
    #[test]
    fn corrupt_frames_are_structured_errors(kind in 0usize..14, len in 0usize..256, salt in 0u64..u64::MAX, flip in 0usize..10_000) {
        let original = frame(kind, len, salt);
        let mut bytes = original.encode();
        let at = flip % bytes.len();
        bytes[at] ^= 1 << (flip % 8);
        let mut cursor = std::io::Cursor::new(bytes);
        prop_assert!(read_frame(&mut cursor).is_err());
    }

    /// Every strict prefix of a frame is a structured error, never a panic.
    #[test]
    fn truncated_frames_are_structured_errors(kind in 0usize..14, len in 0usize..256, salt in 0u64..u64::MAX, cut in 0usize..10_000) {
        let original = frame(kind, len, salt);
        let bytes = original.encode();
        let at = cut % bytes.len();
        let mut cursor = std::io::Cursor::new(bytes[..at].to_vec());
        let result = read_frame(&mut cursor);
        match result {
            Err(WireError::Closed) => prop_assert_eq!(at, 0),
            Err(_) => {}
            Ok(_) => panic!("a strict prefix of {} decoded", original.name()),
        }
    }
}

/// A payload near the megabyte scale (a d = 100_000 proposal) stays well
/// under the frame limit and round-trips; a declared length over the limit
/// is rejected before any allocation.
#[test]
fn large_proposals_fit_and_oversize_lengths_are_rejected() {
    let big = Frame::Propose {
        job: 1,
        round: 1,
        worker: 0,
        proposal: payload(100_000, 3),
    };
    let bytes = big.encode();
    assert!(bytes.len() < MAX_FRAME_BYTES);
    let mut cursor = std::io::Cursor::new(bytes.clone());
    let (back, _) = read_frame(&mut cursor).unwrap();
    assert_eq!(back.encode(), bytes);

    let mut oversize = Vec::new();
    oversize.extend_from_slice(&((MAX_FRAME_BYTES as u32) + 1).to_le_bytes());
    oversize.extend_from_slice(&[0u8; 64]);
    let mut cursor = std::io::Cursor::new(oversize);
    assert!(matches!(
        read_frame(&mut cursor),
        Err(WireError::FrameTooLarge { .. })
    ));
}

/// Satellite: `MAX_FRAME_BYTES` is enforced for checkpoint payloads on
/// both ends — the sender refuses to write an oversized `Checkpoint`
/// (nothing reaches the sink), and the receiver rejects an oversized
/// declared length before allocating (the same guard a checkpoint *file*
/// goes through, since checkpoints are stored framed).
#[test]
fn checkpoint_frame_limit_is_enforced_on_sender_and_receiver() {
    let oversized = Frame::Checkpoint {
        job: 0,
        round: 0,
        params: vec![0.0; MAX_FRAME_BYTES / 8 + 1],
        pending: Vec::new(),
        state_json: String::new(),
    };
    let mut sink = Vec::new();
    assert!(matches!(
        write_frame(&mut sink, &oversized),
        Err(WireError::FrameTooLarge { .. })
    ));
    assert!(sink.is_empty(), "nothing may reach the wire or the disk");

    // Receiver side: a checkpoint-tagged stream whose length prefix lies
    // over the limit is rejected before allocation.
    let mut bytes = Vec::new();
    bytes.extend_from_slice(&((MAX_FRAME_BYTES as u32) + 1).to_le_bytes());
    bytes.push(11); // Checkpoint tag
    bytes.extend_from_slice(&[0u8; 32]);
    assert!(matches!(
        read_frame(&mut std::io::Cursor::new(bytes)),
        Err(WireError::FrameTooLarge { .. })
    ));

    // A realistically sized checkpoint (d = 100_000 params plus carried
    // proposals) round-trips bit-exactly.
    let realistic = Frame::Checkpoint {
        job: 2,
        round: 40,
        params: payload(100_000, 11),
        pending: vec![CarryOver {
            worker: 3,
            issued_round: 39,
            proposal: payload(100_000, 12),
        }],
        state_json: label(13, 512),
    };
    let bytes = realistic.encode();
    assert!(bytes.len() < MAX_FRAME_BYTES);
    let (back, _) = read_frame(&mut std::io::Cursor::new(bytes.clone())).unwrap();
    assert_eq!(back.encode(), bytes);
}

/// v2 satellite: real codec output — not just arbitrary blobs — crosses
/// the wire intact for every codec the spec grammar can name. The frame
/// carries the encoded bytes bit-exactly, and decoding on the far side
/// reproduces exactly what the codec's canonical transform produces.
#[test]
fn codec_payloads_round_trip_through_v2_frames_for_every_codec() {
    use krum_compress::CompressionSpec;

    let dim = 33;
    let proposal: Vec<f64> = (0..dim).map(|i| (i as f64 - 16.0) * 0.37).collect();
    let reference: Vec<f64> = (0..dim).map(|i| (i as f64) * 0.11 - 1.0).collect();
    let specs = [
        CompressionSpec::Bfp { block: 8, bits: 11 },
        CompressionSpec::TopK { k: 5 },
        CompressionSpec::DeltaBfp { block: 8, bits: 11 },
        CompressionSpec::DeltaTopK { k: 5 },
    ];
    for spec in specs {
        let codec = spec.build();
        let encoded = codec.encode(&proposal, &reference);
        let frame = Frame::ProposeC {
            job: 9,
            round: 4,
            worker: 2,
            proposal: encoded.clone(),
        };
        let bytes = frame.encode();
        let (back, _) = read_frame(&mut std::io::Cursor::new(bytes)).unwrap();
        let Frame::ProposeC {
            proposal: wired, ..
        } = back
        else {
            panic!("{spec}: expected ProposeC back");
        };
        assert_eq!(wired, encoded, "{spec}: payload must cross bit-exactly");

        let decoded = codec.decode(&wired, &reference, dim).unwrap();
        let mut transformed = proposal.clone();
        codec.transform(&mut transformed, &reference);
        assert_eq!(
            decoded, transformed,
            "{spec}: far-side decode must equal the canonical transform"
        );

        // Params path (BroadcastC): encode_params/decode_params agree too.
        let frame = Frame::BroadcastC {
            job: 9,
            round: 4,
            params: codec.encode_params(&reference),
            observed: vec![encoded],
        };
        let bytes = frame.encode();
        let (back, _) = read_frame(&mut std::io::Cursor::new(bytes)).unwrap();
        let Frame::BroadcastC {
            params, observed, ..
        } = back
        else {
            panic!("{spec}: expected BroadcastC back");
        };
        let params = codec.decode_params(&params, dim).unwrap();
        let mut expected = reference.clone();
        codec.transform_params(&mut expected);
        assert_eq!(params, expected, "{spec}: params must survive the wire");
        assert_eq!(observed.len(), 1);
    }
}

/// v2 satellite: a compressed frame whose blob the codec cannot decode is
/// a structured codec error on the consumer side — the *wire* layer
/// accepts any length-valid blob (payloads are opaque), and the codec
/// layer rejects garbage without panicking or reading out of bounds.
#[test]
fn garbage_codec_blobs_fail_closed_without_panicking() {
    use krum_compress::CompressionSpec;

    let dim = 33;
    let reference = vec![0.5; dim];
    for spec in [
        CompressionSpec::Bfp { block: 8, bits: 11 },
        CompressionSpec::TopK { k: 5 },
        CompressionSpec::DeltaBfp { block: 8, bits: 11 },
        CompressionSpec::DeltaTopK { k: 5 },
    ] {
        let codec = spec.build();
        for garbage in [vec![], vec![0xFFu8; 3], blob(257, 99)] {
            // Truncated, empty, and oversized blobs must all be Err —
            // reaching here at all proves no panic and no OOB read.
            let _ = codec.decode(&garbage, &reference, dim);
            let _ = codec.decode_params(&garbage, dim);
        }
    }
}

/// The handshake pins the protocol version: a well-formed `Hello` carries
/// it, and the version constant is what `krum list` reports.
#[test]
fn hello_carries_the_protocol_version() {
    let hello = Frame::Hello {
        version: PROTOCOL_VERSION,
        agent: "worker".into(),
    };
    let mut stream = Vec::new();
    write_frame(&mut stream, &hello).unwrap();
    let (back, _) = read_frame(&mut std::io::Cursor::new(stream)).unwrap();
    match back {
        Frame::Hello { version, agent } => {
            assert_eq!(version, PROTOCOL_VERSION);
            assert_eq!(agent, "worker");
        }
        other => panic!("expected Hello, got {other:?}"),
    }
}
