//! Random parameter-initialisation strategies.
//!
//! The learning models in `krum-models` initialise their weights through one
//! of these strategies so that every experiment is reproducible from a seed.

use rand::Rng;
use rand_distr::{Distribution, Normal, Uniform};
use serde::{Deserialize, Serialize};

use crate::matrix::Matrix;
use crate::vector::Vector;

/// How to draw initial weights.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub enum InitStrategy {
    /// Every weight is zero. Useful for convex models where the optimum is
    /// independent of the start point.
    Zeros,
    /// i.i.d. Gaussian entries with the given standard deviation.
    Gaussian {
        /// Standard deviation of each entry.
        std: f64,
    },
    /// i.i.d. uniform entries on `[-limit, limit]`.
    Uniform {
        /// Half-width of the sampling interval.
        limit: f64,
    },
    /// Xavier/Glorot uniform initialisation: uniform on
    /// `[-sqrt(6/(fan_in+fan_out)), +sqrt(6/(fan_in+fan_out))]`.
    #[default]
    XavierUniform,
}

impl InitStrategy {
    /// Samples a `rows × cols` weight matrix (`fan_out × fan_in` convention).
    pub fn sample_matrix<R: Rng + ?Sized>(&self, rows: usize, cols: usize, rng: &mut R) -> Matrix {
        match *self {
            Self::Zeros => Matrix::zeros(rows, cols),
            Self::Gaussian { std } => Matrix::gaussian(rows, cols, 0.0, std, rng),
            Self::Uniform { limit } => Matrix::uniform(rows, cols, -limit, limit, rng),
            Self::XavierUniform => xavier_uniform(rows, cols, rng),
        }
    }

    /// Samples a vector of dimension `dim` (used for bias terms).
    pub fn sample_vector<R: Rng + ?Sized>(&self, dim: usize, rng: &mut R) -> Vector {
        match *self {
            Self::Zeros => Vector::zeros(dim),
            Self::Gaussian { std } => Vector::gaussian(dim, 0.0, std, rng),
            Self::Uniform { limit } => Vector::uniform(dim, -limit, limit, rng),
            // Biases are conventionally initialised at zero under Xavier.
            Self::XavierUniform => Vector::zeros(dim),
        }
    }
}

/// Xavier/Glorot uniform initialisation for a `fan_out × fan_in` matrix.
///
/// # Example
///
/// ```
/// use krum_tensor::xavier_uniform;
/// use rand::SeedableRng;
///
/// let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(0);
/// let w = xavier_uniform(10, 20, &mut rng);
/// let limit = (6.0_f64 / 30.0).sqrt();
/// assert!(w.as_slice().iter().all(|&x| x.abs() <= limit));
/// ```
pub fn xavier_uniform<R: Rng + ?Sized>(fan_out: usize, fan_in: usize, rng: &mut R) -> Matrix {
    let denom = (fan_in + fan_out).max(1) as f64;
    let limit = (6.0 / denom).sqrt();
    if limit == 0.0 {
        return Matrix::zeros(fan_out, fan_in);
    }
    let dist = Uniform::new_inclusive(-limit, limit);
    let data = (0..fan_out * fan_in).map(|_| dist.sample(rng)).collect();
    Matrix::from_vec(fan_out, fan_in, data).expect("buffer length matches by construction")
}

/// Samples a point uniformly on the unit sphere in `R^dim`.
///
/// Used by attack strategies that need an arbitrary direction, and by the
/// resilience estimator when probing worst-case directions.
pub fn random_unit_vector<R: Rng + ?Sized>(dim: usize, rng: &mut R) -> Vector {
    let normal = Normal::new(0.0, 1.0).expect("unit normal is valid");
    loop {
        let v: Vector = (0..dim).map(|_| normal.sample(rng)).collect();
        if let Some(u) = v.normalized() {
            return u;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn zeros_strategy() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let m = InitStrategy::Zeros.sample_matrix(3, 4, &mut rng);
        assert_eq!(m, Matrix::zeros(3, 4));
        assert_eq!(
            InitStrategy::Zeros.sample_vector(5, &mut rng),
            Vector::zeros(5)
        );
    }

    #[test]
    fn gaussian_strategy_is_seed_deterministic() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        let strat = InitStrategy::Gaussian { std: 0.5 };
        assert_eq!(
            strat.sample_matrix(4, 4, &mut a),
            strat.sample_matrix(4, 4, &mut b)
        );
    }

    #[test]
    fn uniform_strategy_respects_limit() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let strat = InitStrategy::Uniform { limit: 0.1 };
        let m = strat.sample_matrix(10, 10, &mut rng);
        assert!(m.as_slice().iter().all(|&x| x.abs() <= 0.1));
        let v = strat.sample_vector(10, &mut rng);
        assert!(v.iter().all(|&x| x.abs() <= 0.1));
    }

    #[test]
    fn xavier_bounds_hold() {
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        let w = xavier_uniform(32, 64, &mut rng);
        let limit = (6.0_f64 / 96.0).sqrt();
        assert!(w.as_slice().iter().all(|&x| x.abs() <= limit + 1e-12));
        // Degenerate fan sizes do not panic.
        let z = xavier_uniform(0, 0, &mut rng);
        assert!(z.is_empty());
    }

    #[test]
    fn xavier_biases_are_zero() {
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        assert_eq!(
            InitStrategy::XavierUniform.sample_vector(8, &mut rng),
            Vector::zeros(8)
        );
    }

    #[test]
    fn default_is_xavier() {
        assert_eq!(InitStrategy::default(), InitStrategy::XavierUniform);
    }

    #[test]
    fn random_unit_vector_has_unit_norm() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        for dim in [1, 3, 100] {
            let u = random_unit_vector(dim, &mut rng);
            assert_eq!(u.dim(), dim);
            assert!((u.norm() - 1.0).abs() < 1e-12);
        }
    }
}
