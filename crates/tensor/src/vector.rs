//! Dense `f64` vectors in `R^d`.
//!
//! [`Vector`] is the central data type of the reproduction: worker gradient
//! estimates, the parameter vector held by the server, and the output of every
//! aggregation rule are all `Vector`s.

use std::fmt;
use std::iter::FromIterator;
use std::ops::{Add, AddAssign, Index, IndexMut, Mul, Neg, Sub, SubAssign};

use rand::Rng;
use rand_distr::{Distribution, Normal, Uniform};
use serde::{Deserialize, Serialize};

use crate::error::{ShapeError, TensorError};

/// A dense vector in `R^d` backed by a `Vec<f64>`.
///
/// The type eagerly implements the arithmetic the paper's aggregation rules
/// need: addition, subtraction, scaling, dot products, Euclidean norms and
/// squared distances. All binary operations panic on dimension mismatch (the
/// checked variants `try_*` return [`TensorError`] instead), mirroring the
/// standard-library convention for slices.
///
/// # Example
///
/// ```
/// use krum_tensor::Vector;
///
/// let a = Vector::from(vec![3.0, 4.0]);
/// assert_eq!(a.norm(), 5.0);
/// let b = &a * 2.0;
/// assert_eq!(b.as_slice(), &[6.0, 8.0]);
/// ```
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Vector {
    data: Vec<f64>,
}

impl Vector {
    /// Creates a zero vector of dimension `dim`.
    pub fn zeros(dim: usize) -> Self {
        Self {
            data: vec![0.0; dim],
        }
    }

    /// Creates a vector of dimension `dim` with every coordinate set to `value`.
    pub fn filled(dim: usize, value: f64) -> Self {
        Self {
            data: vec![value; dim],
        }
    }

    /// Creates the `i`-th standard basis vector of dimension `dim`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= dim`.
    pub fn basis(dim: usize, i: usize) -> Self {
        assert!(i < dim, "basis index {i} out of range for dimension {dim}");
        let mut v = Self::zeros(dim);
        v.data[i] = 1.0;
        v
    }

    /// Samples a vector whose coordinates are i.i.d. `N(mean, std^2)`.
    pub fn gaussian<R: Rng + ?Sized>(dim: usize, mean: f64, std: f64, rng: &mut R) -> Self {
        let normal = Normal::new(mean, std).expect("standard deviation must be finite and >= 0");
        Self {
            data: (0..dim).map(|_| normal.sample(rng)).collect(),
        }
    }

    /// Samples a vector whose coordinates are i.i.d. uniform on `[lo, hi)`.
    pub fn uniform<R: Rng + ?Sized>(dim: usize, lo: f64, hi: f64, rng: &mut R) -> Self {
        let uniform = Uniform::new(lo, hi);
        Self {
            data: (0..dim).map(|_| uniform.sample(rng)).collect(),
        }
    }

    /// Dimension of the vector.
    pub fn dim(&self) -> usize {
        self.data.len()
    }

    /// Returns `true` if the vector has dimension zero.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Borrows the coordinates as a slice.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Borrows the coordinates as a mutable slice.
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Consumes the vector and returns the underlying buffer.
    pub fn into_inner(self) -> Vec<f64> {
        self.data
    }

    /// Iterates over the coordinates.
    pub fn iter(&self) -> std::slice::Iter<'_, f64> {
        self.data.iter()
    }

    /// Iterates mutably over the coordinates.
    pub fn iter_mut(&mut self) -> std::slice::IterMut<'_, f64> {
        self.data.iter_mut()
    }

    /// Dot product `<self, other>`.
    ///
    /// # Panics
    ///
    /// Panics if the dimensions differ; use [`Vector::try_dot`] for a checked variant.
    pub fn dot(&self, other: &Self) -> f64 {
        self.try_dot(other).expect("dimension mismatch in dot")
    }

    /// Checked dot product.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::Shape`] if the dimensions differ.
    pub fn try_dot(&self, other: &Self) -> Result<f64, TensorError> {
        self.check_same_dim(other, "dot")?;
        Ok(self.data.iter().zip(&other.data).map(|(a, b)| a * b).sum())
    }

    /// Squared Euclidean norm `‖self‖²`.
    pub fn squared_norm(&self) -> f64 {
        self.data.iter().map(|a| a * a).sum()
    }

    /// Euclidean norm `‖self‖`.
    pub fn norm(&self) -> f64 {
        self.squared_norm().sqrt()
    }

    /// Squared Euclidean distance `‖self − other‖²`.
    ///
    /// This is the quantity Krum sums over a proposal's closest neighbours.
    ///
    /// # Panics
    ///
    /// Panics if the dimensions differ; use [`Vector::try_squared_distance`]
    /// for a checked variant.
    pub fn squared_distance(&self, other: &Self) -> f64 {
        self.try_squared_distance(other)
            .expect("dimension mismatch in squared_distance")
    }

    /// Checked squared Euclidean distance.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::Shape`] if the dimensions differ.
    pub fn try_squared_distance(&self, other: &Self) -> Result<f64, TensorError> {
        self.check_same_dim(other, "squared_distance")?;
        Ok(self
            .data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| {
                let d = a - b;
                d * d
            })
            .sum())
    }

    /// Euclidean distance `‖self − other‖`.
    pub fn distance(&self, other: &Self) -> f64 {
        self.squared_distance(other).sqrt()
    }

    /// In-place `self += alpha * other` (the classic BLAS `axpy`).
    ///
    /// # Panics
    ///
    /// Panics if the dimensions differ.
    pub fn axpy(&mut self, alpha: f64, other: &Self) {
        assert_eq!(
            self.dim(),
            other.dim(),
            "dimension mismatch in axpy: {} vs {}",
            self.dim(),
            other.dim()
        );
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += alpha * b;
        }
    }

    /// Sets every coordinate to `value` without changing the dimension (or
    /// reallocating).
    pub fn fill(&mut self, value: f64) {
        self.data.fill(value);
    }

    /// Resizes the vector to `dim` coordinates in place, filling any new
    /// coordinates with `value`. Shrinking keeps the existing allocation, so
    /// repeated resizes to the same dimension never reallocate.
    pub fn resize(&mut self, dim: usize, value: f64) {
        self.data.resize(dim, value);
    }

    /// Overwrites the vector with the contents of `src`, adopting its length.
    /// Reuses the existing allocation whenever the capacity suffices — the
    /// zero-allocation primitive behind the aggregation workspace.
    pub fn assign(&mut self, src: &[f64]) {
        self.data.clear();
        self.data.extend_from_slice(src);
    }

    /// Returns `self * alpha` without consuming `self`.
    pub fn scaled(&self, alpha: f64) -> Self {
        Self {
            data: self.data.iter().map(|a| a * alpha).collect(),
        }
    }

    /// Scales the vector in place by `alpha`.
    pub fn scale(&mut self, alpha: f64) {
        for a in &mut self.data {
            *a *= alpha;
        }
    }

    /// Returns a unit-norm copy of the vector, or `None` if its norm is zero
    /// (or not finite).
    pub fn normalized(&self) -> Option<Self> {
        let n = self.norm();
        if n > 0.0 && n.is_finite() {
            Some(self.scaled(1.0 / n))
        } else {
            None
        }
    }

    /// Cosine of the angle between `self` and `other`, or `None` when either
    /// vector has zero norm.
    pub fn cosine_similarity(&self, other: &Self) -> Option<f64> {
        let denom = self.norm() * other.norm();
        if denom > 0.0 && denom.is_finite() {
            Some(self.dot(other) / denom)
        } else {
            None
        }
    }

    /// Applies `f` to every coordinate, returning a new vector.
    pub fn map(&self, f: impl Fn(f64) -> f64) -> Self {
        Self {
            data: self.data.iter().map(|&a| f(a)).collect(),
        }
    }

    /// Applies `f` to every coordinate in place.
    pub fn map_inplace(&mut self, f: impl Fn(f64) -> f64) {
        for a in &mut self.data {
            *a = f(*a);
        }
    }

    /// Coordinate-wise sum of the vector.
    pub fn sum(&self) -> f64 {
        self.data.iter().sum()
    }

    /// Arithmetic mean of the coordinates (0.0 for the empty vector).
    pub fn mean(&self) -> f64 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f64
        }
    }

    /// Largest coordinate, or `None` for the empty vector.
    pub fn max(&self) -> Option<f64> {
        self.data.iter().copied().fold(None, |acc, x| match acc {
            None => Some(x),
            Some(m) => Some(m.max(x)),
        })
    }

    /// Smallest coordinate, or `None` for the empty vector.
    pub fn min(&self) -> Option<f64> {
        self.data.iter().copied().fold(None, |acc, x| match acc {
            None => Some(x),
            Some(m) => Some(m.min(x)),
        })
    }

    /// Index of the largest coordinate, or `None` for the empty vector.
    /// Ties are broken towards the smallest index.
    pub fn argmax(&self) -> Option<usize> {
        if self.data.is_empty() {
            return None;
        }
        let mut best = 0;
        for (i, &x) in self.data.iter().enumerate() {
            if x > self.data[best] {
                best = i;
            }
        }
        Some(best)
    }

    /// Returns `true` when every coordinate is finite (neither NaN nor ±∞).
    pub fn is_finite(&self) -> bool {
        self.data.iter().all(|a| a.is_finite())
    }

    /// Coordinate-wise (Hadamard) product.
    ///
    /// # Panics
    ///
    /// Panics if the dimensions differ.
    pub fn hadamard(&self, other: &Self) -> Self {
        assert_eq!(
            self.dim(),
            other.dim(),
            "dimension mismatch in hadamard: {} vs {}",
            self.dim(),
            other.dim()
        );
        Self {
            data: self
                .data
                .iter()
                .zip(&other.data)
                .map(|(a, b)| a * b)
                .collect(),
        }
    }

    /// Computes the arithmetic mean of a non-empty family of vectors.
    ///
    /// This is the `F_bary` choice function of Section 4 of the paper (plain
    /// averaging), provided here because several crates need it.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::Empty`] for an empty family and
    /// [`TensorError::Shape`] if the vectors disagree on dimension.
    pub fn mean_of(vectors: &[Self]) -> Result<Self, TensorError> {
        let first = vectors.first().ok_or(TensorError::Empty("mean_of"))?;
        let mut acc = Self::zeros(first.dim());
        for v in vectors {
            if v.dim() != first.dim() {
                return Err(ShapeError::new(vec![first.dim()], vec![v.dim()], "mean_of").into());
            }
            acc.axpy(1.0, v);
        }
        acc.scale(1.0 / vectors.len() as f64);
        Ok(acc)
    }

    /// Clamps every coordinate into `[lo, hi]`.
    pub fn clamp(&self, lo: f64, hi: f64) -> Self {
        self.map(|a| a.clamp(lo, hi))
    }

    /// Concatenates a family of vectors into one long vector.
    pub fn concat(parts: &[Self]) -> Self {
        let mut data = Vec::with_capacity(parts.iter().map(Self::dim).sum());
        for p in parts {
            data.extend_from_slice(&p.data);
        }
        Self { data }
    }

    /// Splits the vector into consecutive chunks of the given lengths.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidArgument`] if the lengths do not sum to
    /// the vector's dimension.
    pub fn split(&self, lengths: &[usize]) -> Result<Vec<Self>, TensorError> {
        let total: usize = lengths.iter().sum();
        if total != self.dim() {
            return Err(TensorError::invalid(
                "split",
                format!(
                    "lengths sum to {total} but vector has dimension {}",
                    self.dim()
                ),
            ));
        }
        let mut out = Vec::with_capacity(lengths.len());
        let mut offset = 0;
        for &len in lengths {
            out.push(Self::from(self.data[offset..offset + len].to_vec()));
            offset += len;
        }
        Ok(out)
    }

    fn check_same_dim(&self, other: &Self, context: &'static str) -> Result<(), ShapeError> {
        if self.dim() != other.dim() {
            Err(ShapeError::new(
                vec![self.dim()],
                vec![other.dim()],
                context,
            ))
        } else {
            Ok(())
        }
    }
}

impl From<Vec<f64>> for Vector {
    fn from(data: Vec<f64>) -> Self {
        Self { data }
    }
}

impl From<&[f64]> for Vector {
    fn from(data: &[f64]) -> Self {
        Self {
            data: data.to_vec(),
        }
    }
}

impl FromIterator<f64> for Vector {
    fn from_iter<T: IntoIterator<Item = f64>>(iter: T) -> Self {
        Self {
            data: iter.into_iter().collect(),
        }
    }
}

impl AsRef<[f64]> for Vector {
    fn as_ref(&self) -> &[f64] {
        &self.data
    }
}

impl Index<usize> for Vector {
    type Output = f64;

    fn index(&self, index: usize) -> &Self::Output {
        &self.data[index]
    }
}

impl IndexMut<usize> for Vector {
    fn index_mut(&mut self, index: usize) -> &mut Self::Output {
        &mut self.data[index]
    }
}

impl fmt::Display for Vector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, x) in self.data.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{x:.6}")?;
        }
        write!(f, "]")
    }
}

impl Add<&Vector> for &Vector {
    type Output = Vector;

    fn add(self, rhs: &Vector) -> Vector {
        let mut out = self.clone();
        out.axpy(1.0, rhs);
        out
    }
}

impl Sub<&Vector> for &Vector {
    type Output = Vector;

    fn sub(self, rhs: &Vector) -> Vector {
        let mut out = self.clone();
        out.axpy(-1.0, rhs);
        out
    }
}

impl Mul<f64> for &Vector {
    type Output = Vector;

    fn mul(self, rhs: f64) -> Vector {
        self.scaled(rhs)
    }
}

impl Neg for &Vector {
    type Output = Vector;

    fn neg(self) -> Vector {
        self.scaled(-1.0)
    }
}

impl AddAssign<&Vector> for Vector {
    fn add_assign(&mut self, rhs: &Vector) {
        self.axpy(1.0, rhs);
    }
}

impl SubAssign<&Vector> for Vector {
    fn sub_assign(&mut self, rhs: &Vector) {
        self.axpy(-1.0, rhs);
    }
}

impl<'a> IntoIterator for &'a Vector {
    type Item = &'a f64;
    type IntoIter = std::slice::Iter<'a, f64>;

    fn into_iter(self) -> Self::IntoIter {
        self.data.iter()
    }
}

impl IntoIterator for Vector {
    type Item = f64;
    type IntoIter = std::vec::IntoIter<f64>;

    fn into_iter(self) -> Self::IntoIter {
        self.data.into_iter()
    }
}

impl Extend<f64> for Vector {
    fn extend<T: IntoIterator<Item = f64>>(&mut self, iter: T) {
        self.data.extend(iter);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn zeros_and_filled() {
        let z = Vector::zeros(4);
        assert_eq!(z.dim(), 4);
        assert_eq!(z.sum(), 0.0);
        let f = Vector::filled(3, 2.5);
        assert_eq!(f.sum(), 7.5);
    }

    #[test]
    fn basis_vectors_are_orthonormal() {
        let e0 = Vector::basis(3, 0);
        let e1 = Vector::basis(3, 1);
        assert_eq!(e0.norm(), 1.0);
        assert_eq!(e0.dot(&e1), 0.0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn basis_out_of_range_panics() {
        let _ = Vector::basis(3, 3);
    }

    #[test]
    fn dot_norm_distance_consistency() {
        let a = Vector::from(vec![1.0, 2.0, 3.0]);
        let b = Vector::from(vec![4.0, 5.0, 6.0]);
        assert_eq!(a.dot(&b), 32.0);
        assert!((a.squared_distance(&b) - 27.0).abs() < 1e-12);
        assert!((a.distance(&b) - 27.0_f64.sqrt()).abs() < 1e-12);
        // ‖a−b‖² = ‖a‖² + ‖b‖² − 2⟨a,b⟩
        let lhs = a.squared_distance(&b);
        let rhs = a.squared_norm() + b.squared_norm() - 2.0 * a.dot(&b);
        assert!((lhs - rhs).abs() < 1e-9);
    }

    #[test]
    fn try_dot_rejects_mismatch() {
        let a = Vector::zeros(3);
        let b = Vector::zeros(4);
        assert!(matches!(a.try_dot(&b), Err(TensorError::Shape(_))));
        assert!(a.try_squared_distance(&b).is_err());
    }

    #[test]
    fn fill_resize_assign_reuse_the_allocation() {
        let mut v = Vector::from(vec![1.0, 2.0, 3.0, 4.0]);
        v.fill(7.0);
        assert_eq!(v.as_slice(), &[7.0; 4]);
        v.resize(2, 0.0);
        assert_eq!(v.as_slice(), &[7.0, 7.0]);
        v.resize(4, 9.0);
        assert_eq!(v.as_slice(), &[7.0, 7.0, 9.0, 9.0]);
        v.assign(&[1.5, 2.5]);
        assert_eq!(v.as_slice(), &[1.5, 2.5]);
        assert_eq!(v.dim(), 2);
    }

    #[test]
    fn axpy_and_operators() {
        let mut a = Vector::from(vec![1.0, 1.0]);
        let b = Vector::from(vec![2.0, 3.0]);
        a.axpy(2.0, &b);
        assert_eq!(a.as_slice(), &[5.0, 7.0]);
        let c = &a - &b;
        assert_eq!(c.as_slice(), &[3.0, 4.0]);
        let d = &c * 2.0;
        assert_eq!(d.as_slice(), &[6.0, 8.0]);
        let e = -&d;
        assert_eq!(e.as_slice(), &[-6.0, -8.0]);
        let mut f = Vector::zeros(2);
        f += &d;
        f -= &c;
        assert_eq!(f.as_slice(), &[3.0, 4.0]);
    }

    #[test]
    fn normalized_and_cosine() {
        let a = Vector::from(vec![3.0, 4.0]);
        let u = a.normalized().unwrap();
        assert!((u.norm() - 1.0).abs() < 1e-12);
        assert!(Vector::zeros(2).normalized().is_none());
        let b = Vector::from(vec![6.0, 8.0]);
        assert!((a.cosine_similarity(&b).unwrap() - 1.0).abs() < 1e-12);
        assert!(a.cosine_similarity(&Vector::zeros(2)).is_none());
    }

    #[test]
    fn mean_of_family() {
        let vs = vec![
            Vector::from(vec![1.0, 2.0]),
            Vector::from(vec![3.0, 4.0]),
            Vector::from(vec![5.0, 6.0]),
        ];
        let m = Vector::mean_of(&vs).unwrap();
        assert_eq!(m.as_slice(), &[3.0, 4.0]);
        assert!(matches!(
            Vector::mean_of(&[]),
            Err(TensorError::Empty("mean_of"))
        ));
        let bad = vec![Vector::zeros(2), Vector::zeros(3)];
        assert!(Vector::mean_of(&bad).is_err());
    }

    #[test]
    fn map_and_reductions() {
        let a = Vector::from(vec![-1.0, 2.0, -3.0]);
        let abs = a.map(f64::abs);
        assert_eq!(abs.as_slice(), &[1.0, 2.0, 3.0]);
        assert_eq!(a.max(), Some(2.0));
        assert_eq!(a.min(), Some(-3.0));
        assert_eq!(a.argmax(), Some(1));
        assert_eq!(Vector::zeros(0).argmax(), None);
        assert_eq!(a.mean(), (-1.0 + 2.0 - 3.0) / 3.0);
        assert_eq!(Vector::zeros(0).mean(), 0.0);
    }

    #[test]
    fn argmax_breaks_ties_towards_smallest_index() {
        let a = Vector::from(vec![1.0, 5.0, 5.0, 2.0]);
        assert_eq!(a.argmax(), Some(1));
    }

    #[test]
    fn gaussian_sampling_is_reproducible_and_roughly_centred() {
        let mut rng1 = ChaCha8Rng::seed_from_u64(7);
        let mut rng2 = ChaCha8Rng::seed_from_u64(7);
        let a = Vector::gaussian(10_000, 1.0, 2.0, &mut rng1);
        let b = Vector::gaussian(10_000, 1.0, 2.0, &mut rng2);
        assert_eq!(a, b);
        assert!((a.mean() - 1.0).abs() < 0.1);
    }

    #[test]
    fn uniform_sampling_in_range() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let a = Vector::uniform(1000, -1.0, 1.0, &mut rng);
        assert!(a.iter().all(|&x| (-1.0..1.0).contains(&x)));
    }

    #[test]
    fn hadamard_product() {
        let a = Vector::from(vec![1.0, 2.0, 3.0]);
        let b = Vector::from(vec![2.0, 0.5, -1.0]);
        assert_eq!(a.hadamard(&b).as_slice(), &[2.0, 1.0, -3.0]);
    }

    #[test]
    fn concat_and_split_round_trip() {
        let a = Vector::from(vec![1.0, 2.0]);
        let b = Vector::from(vec![3.0]);
        let c = Vector::from(vec![4.0, 5.0, 6.0]);
        let whole = Vector::concat(&[a.clone(), b.clone(), c.clone()]);
        assert_eq!(whole.dim(), 6);
        let parts = whole.split(&[2, 1, 3]).unwrap();
        assert_eq!(parts, vec![a, b, c]);
        assert!(whole.split(&[2, 2]).is_err());
    }

    #[test]
    fn is_finite_detects_nan_and_inf() {
        assert!(Vector::from(vec![1.0, 2.0]).is_finite());
        assert!(!Vector::from(vec![1.0, f64::NAN]).is_finite());
        assert!(!Vector::from(vec![f64::INFINITY]).is_finite());
    }

    #[test]
    fn clamp_bounds_coordinates() {
        let a = Vector::from(vec![-5.0, 0.5, 9.0]);
        assert_eq!(a.clamp(-1.0, 1.0).as_slice(), &[-1.0, 0.5, 1.0]);
    }

    #[test]
    fn serde_round_trip() {
        let a = Vector::from(vec![1.5, -2.25]);
        let json = serde_json::to_string(&a).unwrap();
        let back: Vector = serde_json::from_str(&json).unwrap();
        assert_eq!(a, back);
    }

    #[test]
    fn display_formats_all_coordinates() {
        let a = Vector::from(vec![1.0, 2.0]);
        let s = format!("{a}");
        assert!(s.starts_with('[') && s.ends_with(']'));
        assert!(s.contains("1.000000") && s.contains("2.000000"));
    }

    #[test]
    fn from_iterator_and_extend() {
        let v: Vector = (0..4).map(|i| i as f64).collect();
        assert_eq!(v.as_slice(), &[0.0, 1.0, 2.0, 3.0]);
        let mut w = Vector::zeros(0);
        w.extend([1.0, 2.0]);
        assert_eq!(w.dim(), 2);
    }
}
