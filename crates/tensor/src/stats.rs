//! Scalar summary statistics.
//!
//! The experiment drivers report means, standard deviations and quantiles of
//! measured quantities (losses, angles, timings). [`OnlineStats`] implements
//! Welford's numerically stable online algorithm so long training runs can
//! accumulate statistics without storing every sample.

use serde::{Deserialize, Serialize};

/// Arithmetic mean of a slice (0.0 for an empty slice).
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Sample standard deviation (Bessel-corrected); 0.0 when fewer than two samples.
pub fn stddev(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    let var = xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (xs.len() - 1) as f64;
    var.sqrt()
}

/// Empirical quantile with linear interpolation, `q ∈ [0, 1]`.
///
/// Returns `None` for an empty slice or a `q` outside `[0, 1]`.
pub fn quantile(xs: &[f64], q: f64) -> Option<f64> {
    if xs.is_empty() || !(0.0..=1.0).contains(&q) {
        return None;
    }
    let mut sorted: Vec<f64> = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        Some(sorted[lo])
    } else {
        let frac = pos - lo as f64;
        Some(sorted[lo] * (1.0 - frac) + sorted[hi] * frac)
    }
}

/// Welford online accumulator for mean/variance/min/max.
///
/// # Example
///
/// ```
/// use krum_tensor::OnlineStats;
///
/// let mut s = OnlineStats::new();
/// for x in [1.0, 2.0, 3.0] {
///     s.push(x);
/// }
/// assert_eq!(s.mean(), 2.0);
/// assert_eq!(s.count(), 3);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct OnlineStats {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        let delta2 = x - self.mean;
        self.m2 += delta * delta2;
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations so far.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Running mean (0.0 before the first observation).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Sample variance (Bessel-corrected); 0.0 with fewer than two observations.
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn stddev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest observation, or `None` before the first observation.
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest observation, or `None` before the first observation.
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// Merges another accumulator into this one (parallel Welford merge).
    pub fn merge(&mut self, other: &Self) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let total = self.count + other.count;
        let delta = other.mean - self.mean;
        let new_mean = self.mean + delta * other.count as f64 / total as f64;
        self.m2 +=
            other.m2 + delta * delta * (self.count as f64 * other.count as f64) / total as f64;
        self.mean = new_mean;
        self.count = total;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Produces an owned [`Summary`] snapshot.
    pub fn summary(&self) -> Summary {
        Summary {
            count: self.count,
            mean: self.mean(),
            stddev: self.stddev(),
            min: self.min().unwrap_or(f64::NAN),
            max: self.max().unwrap_or(f64::NAN),
        }
    }
}

impl FromIterator<f64> for OnlineStats {
    fn from_iter<T: IntoIterator<Item = f64>>(iter: T) -> Self {
        let mut s = Self::new();
        for x in iter {
            s.push(x);
        }
        s
    }
}

/// Immutable snapshot of an [`OnlineStats`] accumulator.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    /// Number of observations.
    pub count: u64,
    /// Mean of the observations.
    pub mean: f64,
    /// Sample standard deviation.
    pub stddev: f64,
    /// Minimum observation (NaN when empty).
    pub min: f64,
    /// Maximum observation (NaN when empty).
    pub max: f64,
}

impl std::fmt::Display for Summary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "n={} mean={:.6} std={:.6} min={:.6} max={:.6}",
            self.count, self.mean, self.stddev, self.min, self.max
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_stddev_basic() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[2.0, 4.0]), 3.0);
        assert_eq!(stddev(&[5.0]), 0.0);
        assert!((stddev(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]) - 2.138089935).abs() < 1e-6);
    }

    #[test]
    fn quantile_interpolates() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(quantile(&xs, 0.0), Some(1.0));
        assert_eq!(quantile(&xs, 1.0), Some(4.0));
        assert_eq!(quantile(&xs, 0.5), Some(2.5));
        assert_eq!(quantile(&[], 0.5), None);
        assert_eq!(quantile(&xs, 1.5), None);
    }

    #[test]
    fn online_stats_matches_batch_formulas() {
        let xs = [1.0, 2.0, 3.0, 4.0, 5.0, -1.0];
        let s: OnlineStats = xs.iter().copied().collect();
        assert_eq!(s.count(), 6);
        assert!((s.mean() - mean(&xs)).abs() < 1e-12);
        assert!((s.stddev() - stddev(&xs)).abs() < 1e-12);
        assert_eq!(s.min(), Some(-1.0));
        assert_eq!(s.max(), Some(5.0));
    }

    #[test]
    fn empty_stats_are_well_behaved() {
        let s = OnlineStats::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.min(), None);
        assert_eq!(s.max(), None);
        assert!(s.summary().min.is_nan());
    }

    #[test]
    fn merge_equals_single_pass() {
        let xs = [1.0, 5.0, 2.0, 8.0, -3.0, 7.0, 7.0];
        let (left, right) = xs.split_at(3);
        let mut a: OnlineStats = left.iter().copied().collect();
        let b: OnlineStats = right.iter().copied().collect();
        a.merge(&b);
        let whole: OnlineStats = xs.iter().copied().collect();
        assert_eq!(a.count(), whole.count());
        assert!((a.mean() - whole.mean()).abs() < 1e-12);
        assert!((a.variance() - whole.variance()).abs() < 1e-12);
        assert_eq!(a.min(), whole.min());
        assert_eq!(a.max(), whole.max());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a: OnlineStats = [1.0, 2.0].iter().copied().collect();
        let before = a;
        a.merge(&OnlineStats::new());
        assert_eq!(a, before);
        let mut e = OnlineStats::new();
        e.merge(&before);
        assert_eq!(e, before);
    }

    #[test]
    fn summary_display_mentions_all_fields() {
        let s: OnlineStats = [1.0, 2.0, 3.0].iter().copied().collect();
        let text = s.summary().to_string();
        assert!(text.contains("n=3"));
        assert!(text.contains("mean="));
        assert!(text.contains("std="));
    }
}
