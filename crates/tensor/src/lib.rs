//! # krum-tensor
//!
//! Dense linear-algebra substrate for the Krum reproduction.
//!
//! The paper ([Blanchard et al., PODC 2017]) works with parameter vectors and
//! gradient estimates living in `R^d`, and its evaluation trains multi-layer
//! perceptrons, which additionally need matrix arithmetic. This crate provides
//! exactly that substrate: a [`Vector`] newtype over `Vec<f64>` and a
//! row-major [`Matrix`], together with the numerically careful reductions the
//! aggregation rules rely on (squared Euclidean distances, norms, dot
//! products), random initialisation helpers, and summary statistics.
//!
//! The crate is deliberately free of `unsafe` and of external BLAS
//! dependencies so the whole reproduction is self-contained and portable.
//!
//! ## Example
//!
//! ```
//! use krum_tensor::Vector;
//!
//! let g = Vector::from(vec![1.0, 2.0, 2.0]);
//! let v = Vector::from(vec![1.0, 0.0, 2.0]);
//! assert_eq!(g.norm(), 3.0);
//! assert_eq!(g.squared_distance(&v), 4.0);
//! assert_eq!(g.dot(&v), 5.0);
//! ```
//!
//! [Blanchard et al., PODC 2017]: https://dl.acm.org/doi/10.1145/3087801.3087861

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod init;
mod matrix;
mod stats;
mod vector;

pub use error::{ShapeError, TensorError};
pub use init::{random_unit_vector, xavier_uniform, InitStrategy};
pub use matrix::Matrix;
pub use stats::{mean, quantile, stddev, OnlineStats, Summary};
pub use vector::Vector;

/// Convenience prelude bringing the most commonly used items into scope.
pub mod prelude {
    pub use crate::{Matrix, OnlineStats, Summary, TensorError, Vector};
}
