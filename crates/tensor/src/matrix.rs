//! Row-major dense matrices.
//!
//! Matrices are only needed by the learning-model substrate (dataset feature
//! matrices, MLP weight layers); the aggregation rules themselves operate on
//! [`Vector`]s. The implementation favours clarity over raw speed, but the
//! mat-mul kernel is cache-friendly (i-k-j loop order) which is plenty for the
//! paper-scale experiments.

use std::fmt;
use std::ops::{Add, Index, IndexMut, Mul, Sub};

use rand::Rng;
use rand_distr::{Distribution, Normal, Uniform};
use serde::{Deserialize, Serialize};

use crate::error::{ShapeError, TensorError};
use crate::vector::Vector;

/// A dense row-major matrix of `f64`.
///
/// # Example
///
/// ```
/// use krum_tensor::{Matrix, Vector};
///
/// let m = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
/// let x = Vector::from(vec![1.0, 1.0]);
/// assert_eq!(m.matvec(&x).as_slice(), &[3.0, 7.0]);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a `rows × cols` matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates the `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m.data[i * n + i] = 1.0;
        }
        m
    }

    /// Builds a matrix from a row-major buffer.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::BadBuffer`] if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Result<Self, TensorError> {
        if data.len() != rows * cols {
            return Err(TensorError::BadBuffer {
                len: data.len(),
                rows,
                cols,
            });
        }
        Ok(Self { rows, cols, data })
    }

    /// Builds a matrix from a slice of equally long rows.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::Empty`] for an empty slice and
    /// [`TensorError::Shape`] if the rows have inconsistent lengths.
    pub fn from_rows(rows: &[Vec<f64>]) -> Result<Self, TensorError> {
        let first = rows.first().ok_or(TensorError::Empty("from_rows"))?;
        let cols = first.len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for row in rows {
            if row.len() != cols {
                return Err(ShapeError::new(vec![cols], vec![row.len()], "from_rows").into());
            }
            data.extend_from_slice(row);
        }
        Ok(Self {
            rows: rows.len(),
            cols,
            data,
        })
    }

    /// Samples a matrix with i.i.d. `N(mean, std^2)` entries.
    pub fn gaussian<R: Rng + ?Sized>(
        rows: usize,
        cols: usize,
        mean: f64,
        std: f64,
        rng: &mut R,
    ) -> Self {
        let normal = Normal::new(mean, std).expect("standard deviation must be finite and >= 0");
        Self {
            rows,
            cols,
            data: (0..rows * cols).map(|_| normal.sample(rng)).collect(),
        }
    }

    /// Samples a matrix with i.i.d. uniform entries on `[lo, hi)`.
    pub fn uniform<R: Rng + ?Sized>(
        rows: usize,
        cols: usize,
        lo: f64,
        hi: f64,
        rng: &mut R,
    ) -> Self {
        let uniform = Uniform::new(lo, hi);
        Self {
            rows,
            cols,
            data: (0..rows * cols).map(|_| uniform.sample(rng)).collect(),
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total number of entries.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Returns `true` when the matrix has no entries.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Borrows the row-major buffer.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Borrows the row-major buffer mutably.
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Consumes the matrix, returning the row-major buffer.
    pub fn into_inner(self) -> Vec<f64> {
        self.data
    }

    /// Borrows row `r` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `r >= rows`.
    pub fn row(&self, r: usize) -> &[f64] {
        assert!(r < self.rows, "row {r} out of range for {} rows", self.rows);
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Copies row `r` into a [`Vector`].
    pub fn row_vector(&self, r: usize) -> Vector {
        Vector::from(self.row(r))
    }

    /// Copies column `c` into a [`Vector`].
    ///
    /// # Panics
    ///
    /// Panics if `c >= cols`.
    pub fn column_vector(&self, c: usize) -> Vector {
        assert!(
            c < self.cols,
            "column {c} out of range for {} cols",
            self.cols
        );
        (0..self.rows)
            .map(|r| self.data[r * self.cols + c])
            .collect()
    }

    /// Iterates over the rows as slices.
    pub fn iter_rows(&self) -> impl Iterator<Item = &[f64]> {
        self.data.chunks_exact(self.cols.max(1))
    }

    /// Matrix transpose.
    pub fn transpose(&self) -> Self {
        let mut out = Self::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.data[c * self.rows + r] = self.data[r * self.cols + c];
            }
        }
        out
    }

    /// Matrix–vector product `self · x`.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch; use [`Matrix::try_matvec`] for a checked
    /// variant.
    pub fn matvec(&self, x: &Vector) -> Vector {
        self.try_matvec(x).expect("dimension mismatch in matvec")
    }

    /// Checked matrix–vector product.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::Shape`] if `x.dim() != cols`.
    pub fn try_matvec(&self, x: &Vector) -> Result<Vector, TensorError> {
        if x.dim() != self.cols {
            return Err(ShapeError::new(vec![self.cols], vec![x.dim()], "matvec").into());
        }
        let xs = x.as_slice();
        let mut out = vec![0.0; self.rows];
        for (o, row) in out.iter_mut().zip(self.data.chunks_exact(self.cols.max(1))) {
            *o = row.iter().zip(xs).map(|(a, b)| a * b).sum();
        }
        Ok(Vector::from(out))
    }

    /// Transposed matrix–vector product `selfᵀ · x`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::Shape`] if `x.dim() != rows`.
    pub fn try_matvec_transposed(&self, x: &Vector) -> Result<Vector, TensorError> {
        if x.dim() != self.rows {
            return Err(
                ShapeError::new(vec![self.rows], vec![x.dim()], "matvec_transposed").into(),
            );
        }
        let xs = x.as_slice();
        let mut out = vec![0.0; self.cols];
        for (r, row) in self.data.chunks_exact(self.cols.max(1)).enumerate() {
            let xr = xs[r];
            for (o, a) in out.iter_mut().zip(row) {
                *o += a * xr;
            }
        }
        Ok(Vector::from(out))
    }

    /// Matrix–matrix product `self · other`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::Shape`] if `self.cols != other.rows`.
    pub fn matmul(&self, other: &Self) -> Result<Self, TensorError> {
        if self.cols != other.rows {
            return Err(ShapeError::new(
                vec![self.cols, other.cols],
                vec![other.rows, other.cols],
                "matmul",
            )
            .into());
        }
        let mut out = Self::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self.data[i * self.cols + k];
                if a == 0.0 {
                    continue;
                }
                let orow = &other.data[k * other.cols..(k + 1) * other.cols];
                let dst = &mut out.data[i * other.cols..(i + 1) * other.cols];
                for (d, &b) in dst.iter_mut().zip(orow) {
                    *d += a * b;
                }
            }
        }
        Ok(out)
    }

    /// Outer product `x · yᵀ`.
    pub fn outer(x: &Vector, y: &Vector) -> Self {
        let mut out = Self::zeros(x.dim(), y.dim());
        for (r, &xr) in x.iter().enumerate() {
            for (c, &yc) in y.iter().enumerate() {
                out.data[r * y.dim() + c] = xr * yc;
            }
        }
        out
    }

    /// In-place `self += alpha * other`.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn axpy(&mut self, alpha: f64, other: &Self) {
        assert_eq!(
            self.shape(),
            other.shape(),
            "shape mismatch in Matrix::axpy"
        );
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += alpha * b;
        }
    }

    /// Scales every entry in place.
    pub fn scale(&mut self, alpha: f64) {
        for a in &mut self.data {
            *a *= alpha;
        }
    }

    /// Returns `self * alpha` without consuming `self`.
    pub fn scaled(&self, alpha: f64) -> Self {
        Self {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|a| a * alpha).collect(),
        }
    }

    /// Applies `f` to every entry, returning a new matrix.
    pub fn map(&self, f: impl Fn(f64) -> f64) -> Self {
        Self {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&a| f(a)).collect(),
        }
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|a| a * a).sum::<f64>().sqrt()
    }

    /// Flattens the matrix into a row-major [`Vector`].
    pub fn flatten(&self) -> Vector {
        Vector::from(self.data.clone())
    }

    /// Rebuilds a matrix from a flattened row-major vector.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::BadBuffer`] if `v.dim() != rows * cols`.
    pub fn from_flat(rows: usize, cols: usize, v: &Vector) -> Result<Self, TensorError> {
        Self::from_vec(rows, cols, v.as_slice().to_vec())
    }

    /// Returns `true` when every entry is finite.
    pub fn is_finite(&self) -> bool {
        self.data.iter().all(|a| a.is_finite())
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;

    fn index(&self, (r, c): (usize, usize)) -> &Self::Output {
        &self.data[r * self.cols + c]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut Self::Output {
        &mut self.data[r * self.cols + c]
    }
}

impl Add<&Matrix> for &Matrix {
    type Output = Matrix;

    fn add(self, rhs: &Matrix) -> Matrix {
        let mut out = self.clone();
        out.axpy(1.0, rhs);
        out
    }
}

impl Sub<&Matrix> for &Matrix {
    type Output = Matrix;

    fn sub(self, rhs: &Matrix) -> Matrix {
        let mut out = self.clone();
        out.axpy(-1.0, rhs);
        out
    }
}

impl Mul<f64> for &Matrix {
    type Output = Matrix;

    fn mul(self, rhs: f64) -> Matrix {
        self.scaled(rhs)
    }
}

impl fmt::Display for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        for r in 0..self.rows.min(8) {
            write!(f, "  ")?;
            for c in 0..self.cols.min(8) {
                write!(f, "{:10.4} ", self.data[r * self.cols + c])?;
            }
            if self.cols > 8 {
                write!(f, "…")?;
            }
            writeln!(f)?;
        }
        if self.rows > 8 {
            writeln!(f, "  …")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn construction_and_shape() {
        let m = Matrix::zeros(2, 3);
        assert_eq!(m.shape(), (2, 3));
        assert_eq!(m.len(), 6);
        assert!(!m.is_empty());
        assert!(Matrix::zeros(0, 0).is_empty());
    }

    #[test]
    fn from_vec_validates_length() {
        assert!(Matrix::from_vec(2, 2, vec![1.0; 4]).is_ok());
        assert!(matches!(
            Matrix::from_vec(2, 2, vec![1.0; 3]),
            Err(TensorError::BadBuffer { .. })
        ));
    }

    #[test]
    fn from_rows_validates_consistency() {
        assert!(Matrix::from_rows(&[]).is_err());
        assert!(Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0]]).is_err());
        let m = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        assert_eq!(m[(1, 0)], 3.0);
    }

    #[test]
    fn identity_matvec_is_noop() {
        let i = Matrix::identity(3);
        let x = Vector::from(vec![1.0, -2.0, 3.0]);
        assert_eq!(i.matvec(&x), x);
    }

    #[test]
    fn matvec_and_transpose_consistency() {
        let m = Matrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]).unwrap();
        let x = Vector::from(vec![1.0, 0.0, -1.0]);
        assert_eq!(m.matvec(&x).as_slice(), &[-2.0, -2.0]);
        let y = Vector::from(vec![1.0, 1.0]);
        let a = m.try_matvec_transposed(&y).unwrap();
        let b = m.transpose().matvec(&y);
        assert_eq!(a, b);
    }

    #[test]
    fn matvec_rejects_bad_dims() {
        let m = Matrix::zeros(2, 3);
        assert!(m.try_matvec(&Vector::zeros(2)).is_err());
        assert!(m.try_matvec_transposed(&Vector::zeros(3)).is_err());
    }

    #[test]
    fn matmul_matches_manual_computation() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        let b = Matrix::from_rows(&[vec![5.0, 6.0], vec![7.0, 8.0]]).unwrap();
        let c = a.matmul(&b).unwrap();
        assert_eq!(c.as_slice(), &[19.0, 22.0, 43.0, 50.0]);
        assert!(a.matmul(&Matrix::zeros(3, 2)).is_err());
    }

    #[test]
    fn matmul_with_identity_is_noop() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let a = Matrix::gaussian(4, 4, 0.0, 1.0, &mut rng);
        let c = a.matmul(&Matrix::identity(4)).unwrap();
        assert_eq!(a, c);
    }

    #[test]
    fn outer_product() {
        let x = Vector::from(vec![1.0, 2.0]);
        let y = Vector::from(vec![3.0, 4.0, 5.0]);
        let o = Matrix::outer(&x, &y);
        assert_eq!(o.shape(), (2, 3));
        assert_eq!(o[(1, 2)], 10.0);
    }

    #[test]
    fn rows_columns_and_iteration() {
        let m = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0], vec![5.0, 6.0]]).unwrap();
        assert_eq!(m.row(1), &[3.0, 4.0]);
        assert_eq!(m.row_vector(2).as_slice(), &[5.0, 6.0]);
        assert_eq!(m.column_vector(1).as_slice(), &[2.0, 4.0, 6.0]);
        assert_eq!(m.iter_rows().count(), 3);
    }

    #[test]
    fn flatten_round_trip() {
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let m = Matrix::uniform(3, 5, -1.0, 1.0, &mut rng);
        let flat = m.flatten();
        let back = Matrix::from_flat(3, 5, &flat).unwrap();
        assert_eq!(m, back);
        assert!(Matrix::from_flat(4, 4, &flat).is_err());
    }

    #[test]
    fn axpy_scale_and_operators() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        let b = Matrix::identity(2);
        let c = &a + &b;
        assert_eq!(c[(0, 0)], 2.0);
        let d = &c - &b;
        assert_eq!(d, a);
        let e = &a * 2.0;
        assert_eq!(e[(1, 1)], 8.0);
        assert!((a.frobenius_norm() - 30.0_f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn map_and_is_finite() {
        let a = Matrix::from_rows(&[vec![-1.0, 4.0]]).unwrap();
        assert_eq!(a.map(f64::abs).as_slice(), &[1.0, 4.0]);
        assert!(a.is_finite());
        let mut b = a.clone();
        b[(0, 0)] = f64::NAN;
        assert!(!b.is_finite());
    }

    #[test]
    fn serde_round_trip() {
        let m = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        let json = serde_json::to_string(&m).unwrap();
        let back: Matrix = serde_json::from_str(&json).unwrap();
        assert_eq!(m, back);
    }

    #[test]
    fn display_is_not_empty() {
        let m = Matrix::identity(2);
        assert!(!format!("{m}").is_empty());
    }
}
