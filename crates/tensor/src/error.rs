//! Error types for tensor operations.

use thiserror::Error;

/// Describes a dimension mismatch between two operands.
#[derive(Debug, Clone, PartialEq, Eq, Error)]
#[error("shape mismatch: expected {expected:?}, found {found:?} in {context}")]
pub struct ShapeError {
    /// The shape the operation required.
    pub expected: Vec<usize>,
    /// The shape that was actually supplied.
    pub found: Vec<usize>,
    /// Human-readable name of the operation that failed.
    pub context: &'static str,
}

impl ShapeError {
    /// Creates a new shape error for `context`, comparing `expected` against `found`.
    pub fn new(expected: Vec<usize>, found: Vec<usize>, context: &'static str) -> Self {
        Self {
            expected,
            found,
            context,
        }
    }
}

/// Errors produced by the tensor crate.
#[derive(Debug, Clone, PartialEq, Error)]
pub enum TensorError {
    /// Two operands had incompatible shapes.
    #[error(transparent)]
    Shape(#[from] ShapeError),
    /// A construction was attempted with an inconsistent buffer length.
    #[error("buffer of length {len} cannot form a {rows}x{cols} matrix")]
    BadBuffer {
        /// Length of the provided buffer.
        len: usize,
        /// Requested number of rows.
        rows: usize,
        /// Requested number of columns.
        cols: usize,
    },
    /// An operation that requires a non-empty tensor received an empty one.
    #[error("operation `{0}` requires a non-empty tensor")]
    Empty(&'static str),
    /// A numeric argument was outside its valid domain.
    #[error("invalid argument for `{context}`: {message}")]
    InvalidArgument {
        /// Operation that rejected the argument.
        context: &'static str,
        /// Explanation of the rejection.
        message: String,
    },
}

impl TensorError {
    /// Convenience constructor for [`TensorError::InvalidArgument`].
    pub fn invalid(context: &'static str, message: impl Into<String>) -> Self {
        Self::InvalidArgument {
            context,
            message: message.into(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_error_displays_context() {
        let err = ShapeError::new(vec![3], vec![4], "dot");
        let msg = err.to_string();
        assert!(msg.contains("dot"));
        assert!(msg.contains("[3]"));
        assert!(msg.contains("[4]"));
    }

    #[test]
    fn tensor_error_from_shape_error() {
        let err: TensorError = ShapeError::new(vec![2, 2], vec![2, 3], "matmul").into();
        assert!(matches!(err, TensorError::Shape(_)));
        assert!(err.to_string().contains("matmul"));
    }

    #[test]
    fn invalid_argument_constructor() {
        let err = TensorError::invalid("quantile", "q must be in [0, 1]");
        assert!(err.to_string().contains("quantile"));
        assert!(err.to_string().contains("[0, 1]"));
    }

    #[test]
    fn errors_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<TensorError>();
        assert_send_sync::<ShapeError>();
    }
}
