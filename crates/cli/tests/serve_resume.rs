//! Process-level crash/recovery pin for `krum serve`: a server killed with
//! SIGKILL mid-job is restarted with `--resume`, the worker *processes*
//! rejoin it through their deterministic backoff loop, and the finished
//! trajectory is **bit-identical** to an uninterrupted run of the same
//! spec — the checkpoint/rejoin machinery is invisible in the metrics.
//!
//! Two flavours: a clean averaging cluster (the original pin) and a
//! Byzantine cluster under the *stateful* reputation-weighted defense,
//! whose per-worker EWMA memory must survive the kill through the
//! checkpoint's stateful-rule sidecar field.

#![cfg(unix)]

use std::io::{BufRead, BufReader, Read};
use std::net::TcpListener;
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use krum_attacks::AttackSpec;
use krum_core::RuleSpec;
use krum_dist::{ClusterSpec, LearningRateSchedule};
use krum_models::EstimatorSpec;
use krum_scenario::{CrashPolicy, ExecutionSpec, InitSpec, ProbeSpec, ScenarioSpec};

/// The columns that must be bit-identical between the interrupted and the
/// uninterrupted run (timing and wire columns legitimately differ). The
/// drift and reputation columns are deterministic too: the tracker and the
/// rule state both resume from the checkpoint.
const DETERMINISTIC_COLUMNS: &[&str] = &[
    "round",
    "loss",
    "accuracy",
    "true_gradient_norm",
    "aggregate_norm",
    "alignment",
    "distance_to_optimum",
    "selected_worker",
    "selected_byzantine",
    "learning_rate",
    "dist_to_honest_mean",
    "attacker_displacement",
    "reputation_spread",
];

fn base_spec(name: &str) -> ScenarioSpec {
    ScenarioSpec {
        name: name.into(),
        cluster: ClusterSpec::new(3, 0).unwrap(),
        rule: RuleSpec::Average,
        attack: AttackSpec::None,
        estimator: EstimatorSpec::GaussianQuadratic { dim: 4, sigma: 0.2 },
        schedule: LearningRateSchedule::Constant { gamma: 0.1 },
        execution: ExecutionSpec::Remote {
            quorum: None,
            max_staleness: 0,
            round_timeout_secs: 60,
            handshake_timeout_secs: 10,
            staffing_timeout_secs: 60,
            heartbeat_secs: 1,
            on_crash: CrashPolicy::WaitForRejoin,
        },
        // Enough rounds that hundreds remain when the kill lands (the
        // per-round checkpointing of phase one keeps rounds slow).
        rounds: 1200,
        eval_every: 300,
        seed: 33,
        init: InitSpec::Fill { value: 1.0 },
        probes: ProbeSpec::default(),
        fault_plan: None,
        compression: None,
    }
}

fn temp_dir(test: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("krum-serve-resume-{}-{test}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Picks a port the OS considers free right now; both serve processes must
/// listen on the *same* address because the workers rejoin the peer they
/// first connected to.
fn free_addr() -> String {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    drop(listener);
    addr.to_string()
}

/// Spawns `krum <args…>` with piped stdout and waits for the serve banner so
/// workers are only started against a live listener.
fn spawn_serve(args: &[&str]) -> (Child, BufReader<std::process::ChildStdout>) {
    let mut child = Command::new(env!("CARGO_BIN_EXE_krum"))
        .args(args)
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("krum binary spawns");
    let mut reader = BufReader::new(child.stdout.take().unwrap());
    let mut banner = String::new();
    reader.read_line(&mut banner).unwrap();
    assert!(
        banner.contains("serving on"),
        "expected the serve banner, got: {banner}"
    );
    (child, reader)
}

/// Strips the CSV down to its deterministic columns, one string per row.
fn deterministic_rows(csv: &str) -> Vec<String> {
    let mut lines = csv.lines().filter(|l| !l.starts_with('#'));
    let header = lines.next().expect("csv has a header row");
    let names: Vec<&str> = header.split(',').collect();
    let picks: Vec<usize> = DETERMINISTIC_COLUMNS
        .iter()
        .map(|want| {
            names
                .iter()
                .position(|n| n == want)
                .unwrap_or_else(|| panic!("column `{want}` missing from: {header}"))
        })
        .collect();
    lines
        .map(|line| {
            let cells: Vec<&str> = line.split(',').collect();
            picks
                .iter()
                .map(|&i| cells[i])
                .collect::<Vec<_>>()
                .join(",")
        })
        .collect()
}

/// The full kill -9 → resume → compare-to-control roundtrip for one spec.
/// `connections` is the number of worker processes the job needs (honest
/// workers plus one adversary connection when `f > 0`).
fn kill9_roundtrip(tag: &str, spec: ScenarioSpec, connections: usize) -> Vec<String> {
    let dir = temp_dir(tag);
    let ckpt_dir = dir.join("ckpts");
    let out_dir = dir.join("out");
    std::fs::create_dir_all(&ckpt_dir).unwrap();
    let spec_path = dir.join("spec.json");
    std::fs::write(&spec_path, spec.to_json().unwrap()).unwrap();
    let addr = free_addr();

    // Serve with per-round checkpoints, then staff it with real worker
    // processes that are allowed to rejoin. The stdout reader must outlive
    // the child: dropping it closes the pipe and turns the server's own
    // summary lines into EPIPE failures.
    let (mut serve, _serve_out) = spawn_serve(&[
        "serve",
        spec_path.to_str().unwrap(),
        "--listen",
        &addr,
        "--checkpoint-dir",
        ckpt_dir.to_str().unwrap(),
        "--checkpoint-every",
        "1",
    ]);
    let workers: Vec<Child> = (0..connections)
        .map(|_| {
            Command::new(env!("CARGO_BIN_EXE_krum"))
                .args(["worker", "--connect", &addr, "--retries", "60"])
                .stdout(Stdio::piped())
                .stderr(Stdio::piped())
                .spawn()
                .expect("worker spawns")
        })
        .collect();

    // Kill -9 the server once the job has demonstrably checkpointed.
    let ckpt = ckpt_dir.join("job-0.ckpt");
    let deadline = Instant::now() + Duration::from_secs(30);
    while !ckpt.exists() {
        assert!(Instant::now() < deadline, "no checkpoint appeared in 30s");
        std::thread::sleep(Duration::from_millis(2));
    }
    std::thread::sleep(Duration::from_millis(100));
    assert!(
        serve.try_wait().unwrap().is_none(),
        "the job finished before the kill; raise `rounds` in the spec"
    );
    serve.kill().unwrap(); // SIGKILL on unix
    serve.wait().unwrap();

    // Resume from the checkpoints on the same address; the orphaned worker
    // processes are mid-backoff and rejoin it on their own. Checkpoint
    // less often on the way out — re-serialising the whole history every
    // round is the slow part, not the rounds.
    let (mut resumed, mut resumed_out) = spawn_serve(&[
        "serve",
        "--resume",
        ckpt_dir.to_str().unwrap(),
        "--listen",
        &addr,
        "--checkpoint-every",
        "100",
        "--out",
        out_dir.to_str().unwrap(),
    ]);
    let status = resumed.wait().unwrap();
    let mut resumed_stdout = String::new();
    resumed_out.read_to_string(&mut resumed_stdout).unwrap();
    let mut resumed_stderr = String::new();
    resumed
        .stderr
        .take()
        .unwrap()
        .read_to_string(&mut resumed_stderr)
        .unwrap();
    assert!(
        status.success(),
        "resumed serve must finish cleanly; stdout: {resumed_stdout} stderr: {resumed_stderr}"
    );

    // Every worker process survived the server's death, reports at least
    // one reconnect, and saw the job through to completion.
    for worker in workers {
        let output = worker.wait_with_output().unwrap();
        let stdout = String::from_utf8_lossy(&output.stdout).to_string();
        assert!(
            output.status.success(),
            "worker failed: {stdout} / {}",
            String::from_utf8_lossy(&output.stderr)
        );
        assert!(stdout.contains("shutdown: job complete"), "got: {stdout}");
        let reconnects: u64 = stdout
            .split(" reconnect(s)")
            .next()
            .and_then(|s| s.rsplit(' ').next())
            .and_then(|s| s.parse().ok())
            .unwrap_or_else(|| panic!("no reconnect count in: {stdout}"));
        assert!(reconnects >= 1, "worker never rejoined: {stdout}");
    }

    // The stitched trajectory is bit-identical to an uninterrupted run of
    // the same spec (loopback serves the same Remote spec in one process).
    let control_csv = dir.join("control.csv");
    let control = Command::new(env!("CARGO_BIN_EXE_krum"))
        .args([
            "loopback",
            spec_path.to_str().unwrap(),
            "--csv",
            control_csv.to_str().unwrap(),
            "--quiet",
        ])
        .output()
        .expect("control loopback runs");
    assert!(
        control.status.success(),
        "control run failed: {}",
        String::from_utf8_lossy(&control.stderr)
    );
    let resumed_csv = std::fs::read_to_string(out_dir.join(format!("{}.csv", spec.name))).unwrap();
    let control_csv = std::fs::read_to_string(&control_csv).unwrap();
    let resumed_rows = deterministic_rows(&resumed_csv);
    let control_rows = deterministic_rows(&control_csv);
    assert_eq!(
        resumed_rows.len(),
        spec.rounds,
        "all rounds must be present"
    );
    assert_eq!(
        resumed_rows, control_rows,
        "a SIGKILL + resume must be invisible in the deterministic columns"
    );

    std::fs::remove_dir_all(&dir).unwrap();
    resumed_rows
}

#[test]
fn sigkilled_serve_resumes_bit_identically_through_real_processes() {
    kill9_roundtrip("kill9", base_spec("serve-resume"), 3);
}

/// The stateful-defense flavour: a Byzantine cluster under
/// reputation-weighted aggregation is SIGKILLed mid-job and resumed. The
/// per-worker EWMA weights ride the checkpoint's `stateful_rule` field and
/// the drift tracker restarts from the last recorded displacement, so the
/// stitched CSV — including `reputation_spread` and
/// `attacker_displacement` — is bit-identical to the uninterrupted control.
#[test]
fn sigkilled_reputation_weighted_serve_resumes_bit_identically() {
    let mut spec = base_spec("serve-resume-rw");
    spec.cluster = ClusterSpec::new(4, 1).unwrap();
    spec.rule = RuleSpec::ReputationWeighted { eta: 0.2 };
    spec.attack = AttackSpec::SignFlip { scale: 3.0 };
    spec.seed = 41;
    let rows = kill9_roundtrip("kill9-rw", spec, 4);
    // The stateful columns are genuinely live in the stitched run: at
    // least one row carries a finite reputation spread and displacement.
    let live = rows.iter().any(|row| {
        let cells: Vec<&str> = row.split(',').collect();
        let spread = cells[DETERMINISTIC_COLUMNS
            .iter()
            .position(|c| *c == "reputation_spread")
            .unwrap()];
        let displacement = cells[DETERMINISTIC_COLUMNS
            .iter()
            .position(|c| *c == "attacker_displacement")
            .unwrap()];
        !spread.is_empty() && !displacement.is_empty()
    });
    assert!(live, "reputation/drift columns never filled in: {rows:?}");
}
