//! The acceptance pin of the declarative scenario API: one JSON scenario
//! produces **bit-identical parameter trajectories** through all three
//! construction paths —
//!
//! 1. the `krum` binary (`krum run scenarios/smoke.json`),
//! 2. the in-process `Scenario::run()`,
//! 3. the legacy hand-wired `SyncTrainer`,
//!
//! because every random stream derives from the spec's seed. The test also
//! asserts the exported CSV is well-formed (the same check CI runs on the
//! smoke scenario).

use std::path::{Path, PathBuf};
use std::process::Command;

use krum_dist::{SyncTrainer, TrainingConfig};
use krum_metrics::RoundRecord;
use krum_scenario::{Scenario, ScenarioReport, ScenarioSpec};
use krum_tensor::Vector;

fn smoke_spec_path() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../scenarios/smoke.json")
}

/// One directory per test: the three tests run on parallel threads of one
/// process, so a shared per-pid directory would race their cleanup.
fn temp_dir(test: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("krum-cli-trajectory-{}-{test}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn json_scenario_is_bit_identical_across_cli_scenario_and_legacy_paths() {
    let spec_path = smoke_spec_path();
    let json = std::fs::read_to_string(&spec_path).expect("scenarios/smoke.json is checked in");
    let spec = ScenarioSpec::from_json(&json).expect("smoke spec is valid");

    // Path 1: the binary, exporting the full report as JSON and CSV.
    let dir = temp_dir("bit-identical");
    let report_json = dir.join("smoke-report.json");
    let report_csv = dir.join("smoke-report.csv");
    let output = Command::new(env!("CARGO_BIN_EXE_krum"))
        .args([
            "run",
            spec_path.to_str().unwrap(),
            "--json",
            report_json.to_str().unwrap(),
            "--csv",
            report_csv.to_str().unwrap(),
        ])
        .output()
        .expect("krum binary runs");
    assert!(
        output.status.success(),
        "krum run failed: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    let cli_report: ScenarioReport =
        serde_json::from_str(&std::fs::read_to_string(&report_json).unwrap())
            .expect("report JSON parses");

    // Path 2: the in-process scenario API from the same JSON.
    let api_report = Scenario::from_json(&json).unwrap().run().unwrap();

    // Path 3: the legacy hand-wired trainer from the same field values.
    let workload = spec
        .estimator
        .build(spec.cluster.honest(), spec.seed)
        .unwrap();
    let mut trainer = SyncTrainer::new(
        spec.cluster,
        spec.rule
            .build(spec.cluster.workers(), spec.cluster.byzantine())
            .unwrap(),
        spec.attack.build(workload.dim).unwrap(),
        workload.estimators,
        TrainingConfig {
            rounds: spec.rounds,
            schedule: spec.schedule,
            seed: spec.seed,
            eval_every: spec.eval_every,
            known_optimum: workload.optimum,
        },
    )
    .unwrap();
    let start = match spec.init {
        krum_scenario::InitSpec::Fill { value } => Vector::filled(workload.dim, value),
        ref other => panic!("smoke scenario uses a fill init, got {other:?}"),
    };
    let (legacy_params, legacy_history) = trainer.run(start).unwrap();

    // Bit-identical final parameters across all three paths.
    assert_eq!(cli_report.final_params, api_report.final_params);
    assert_eq!(api_report.final_params, legacy_params);

    // Bit-identical per-round trajectories (aggregate norms, selections and
    // distances are deterministic functions of the parameter path).
    assert_eq!(cli_report.history.len(), spec.rounds);
    assert_eq!(api_report.history.len(), legacy_history.len());
    for ((cli, api), legacy) in cli_report
        .history
        .rounds
        .iter()
        .zip(&api_report.history.rounds)
        .zip(&legacy_history.rounds)
    {
        assert_eq!(cli.aggregate_norm, api.aggregate_norm);
        assert_eq!(api.aggregate_norm, legacy.aggregate_norm);
        assert_eq!(cli.distance_to_optimum, legacy.distance_to_optimum);
        assert_eq!(cli.selected_worker, legacy.selected_worker);
        assert_eq!(cli.loss, legacy.loss);
    }

    // The exported CSV is well-formed: metadata comments, then the standard
    // header, then one complete row per round whose norms match the report.
    let csv = std::fs::read_to_string(&report_csv).unwrap();
    let lines: Vec<&str> = csv.lines().collect();
    assert!(lines[0].starts_with("# scenario: smoke"));
    let header_idx = lines
        .iter()
        .position(|l| l.starts_with("round,loss"))
        .expect("standard CSV header present");
    assert!(lines[..header_idx].iter().all(|l| l.starts_with("# ")));
    let rows = &lines[header_idx + 1..];
    assert_eq!(rows.len(), spec.rounds);
    let cells = RoundRecord::csv_header().split(',').count();
    for (row, record) in rows.iter().zip(&api_report.history.rounds) {
        let fields: Vec<&str> = row.split(',').collect();
        assert_eq!(fields.len(), cells, "malformed row: {row}");
        // f64 Display round-trips exactly, so parsing the CSV cell back
        // recovers the bit pattern the engine produced.
        let norm: f64 = fields[4].parse().unwrap();
        assert_eq!(norm, record.aggregate_norm);
    }

    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn cli_sweep_writes_well_formed_csv_per_cell() {
    let dir = temp_dir("sweep").join("sweep-out");
    let output = Command::new(env!("CARGO_BIN_EXE_krum"))
        .args([
            "sweep",
            smoke_spec_path().to_str().unwrap(),
            "--rule",
            "krum,median",
            "--seed",
            "1,2",
            "--rounds",
            "4",
            "--out",
            dir.to_str().unwrap(),
        ])
        .output()
        .expect("krum binary runs");
    assert!(
        output.status.success(),
        "krum sweep failed: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(stdout.contains("sweep complete: 4/4 cells ran"), "{stdout}");
    let csvs: Vec<_> = std::fs::read_dir(&dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .collect();
    assert_eq!(csvs.len(), 4);
    for path in csvs {
        let content = std::fs::read_to_string(&path).unwrap();
        assert!(content.contains("round,loss"), "{path:?} lacks the header");
        assert_eq!(
            content.lines().filter(|l| !l.starts_with('#')).count(),
            1 + 4,
            "{path:?} should carry the header plus 4 rounds"
        );
    }
    std::fs::remove_dir_all(dir.parent().unwrap()).unwrap();
}

#[test]
fn cli_rejects_invalid_specs_with_structured_errors() {
    let dir = temp_dir("invalid-specs");
    let bad = dir.join("bad.json");
    std::fs::write(&bad, "{\"name\": \"x\"}").unwrap();
    let output = Command::new(env!("CARGO_BIN_EXE_krum"))
        .args(["run", bad.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(!output.status.success());
    assert_eq!(output.status.code(), Some(1));
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(stderr.contains("scenario error"), "stderr: {stderr}");

    let output = Command::new(env!("CARGO_BIN_EXE_krum"))
        .args(["frobnicate"])
        .output()
        .unwrap();
    assert_eq!(output.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&output.stderr).contains("usage: krum"));
    std::fs::remove_dir_all(&dir).unwrap();
}
