//! The `krum` binary — a thin shell around the library in `lib.rs`.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut stdout = std::io::stdout();
    std::process::exit(krum_cli::main_with(&args, &mut stdout));
}
