//! # krum-cli
//!
//! The `krum` command line: drives declarative scenarios (see
//! `krum-scenario`) from JSON files — single runs, cartesian sweeps and
//! registry inspection — with CSV/JSON export of the per-round metrics.
//!
//! ```text
//! krum run scenarios/smoke.json --csv out.csv
//! krum sweep scenarios/smoke.json --rule krum,median --f 2..6 --out sweeps/
//! krum list
//! krum template > my-scenario.json
//! ```
//!
//! The argument parser is hand-rolled (the build environment vendors no CLI
//! crate) and lives here, in library form, so it is unit-testable; the
//! binary in `main.rs` is a thin shell around [`execute`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Write as _;
use std::path::{Path, PathBuf};

use krum_attacks::{AttackSpec, ATTACK_NAMES};
use krum_compress::CODEC_GRAMMAR;
use krum_core::{RuleSpec, StageRule, RULE_NAMES};
use krum_dist::{ClusterSpec, LATENCY_MODEL_NAMES};
use krum_scenario::{
    ExecutionSpec, Scenario, ScenarioError, ScenarioReport, ScenarioSpec,
    DEFAULT_HANDSHAKE_TIMEOUT_SECS, DEFAULT_HEARTBEAT_SECS, DEFAULT_ROUND_TIMEOUT_SECS,
    DEFAULT_STAFFING_TIMEOUT_SECS, EXECUTION_NAMES,
};
use krum_server::{run_chaos, run_loopback_jobs, ChaosOptions, Server, ServerError, WorkerClient};
use krum_wire::{FRAME_NAMES, PROTOCOL_VERSION};
use thiserror::Error;

/// Errors raised by the command line.
#[derive(Debug, Error)]
pub enum CliError {
    /// The arguments did not form a valid command.
    #[error("{0}\n\n{USAGE}")]
    Usage(String),
    /// A scenario failed to parse, validate, build or run.
    #[error("scenario error: {0}")]
    Scenario(#[from] ScenarioError),
    /// The aggregation server, a worker session or a loopback run failed.
    #[error("server error: {0}")]
    Server(#[from] ServerError),
    /// A file could not be read or written.
    #[error("io error on `{path}`: {source}")]
    Io {
        /// The offending path.
        path: String,
        /// The underlying error.
        source: std::io::Error,
    },
    /// The static-analysis pass itself failed (I/O, lex, bad baseline).
    #[error("audit error: {0}")]
    Audit(#[from] krum_audit::AuditError),
    /// `krum audit --deny` found unsuppressed findings (the report has
    /// already been written to the output stream).
    #[error("audit failed: {0} unsuppressed finding(s)")]
    AuditFindings(usize),
}

/// The usage banner printed on argument errors and `krum help`.
pub const USAGE: &str = "\
usage: krum <command> [options]

commands:
  run <spec.json> [--csv PATH] [--json PATH] [--quiet]
      Run one scenario and print its summary. --csv / --json export the
      per-round metrics (CSV carries a human-readable metadata header).

  sweep <base.json> [axes…] [--out DIR] [--quiet]
      Run the cartesian product of the base scenario and the given axes,
      printing one summary row per cell. Cells whose constraints fail
      (e.g. krum with 2f + 2 >= n) are reported and skipped. With --out,
      each cell's metrics are written to DIR/<name>.csv.
      axes:
        --rule r1,r2,…     rule specs (e.g. krum,median,multi-krum:m=4)
        --attack a1,a2,…   attack specs (e.g. sign-flip:scale=5,none)
        --n LIST|A..B      worker counts (e.g. 10,20 or 10..14)
        --f LIST|A..B      byzantine counts (e.g. 2..6)
        --seed LIST|A..B   master seeds
        --attack-sigma LIST|A..B
                           inlier-drift sigma-band widths (floats, e.g.
                           0.5,1,1.5; a range steps by 1.0). Cells whose
                           attack is not inlier-drift are reported and
                           skipped.
        --quorum LIST|A..B quorum sizes (base must use AsyncQuorum execution)
        --groups LIST|A..B hierarchical group counts (krum base becomes
                           hierarchical:groups=g; a hierarchical base keeps
                           its stages and sweeps its group count)
        --rounds K         override the round count
  serve <spec.json> [--listen ADDR] [--jobs K] [--out DIR] [--quiet]
        [--checkpoint-dir DIR] [--checkpoint-every N] [--resume DIR]
      Host the scenario as a networked aggregation service: workers connect
      over TCP (krum-wire framing), rounds close on real arrival order, and
      K jobs run concurrently (job k uses name#k and seed+k). Default
      --listen 127.0.0.1:7878, --jobs 1. With --out, each finished job's
      metrics are written to DIR/<name>.csv. With --checkpoint-dir, every
      N-th round (default every round) writes DIR/job-<k>.ckpt; --resume DIR
      rebuilds the jobs from those checkpoints instead of a spec file and
      continues bit-identically once the workers rejoin.

  worker [--connect ADDR] [--retries N] [--protocol V]
      Join a serving aggregation server as one worker connection (honest
      estimator or the adversary — the server assigns the role). Default
      --connect 127.0.0.1:7878. With --retries, a dropped connection is
      retried up to N times under deterministic jittered backoff (Rejoin
      handshake); default 0 = fail fast. --protocol pins the announced
      wire-protocol version (e.g. 1 to force uncompressed frames against
      a v2 server); default the current version.

  chaos <spec.json> [--csv PATH] [--quiet]
      Run the scenario's fault_plan through the deterministic chaos
      harness: server + workers in one process behind a fault-injecting
      proxy (drop/delay/blackhole/truncate/corrupt frames, kill and resume
      the server). Prints recovery accounting; exits non-zero if the run
      does not survive the plan.

  loopback <spec.json> [--jobs K] [--csv PATH] [--json PATH] [--quiet]
      Serve the scenario and its workers inside one process over localhost
      sockets (CI-friendly). With barrier rounds the trajectory is
      bit-identical to `krum run` for the same spec; --csv / --json export
      job 0's metrics, including the wire_bytes/arrival_nanos columns.

  audit [--root DIR] [--config PATH] [--json] [--deny]
      Run the workspace static-analysis pass (determinism + never-panic
      lints: DET001-003, PANIC001, SAFE001) over DIR (default `.`).
      Suppressions come from --config (default DIR/audit.toml; every entry
      needs a written justification). --json emits the versioned report
      schema instead of human diagnostics; --deny exits non-zero when any
      unsuppressed finding remains (the CI gate).

  list
      Print every rule, attack, workload kind, execution strategy and
      latency model the registries know, the wire-protocol version, and
      the audit lint codes.

  template
      Print an example scenario JSON to adapt.

  help
      Print this message.";

/// A parsed `krum` invocation.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// `krum run`.
    Run {
        /// Path of the scenario JSON file.
        spec_path: String,
        /// Optional CSV export path.
        csv: Option<String>,
        /// Optional JSON export path.
        json: Option<String>,
        /// Suppress the summary (exports still happen).
        quiet: bool,
    },
    /// `krum sweep`.
    Sweep {
        /// Path of the base scenario JSON file.
        base_path: String,
        /// The sweep axes.
        axes: SweepAxes,
        /// Directory receiving one CSV per cell.
        out: Option<String>,
        /// Suppress per-cell summary rows.
        quiet: bool,
    },
    /// `krum serve`.
    Serve {
        /// Path of the scenario JSON file (empty when `--resume` is used).
        spec_path: String,
        /// Listen address (`host:port`).
        listen: String,
        /// Number of concurrent jobs.
        jobs: usize,
        /// Directory receiving one CSV per finished job.
        out: Option<String>,
        /// Suppress progress output.
        quiet: bool,
        /// Directory receiving periodic job checkpoints.
        checkpoint_dir: Option<String>,
        /// Checkpoint cadence in rounds (only meaningful with a directory).
        checkpoint_every: u64,
        /// Resume the jobs found in this checkpoint directory instead of
        /// starting from a spec file.
        resume: Option<String>,
    },
    /// `krum worker`.
    Worker {
        /// Server address to connect to.
        connect: String,
        /// Rejoin attempts after a dropped connection (0 = fail fast).
        retries: u32,
        /// Wire-protocol version to announce in the handshake (a v1
        /// session never negotiates compressed frames).
        protocol: u16,
    },
    /// `krum chaos`.
    Chaos {
        /// Path of the scenario JSON file (must carry a `fault_plan`).
        spec_path: String,
        /// Optional CSV export path for the surviving trajectory.
        csv: Option<String>,
        /// Suppress the recovery accounting summary.
        quiet: bool,
    },
    /// `krum loopback`.
    Loopback {
        /// Path of the scenario JSON file.
        spec_path: String,
        /// Number of concurrent jobs.
        jobs: usize,
        /// Optional CSV export path (job 0).
        csv: Option<String>,
        /// Optional JSON export path (job 0).
        json: Option<String>,
        /// Suppress the summary (exports still happen).
        quiet: bool,
    },
    /// `krum audit`.
    Audit {
        /// Workspace root to scan.
        root: String,
        /// Suppression baseline path (`None` → `<root>/audit.toml`, which
        /// may be absent — an absent default means no suppressions).
        config: Option<String>,
        /// Emit the versioned JSON report instead of human diagnostics.
        json: bool,
        /// Exit non-zero when unsuppressed findings remain.
        deny: bool,
    },
    /// `krum list`.
    List,
    /// `krum template`.
    Template,
    /// `krum help`.
    Help,
}

/// Default address for `krum serve --listen` / `krum worker --connect`.
pub const DEFAULT_ADDR: &str = "127.0.0.1:7878";

/// The axes of a cartesian sweep; empty axes keep the base spec's value.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SweepAxes {
    /// Rules to sweep (empty → base rule).
    pub rules: Vec<RuleSpec>,
    /// Attacks to sweep (empty → base attack).
    pub attacks: Vec<AttackSpec>,
    /// Worker counts to sweep (empty → base n).
    pub ns: Vec<usize>,
    /// Byzantine counts to sweep (empty → base f).
    pub fs: Vec<usize>,
    /// Seeds to sweep (empty → base seed).
    pub seeds: Vec<u64>,
    /// Inlier-drift sigma-band widths to sweep (empty → attack unchanged;
    /// requires an `inlier-drift` attack in each cell).
    pub attack_sigmas: Vec<f64>,
    /// Quorum sizes to sweep (empty → base execution unchanged; requires an
    /// `AsyncQuorum` base execution).
    pub quorums: Vec<usize>,
    /// Hierarchical group counts to sweep (empty → rule unchanged; requires
    /// a `krum` or `hierarchical` rule in each cell).
    pub groups: Vec<usize>,
    /// Round-count override.
    pub rounds: Option<usize>,
}

/// Parses a `krum` argument list (without the program name).
///
/// # Errors
///
/// Returns [`CliError::Usage`] describing the first malformed argument.
pub fn parse(args: &[String]) -> Result<Command, CliError> {
    let usage = |message: String| CliError::Usage(message);
    let mut it = args.iter().map(String::as_str);
    match it.next() {
        None | Some("help") | Some("--help") | Some("-h") => Ok(Command::Help),
        Some("list") => Ok(Command::List),
        Some("template") => Ok(Command::Template),
        Some("run") => {
            let mut spec_path = None;
            let mut csv = None;
            let mut json = None;
            let mut quiet = false;
            while let Some(arg) = it.next() {
                match arg {
                    "--csv" => csv = Some(expect_value(&mut it, "--csv")?),
                    "--json" => json = Some(expect_value(&mut it, "--json")?),
                    "--quiet" => quiet = true,
                    flag if flag.starts_with('-') => {
                        return Err(usage(format!("unknown `run` option `{flag}`")))
                    }
                    path if spec_path.is_none() => spec_path = Some(path.to_string()),
                    extra => return Err(usage(format!("unexpected argument `{extra}`"))),
                }
            }
            let spec_path =
                spec_path.ok_or_else(|| usage("`run` needs a scenario file".to_string()))?;
            Ok(Command::Run {
                spec_path,
                csv,
                json,
                quiet,
            })
        }
        Some("serve") => {
            let mut spec_path = None;
            let mut listen = DEFAULT_ADDR.to_string();
            let mut jobs = 1usize;
            let mut out = None;
            let mut quiet = false;
            let mut checkpoint_dir = None;
            let mut checkpoint_every = 1u64;
            let mut resume = None;
            while let Some(arg) = it.next() {
                match arg {
                    "--listen" => listen = expect_value(&mut it, "--listen")?,
                    "--jobs" => jobs = parse_count(&expect_value(&mut it, "--jobs")?, "--jobs")?,
                    "--out" => out = Some(expect_value(&mut it, "--out")?),
                    "--quiet" => quiet = true,
                    "--checkpoint-dir" => {
                        checkpoint_dir = Some(expect_value(&mut it, "--checkpoint-dir")?);
                    }
                    "--checkpoint-every" => {
                        checkpoint_every = parse_count(
                            &expect_value(&mut it, "--checkpoint-every")?,
                            "--checkpoint-every",
                        )? as u64;
                    }
                    "--resume" => resume = Some(expect_value(&mut it, "--resume")?),
                    flag if flag.starts_with('-') => {
                        return Err(usage(format!("unknown `serve` option `{flag}`")))
                    }
                    path if spec_path.is_none() => spec_path = Some(path.to_string()),
                    extra => return Err(usage(format!("unexpected argument `{extra}`"))),
                }
            }
            let spec_path = match (&spec_path, &resume) {
                (Some(_), Some(_)) => {
                    return Err(usage(
                        "`serve` takes a scenario file or --resume DIR, not both".to_string(),
                    ))
                }
                (None, None) => {
                    return Err(usage(
                        "`serve` needs a scenario file (or --resume DIR)".to_string(),
                    ))
                }
                _ => spec_path.unwrap_or_default(),
            };
            Ok(Command::Serve {
                spec_path,
                listen,
                jobs,
                out,
                quiet,
                checkpoint_dir,
                checkpoint_every,
                resume,
            })
        }
        Some("audit") => {
            let mut root = ".".to_string();
            let mut config = None;
            let mut json = false;
            let mut deny = false;
            while let Some(arg) = it.next() {
                match arg {
                    "--root" => root = expect_value(&mut it, "--root")?,
                    "--config" => config = Some(expect_value(&mut it, "--config")?),
                    "--json" => json = true,
                    "--deny" => deny = true,
                    extra => return Err(usage(format!("unknown `audit` option `{extra}`"))),
                }
            }
            Ok(Command::Audit {
                root,
                config,
                json,
                deny,
            })
        }
        Some("worker") => {
            let mut connect = DEFAULT_ADDR.to_string();
            let mut retries = 0u32;
            let mut protocol = PROTOCOL_VERSION;
            while let Some(arg) = it.next() {
                match arg {
                    "--connect" => connect = expect_value(&mut it, "--connect")?,
                    "--retries" => {
                        let raw = expect_value(&mut it, "--retries")?;
                        retries = raw.trim().parse().map_err(|_| {
                            usage(format!("--retries expects an integer, got `{raw}`"))
                        })?;
                    }
                    "--protocol" => {
                        let raw = expect_value(&mut it, "--protocol")?;
                        protocol = raw.trim().parse().map_err(|_| {
                            usage(format!("--protocol expects a version number, got `{raw}`"))
                        })?;
                    }
                    extra => return Err(usage(format!("unknown `worker` option `{extra}`"))),
                }
            }
            Ok(Command::Worker {
                connect,
                retries,
                protocol,
            })
        }
        Some("chaos") => {
            let mut spec_path = None;
            let mut csv = None;
            let mut quiet = false;
            while let Some(arg) = it.next() {
                match arg {
                    "--csv" => csv = Some(expect_value(&mut it, "--csv")?),
                    "--quiet" => quiet = true,
                    flag if flag.starts_with('-') => {
                        return Err(usage(format!("unknown `chaos` option `{flag}`")))
                    }
                    path if spec_path.is_none() => spec_path = Some(path.to_string()),
                    extra => return Err(usage(format!("unexpected argument `{extra}`"))),
                }
            }
            let spec_path =
                spec_path.ok_or_else(|| usage("`chaos` needs a scenario file".to_string()))?;
            Ok(Command::Chaos {
                spec_path,
                csv,
                quiet,
            })
        }
        Some("loopback") => {
            let mut spec_path = None;
            let mut jobs = 1usize;
            let mut csv = None;
            let mut json = None;
            let mut quiet = false;
            while let Some(arg) = it.next() {
                match arg {
                    "--jobs" => jobs = parse_count(&expect_value(&mut it, "--jobs")?, "--jobs")?,
                    "--csv" => csv = Some(expect_value(&mut it, "--csv")?),
                    "--json" => json = Some(expect_value(&mut it, "--json")?),
                    "--quiet" => quiet = true,
                    flag if flag.starts_with('-') => {
                        return Err(usage(format!("unknown `loopback` option `{flag}`")))
                    }
                    path if spec_path.is_none() => spec_path = Some(path.to_string()),
                    extra => return Err(usage(format!("unexpected argument `{extra}`"))),
                }
            }
            let spec_path =
                spec_path.ok_or_else(|| usage("`loopback` needs a scenario file".to_string()))?;
            Ok(Command::Loopback {
                spec_path,
                jobs,
                csv,
                json,
                quiet,
            })
        }
        Some("sweep") => {
            let mut base_path = None;
            let mut axes = SweepAxes::default();
            let mut out = None;
            let mut quiet = false;
            while let Some(arg) = it.next() {
                match arg {
                    "--rule" => {
                        axes.rules = split_list(&expect_value(&mut it, "--rule")?)
                            .map(|s| s.parse::<RuleSpec>())
                            .collect::<Result<_, _>>()
                            .map_err(|e| usage(format!("--rule: {e}")))?;
                    }
                    "--attack" => {
                        axes.attacks = split_list(&expect_value(&mut it, "--attack")?)
                            .map(|s| s.parse::<AttackSpec>())
                            .collect::<Result<_, _>>()
                            .map_err(|e| usage(format!("--attack: {e}")))?;
                    }
                    "--n" => axes.ns = parse_axis(&expect_value(&mut it, "--n")?, "--n")?,
                    "--f" => axes.fs = parse_axis(&expect_value(&mut it, "--f")?, "--f")?,
                    "--quorum" => {
                        axes.quorums = parse_axis(&expect_value(&mut it, "--quorum")?, "--quorum")?;
                    }
                    "--groups" => {
                        axes.groups = parse_axis(&expect_value(&mut it, "--groups")?, "--groups")?;
                    }
                    "--seed" => {
                        axes.seeds = parse_axis(&expect_value(&mut it, "--seed")?, "--seed")?
                            .into_iter()
                            .map(|s| s as u64)
                            .collect();
                    }
                    "--attack-sigma" => {
                        axes.attack_sigmas = parse_f64_axis(
                            &expect_value(&mut it, "--attack-sigma")?,
                            "--attack-sigma",
                        )?;
                    }
                    "--rounds" => {
                        let value = expect_value(&mut it, "--rounds")?;
                        axes.rounds = Some(value.parse().map_err(|_| {
                            usage(format!("--rounds expects an integer, got `{value}`"))
                        })?);
                    }
                    "--out" => out = Some(expect_value(&mut it, "--out")?),
                    "--quiet" => quiet = true,
                    flag if flag.starts_with('-') => {
                        return Err(usage(format!("unknown `sweep` option `{flag}`")))
                    }
                    path if base_path.is_none() => base_path = Some(path.to_string()),
                    extra => return Err(usage(format!("unexpected argument `{extra}`"))),
                }
            }
            let base_path =
                base_path.ok_or_else(|| usage("`sweep` needs a base scenario file".to_string()))?;
            Ok(Command::Sweep {
                base_path,
                axes,
                out,
                quiet,
            })
        }
        Some(other) => Err(usage(format!("unknown command `{other}`"))),
    }
}

fn expect_value<'a>(
    it: &mut impl Iterator<Item = &'a str>,
    flag: &str,
) -> Result<String, CliError> {
    it.next()
        .map(str::to_string)
        .ok_or_else(|| CliError::Usage(format!("{flag} needs a value")))
}

/// Parses a strictly positive count (e.g. `--jobs`).
fn parse_count(raw: &str, flag: &str) -> Result<usize, CliError> {
    let malformed = || CliError::Usage(format!("{flag} expects a positive integer, got `{raw}`"));
    let value: usize = raw.trim().parse().map_err(|_| malformed())?;
    if value == 0 {
        return Err(malformed());
    }
    Ok(value)
}

fn split_list(raw: &str) -> impl Iterator<Item = &str> {
    raw.split(',').map(str::trim).filter(|s| !s.is_empty())
}

/// Parses an integer axis: either a comma list (`2,4,6`) or an inclusive
/// range (`2..6`).
pub fn parse_axis(raw: &str, flag: &str) -> Result<Vec<usize>, CliError> {
    let malformed = || {
        CliError::Usage(format!(
            "{flag} expects a comma list (`2,4,6`) or an inclusive range (`2..6`), got `{raw}`"
        ))
    };
    if let Some((lo, hi)) = raw.split_once("..") {
        let lo: usize = lo.trim().parse().map_err(|_| malformed())?;
        let hi: usize = hi.trim().parse().map_err(|_| malformed())?;
        if lo > hi {
            return Err(malformed());
        }
        Ok((lo..=hi).collect())
    } else {
        let values: Vec<usize> = split_list(raw)
            .map(|s| s.parse().map_err(|_| malformed()))
            .collect::<Result<_, _>>()?;
        if values.is_empty() {
            return Err(malformed());
        }
        Ok(values)
    }
}

/// Parses a float axis: either a comma list (`0.5,1,1.5`) or an inclusive
/// range (`1..3`) stepping by 1.0. Values must be finite and positive.
pub fn parse_f64_axis(raw: &str, flag: &str) -> Result<Vec<f64>, CliError> {
    let malformed = || {
        CliError::Usage(format!(
            "{flag} expects a comma list of positive floats (`0.5,1,1.5`) or an inclusive \
             range stepping by 1 (`1..3`), got `{raw}`"
        ))
    };
    let parse_one = |s: &str| -> Result<f64, CliError> {
        let value: f64 = s.trim().parse().map_err(|_| malformed())?;
        if !value.is_finite() || value <= 0.0 {
            return Err(malformed());
        }
        Ok(value)
    };
    if let Some((lo, hi)) = raw.split_once("..") {
        let lo = parse_one(lo)?;
        let hi = parse_one(hi)?;
        if lo > hi {
            return Err(malformed());
        }
        // Step from `lo` by whole units rather than accumulating `+= 1.0`,
        // so the grid is exact for any representable endpoints.
        let steps = (hi - lo).floor() as usize;
        Ok((0..=steps).map(|i| lo + i as f64).collect())
    } else {
        let values: Vec<f64> = split_list(raw).map(parse_one).collect::<Result<_, _>>()?;
        if values.is_empty() {
            return Err(malformed());
        }
        Ok(values)
    }
}

/// One cell of a sweep: either a runnable spec or the reason it was skipped.
#[derive(Debug)]
pub enum SweepCell {
    /// A valid grid cell.
    Spec(Box<ScenarioSpec>),
    /// An invalid combination (name, reason) — reported, not run.
    Invalid(String, String),
}

/// Expands the cartesian product of `base` and `axes` into one cell per
/// combination. Invalid combinations (a rule rejecting the cluster shape, an
/// `f ≥ n`, …) become [`SweepCell::Invalid`] so a sweep over a wide grid
/// reports rather than aborts on the infeasible corner.
pub fn expand_sweep(base: &ScenarioSpec, axes: &SweepAxes) -> Vec<SweepCell> {
    let rules = if axes.rules.is_empty() {
        vec![base.rule]
    } else {
        axes.rules.clone()
    };
    let attacks = if axes.attacks.is_empty() {
        vec![base.attack]
    } else {
        axes.attacks.clone()
    };
    let ns = if axes.ns.is_empty() {
        vec![base.cluster.workers()]
    } else {
        axes.ns.clone()
    };
    let fs = if axes.fs.is_empty() {
        vec![base.cluster.byzantine()]
    } else {
        axes.fs.clone()
    };
    let seeds = if axes.seeds.is_empty() {
        vec![base.seed]
    } else {
        axes.seeds.clone()
    };
    let quorums: Vec<Option<usize>> = if axes.quorums.is_empty() {
        vec![None]
    } else {
        axes.quorums.iter().copied().map(Some).collect()
    };
    let groups_axis: Vec<Option<usize>> = if axes.groups.is_empty() {
        vec![None]
    } else {
        axes.groups.iter().copied().map(Some).collect()
    };
    let sigmas: Vec<Option<f64>> = if axes.attack_sigmas.is_empty() {
        vec![None]
    } else {
        axes.attack_sigmas.iter().copied().map(Some).collect()
    };

    let mut cells = Vec::new();
    for &rule in &rules {
        for &attack in &attacks {
            for &n in &ns {
                for &f in &fs {
                    for &seed in &seeds {
                        for &quorum in &quorums {
                            for &groups in &groups_axis {
                                for &sigma in &sigmas {
                                    let name = cell_name(
                                        &base.name, rule, attack, n, f, seed, quorum, groups, sigma,
                                    );
                                    let cluster = match ClusterSpec::new(n, f) {
                                        Ok(c) => c,
                                        Err(e) => {
                                            cells.push(SweepCell::Invalid(name, e.to_string()));
                                            continue;
                                        }
                                    };
                                    let mut spec = base.clone();
                                    spec.name = name.clone();
                                    spec.cluster = cluster;
                                    spec.rule = rule;
                                    spec.attack = attack;
                                    spec.seed = seed;
                                    if let Some(s) = sigma {
                                        spec.attack = match attack {
                                            AttackSpec::InlierDrift { target, .. } => {
                                                AttackSpec::InlierDrift { sigma: s, target }
                                            }
                                            other => {
                                                cells.push(SweepCell::Invalid(
                                                    name,
                                                    format!(
                                                        "--attack-sigma requires an inlier-drift \
                                                     attack, got `{other}`"
                                                    ),
                                                ));
                                                continue;
                                            }
                                        };
                                    }
                                    if let Some(g) = groups {
                                        spec.rule = match rule {
                                            // A flat krum base shards into g groups of
                                            // krum-over-krum.
                                            RuleSpec::Krum => RuleSpec::Hierarchical {
                                                groups: g,
                                                inner: StageRule::Krum,
                                                outer: StageRule::Krum,
                                            },
                                            // A hierarchical base keeps its stages and
                                            // sweeps the group count.
                                            RuleSpec::Hierarchical { inner, outer, .. } => {
                                                RuleSpec::Hierarchical {
                                                    groups: g,
                                                    inner,
                                                    outer,
                                                }
                                            }
                                            other => {
                                                cells.push(SweepCell::Invalid(
                                                    name,
                                                    format!(
                                                        "--groups requires a krum or hierarchical \
                                                     rule, got `{other}`"
                                                    ),
                                                ));
                                                continue;
                                            }
                                        };
                                    }
                                    if let Some(q) = quorum {
                                        match &mut spec.execution {
                                            ExecutionSpec::AsyncQuorum { quorum, .. } => {
                                                *quorum = q
                                            }
                                            _ => {
                                                cells.push(SweepCell::Invalid(
                                                name,
                                                "--quorum requires an async-quorum execution in \
                                                 the base scenario"
                                                    .to_string(),
                                            ));
                                                continue;
                                            }
                                        }
                                    }
                                    if let Some(rounds) = axes.rounds {
                                        spec.rounds = rounds;
                                    }
                                    match spec.validate() {
                                        Ok(()) => cells.push(SweepCell::Spec(Box::new(spec))),
                                        Err(e) => {
                                            cells.push(SweepCell::Invalid(name, e.to_string()))
                                        }
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
    }
    cells
}

/// A file-name-safe label for one sweep cell.
#[allow(clippy::too_many_arguments)]
fn cell_name(
    base: &str,
    rule: RuleSpec,
    attack: AttackSpec,
    n: usize,
    f: usize,
    seed: u64,
    quorum: Option<usize>,
    groups: Option<usize>,
    sigma: Option<f64>,
) -> String {
    let sanitize = |s: String| s.replace([':', '=', ',', '.'], "-");
    let quorum_tag = quorum.map(|q| format!("_q{q}")).unwrap_or_default();
    let groups_tag = groups.map(|g| format!("_g{g}")).unwrap_or_default();
    let sigma_tag = sigma
        .map(|s| format!("_sig{}", sanitize(s.to_string())))
        .unwrap_or_default();
    format!(
        "{base}_{}_{}_n{n}_f{f}_s{seed}{quorum_tag}{groups_tag}{sigma_tag}",
        sanitize(rule.to_string()),
        sanitize(attack.to_string())
    )
}

/// One line summarising a finished run.
pub fn summary_line(report: &ScenarioReport) -> String {
    let summary = report.summary();
    let mut line = String::new();
    let _ = write!(
        line,
        "{}: rounds={} wall={:.1}ms",
        report.spec.name,
        summary.rounds,
        report.wall_nanos as f64 / 1e6
    );
    let _ = write!(
        line,
        " agg_mean={:.1}us agg_p99={:.1}us",
        summary.mean_aggregate_nanos / 1e3,
        summary.p99_aggregate_nanos / 1e3
    );
    if let Some(loss) = summary.final_loss {
        let _ = write!(line, " final_loss={loss:.6}");
    }
    if let Some(last) = report.history.last() {
        if let Some(dist) = last.distance_to_optimum {
            let _ = write!(line, " |x-x*|={dist:.6}");
        }
    }
    if let Some(acc) = summary.final_accuracy {
        let _ = write!(line, " accuracy={:.1}%", 100.0 * acc);
    }
    let selections = report.history.selection_stats();
    if selections.total() > 0 {
        let _ = write!(
            line,
            " byz-pick={:.1}%",
            100.0 * selections.byzantine_rate()
        );
    }
    if summary.diverged {
        line.push_str(" DIVERGED");
    }
    line
}

fn read_file(path: &str) -> Result<String, CliError> {
    std::fs::read_to_string(path).map_err(|source| CliError::Io {
        path: path.to_string(),
        source,
    })
}

/// Attributes an export failure to the file it was writing, so `--csv` and
/// `--json` failures name the offending path.
fn export_err(path: &(impl AsRef<Path> + ?Sized), error: ScenarioError) -> CliError {
    match error {
        ScenarioError::Io(source) => CliError::Io {
            path: path.as_ref().display().to_string(),
            source,
        },
        other => CliError::Scenario(other),
    }
}

/// The example scenario printed by `krum template`.
pub fn template_spec() -> ScenarioSpec {
    use krum_dist::LearningRateSchedule;
    use krum_models::EstimatorSpec;
    use krum_scenario::{ExecutionSpec, InitSpec, ProbeSpec};
    ScenarioSpec {
        name: "template".into(),
        cluster: ClusterSpec::new(15, 4).expect("valid template cluster"),
        rule: RuleSpec::Krum,
        attack: AttackSpec::SignFlip { scale: 5.0 },
        estimator: EstimatorSpec::GaussianQuadratic {
            dim: 20,
            sigma: 0.2,
        },
        schedule: LearningRateSchedule::InverseTime {
            gamma: 0.2,
            tau: 50.0,
        },
        execution: ExecutionSpec::Sequential,
        rounds: 200,
        eval_every: 20,
        seed: 42,
        init: InitSpec::Fill { value: 3.0 },
        probes: ProbeSpec::default(),
        fault_plan: None,
        compression: None,
    }
}

/// Executes a parsed command, writing human output to `out`.
///
/// # Errors
///
/// Returns a [`CliError`] when a scenario fails or a file cannot be
/// read/written.
pub fn execute(command: Command, out: &mut dyn std::io::Write) -> Result<(), CliError> {
    let io_err = |path: &Path, source: std::io::Error| CliError::Io {
        path: path.display().to_string(),
        source,
    };
    match command {
        Command::Help => {
            writeln!(out, "{USAGE}").map_err(|e| io_err(Path::new("<stdout>"), e))?;
        }
        Command::List => {
            writeln!(out, "aggregation rules (krum run: \"rule\" field):")
                .map_err(|e| io_err(Path::new("<stdout>"), e))?;
            for name in RULE_NAMES {
                writeln!(out, "  {name}").map_err(|e| io_err(Path::new("<stdout>"), e))?;
            }
            writeln!(
                out,
                "\nattacks (\"attack\" field, with default parameters):"
            )
            .map_err(|e| io_err(Path::new("<stdout>"), e))?;
            for spec in AttackSpec::all() {
                writeln!(out, "  {spec}").map_err(|e| io_err(Path::new("<stdout>"), e))?;
            }
            debug_assert_eq!(AttackSpec::all().len(), ATTACK_NAMES.len());
            writeln!(
                out,
                "\nworkloads (\"estimator\" field):\n  GaussianQuadratic {{ dim, sigma }}\n  \
                 Synthetic {{ model, data, batch, holdout }}\n    models: Linear | Logistic | \
                 Softmax | Mlp\n    data: LinearRegression | LogisticRegression | SyntheticDigits"
            )
            .map_err(|e| io_err(Path::new("<stdout>"), e))?;
            writeln!(
                out,
                "\nexecution strategies (\"execution\" field):\n  {}",
                EXECUTION_NAMES.join("\n  ")
            )
            .map_err(|e| io_err(Path::new("<stdout>"), e))?;
            writeln!(
                out,
                "\nremote execution timeouts (\"execution\": {{\"Remote\": …}} fields, with \
                 defaults):\n  round_timeout_secs: {DEFAULT_ROUND_TIMEOUT_SECS}\n  \
                 handshake_timeout_secs: {DEFAULT_HANDSHAKE_TIMEOUT_SECS}\n  \
                 staffing_timeout_secs: {DEFAULT_STAFFING_TIMEOUT_SECS}\n  \
                 heartbeat_secs: {DEFAULT_HEARTBEAT_SECS}\n  on_crash: WaitForRejoin | \
                 ProceedAtQuorum"
            )
            .map_err(|e| io_err(Path::new("<stdout>"), e))?;
            writeln!(
                out,
                "\nlatency models (simulated \"network.latency\" field):\n  {}",
                LATENCY_MODEL_NAMES.join("\n  ")
            )
            .map_err(|e| io_err(Path::new("<stdout>"), e))?;
            writeln!(
                out,
                "\nwire protocol (krum serve / worker / loopback): v{PROTOCOL_VERSION}\n  \
                 frames: {}",
                FRAME_NAMES.join(", ")
            )
            .map_err(|e| io_err(Path::new("<stdout>"), e))?;
            writeln!(
                out,
                "\ngradient codecs (\"compression\" field, quantize-before-aggregate):"
            )
            .map_err(|e| io_err(Path::new("<stdout>"), e))?;
            for (pattern, description) in CODEC_GRAMMAR {
                writeln!(out, "  {pattern}\n    {description}")
                    .map_err(|e| io_err(Path::new("<stdout>"), e))?;
            }
            writeln!(out, "\nstatic-analysis lints (krum audit):")
                .map_err(|e| io_err(Path::new("<stdout>"), e))?;
            for lint in krum_audit::Lint::ALL {
                writeln!(
                    out,
                    "  {} ({}): {}",
                    lint.code(),
                    lint.name(),
                    lint.summary()
                )
                .map_err(|e| io_err(Path::new("<stdout>"), e))?;
            }
        }
        Command::Template => {
            let json = template_spec().to_json()?;
            writeln!(out, "{json}").map_err(|e| io_err(Path::new("<stdout>"), e))?;
        }
        Command::Audit {
            root,
            config,
            json,
            deny,
        } => {
            let root = PathBuf::from(root);
            // An explicitly named baseline must exist; the default
            // `<root>/audit.toml` is optional (absent → no suppressions).
            let audit_config = match &config {
                Some(path) => krum_audit::AuditConfig::load(Path::new(path))
                    .map_err(krum_audit::AuditError::from)?,
                None => {
                    let default_path = root.join("audit.toml");
                    if default_path.is_file() {
                        krum_audit::AuditConfig::load(&default_path)
                            .map_err(krum_audit::AuditError::from)?
                    } else {
                        krum_audit::AuditConfig::default()
                    }
                }
            };
            let report = krum_audit::audit_workspace(&root, &audit_config)?;
            if json {
                let rendered = report.to_json().map_err(|e| krum_audit::AuditError::Io {
                    path: "<report>".to_string(),
                    source: std::io::Error::other(e),
                })?;
                writeln!(out, "{rendered}").map_err(|e| io_err(Path::new("<stdout>"), e))?;
            } else {
                writeln!(out, "{}", report.render_human())
                    .map_err(|e| io_err(Path::new("<stdout>"), e))?;
            }
            if deny && !report.is_clean() {
                return Err(CliError::AuditFindings(report.findings.len()));
            }
        }
        Command::Run {
            spec_path,
            csv,
            json,
            quiet,
        } => {
            let scenario = Scenario::from_json(&read_file(&spec_path)?)?;
            let report = scenario.run()?;
            if let Some(path) = &csv {
                report.write_csv(path).map_err(|e| export_err(path, e))?;
            }
            if let Some(path) = &json {
                report.write_json(path).map_err(|e| export_err(path, e))?;
            }
            if !quiet {
                writeln!(out, "{}", report.spec.headline())
                    .map_err(|e| io_err(Path::new("<stdout>"), e))?;
                writeln!(out, "{}", summary_line(&report))
                    .map_err(|e| io_err(Path::new("<stdout>"), e))?;
                for path in csv.iter().chain(json.iter()) {
                    writeln!(out, "wrote {path}").map_err(|e| io_err(Path::new("<stdout>"), e))?;
                }
            }
        }
        Command::Serve {
            spec_path,
            listen,
            jobs,
            out: out_dir,
            quiet,
            checkpoint_dir,
            checkpoint_every,
            resume,
        } => {
            if let Some(dir) = &out_dir {
                std::fs::create_dir_all(dir).map_err(|e| io_err(Path::new(dir), e))?;
            }
            let mut server = match &resume {
                Some(dir) => Server::resume(&listen, Path::new(dir))?,
                None => {
                    let spec = ScenarioSpec::from_json(&read_file(&spec_path)?)?;
                    Server::bind(&listen, spec, jobs)?
                }
            };
            // --resume keeps checkpointing into its own directory unless a
            // fresh --checkpoint-dir overrides it.
            if let Some(dir) = checkpoint_dir.as_ref().or(resume.as_ref()) {
                std::fs::create_dir_all(dir).map_err(|e| io_err(Path::new(dir), e))?;
                server = server.with_checkpoints(PathBuf::from(dir), checkpoint_every);
            }
            let addr = server.local_addr()?;
            let jobs = server.job_specs().len();
            let per_job = server.connections_per_job();
            if !quiet {
                let mode = if resume.is_some() {
                    " (resumed from checkpoints)"
                } else {
                    ""
                };
                writeln!(
                    out,
                    "serving on {addr}: {jobs} job(s), {per_job} worker connection(s) each{mode} \
                     (start them with `krum worker --connect {addr}`)"
                )
                .map_err(|e| io_err(Path::new("<stdout>"), e))?;
            }
            let outcomes = server.run()?;
            let mut failed = 0usize;
            for outcome in outcomes {
                match outcome.result {
                    Err(e) => {
                        failed += 1;
                        if !quiet {
                            writeln!(out, "job {} ({}): FAILED ({e})", outcome.job, outcome.name)
                                .map_err(|e| io_err(Path::new("<stdout>"), e))?;
                        }
                    }
                    Ok(report) => {
                        if let Some(dir) = &out_dir {
                            let path: PathBuf =
                                Path::new(dir).join(format!("{}.csv", report.spec.name));
                            report.write_csv(&path).map_err(|e| export_err(&path, e))?;
                        }
                        if !quiet {
                            writeln!(out, "{}", summary_line(&report))
                                .map_err(|e| io_err(Path::new("<stdout>"), e))?;
                        }
                    }
                }
            }
            if failed > 0 {
                return Err(CliError::Server(ServerError::Protocol(format!(
                    "{failed} job(s) failed"
                ))));
            }
        }
        Command::Worker {
            connect,
            retries,
            protocol,
        } => {
            let summary = WorkerClient::connect(&*connect)?
                .with_retries(retries)
                .with_protocol_version(protocol)
                .run()?;
            writeln!(
                out,
                "worker {} of job {} ({}): {} round(s), {} reconnect(s), {} wire bytes, \
                 shutdown: {}",
                summary.worker,
                summary.job,
                if summary.adversary {
                    "adversary"
                } else {
                    "honest"
                },
                summary.rounds,
                summary.reconnects,
                summary.wire_bytes,
                summary.shutdown_reason
            )
            .map_err(|e| io_err(Path::new("<stdout>"), e))?;
        }
        Command::Chaos {
            spec_path,
            csv,
            quiet,
        } => {
            let spec = ScenarioSpec::from_json(&read_file(&spec_path)?)?;
            let headline = spec
                .fault_plan
                .as_ref()
                .map(krum_scenario::FaultPlan::headline)
                .unwrap_or_else(|| "no fault plan (clean run)".to_string());
            if !quiet {
                writeln!(out, "chaos: {headline}").map_err(|e| io_err(Path::new("<stdout>"), e))?;
            }
            let outcome = run_chaos(spec, ChaosOptions::default())?;
            if let Some(path) = &csv {
                outcome
                    .report
                    .write_csv(path)
                    .map_err(|e| export_err(path, e))?;
            }
            if !quiet {
                let history = &outcome.report.history;
                writeln!(
                    out,
                    "{}\nchaos survived: {} worker reconnect(s), {} degraded round(s), \
                     server resumed: {}, worker failures: {}",
                    summary_line(&outcome.report),
                    outcome.worker_reconnects,
                    history.total_degraded_rounds(),
                    outcome.server_resumed,
                    outcome.worker_failures,
                )
                .map_err(|e| io_err(Path::new("<stdout>"), e))?;
            }
        }
        Command::Loopback {
            spec_path,
            jobs,
            csv,
            json,
            quiet,
        } => {
            let spec = ScenarioSpec::from_json(&read_file(&spec_path)?)?;
            let reports = run_loopback_jobs(spec, jobs)?;
            if let Some(path) = &csv {
                reports[0]
                    .write_csv(path)
                    .map_err(|e| export_err(path, e))?;
            }
            if let Some(path) = &json {
                reports[0]
                    .write_json(path)
                    .map_err(|e| export_err(path, e))?;
            }
            if !quiet {
                for report in &reports {
                    writeln!(
                        out,
                        "{} [loopback: {:.1} KiB/round on the wire]",
                        summary_line(report),
                        report.history.mean_wire_bytes() / 1024.0
                    )
                    .map_err(|e| io_err(Path::new("<stdout>"), e))?;
                }
                for path in csv.iter().chain(json.iter()) {
                    writeln!(out, "wrote {path}").map_err(|e| io_err(Path::new("<stdout>"), e))?;
                }
            }
        }
        Command::Sweep {
            base_path,
            axes,
            out: out_dir,
            quiet,
        } => {
            let base = ScenarioSpec::from_json(&read_file(&base_path)?)?;
            if let Some(dir) = &out_dir {
                std::fs::create_dir_all(dir).map_err(|e| io_err(Path::new(dir), e))?;
            }
            let cells = expand_sweep(&base, &axes);
            let total = cells.len();
            let mut ran = 0usize;
            let mut failed = 0usize;
            for cell in cells {
                match cell {
                    SweepCell::Invalid(name, reason) => {
                        if !quiet {
                            writeln!(out, "{name}: SKIPPED ({reason})")
                                .map_err(|e| io_err(Path::new("<stdout>"), e))?;
                        }
                    }
                    SweepCell::Spec(spec) => {
                        // A cell failing mid-run must not abort the rest of
                        // the grid — report it like an invalid cell.
                        let name = spec.name.clone();
                        match Scenario::from_spec(*spec).and_then(Scenario::run) {
                            Err(e) => {
                                failed += 1;
                                if !quiet {
                                    writeln!(out, "{name}: FAILED ({e})")
                                        .map_err(|e| io_err(Path::new("<stdout>"), e))?;
                                }
                            }
                            Ok(report) => {
                                if let Some(dir) = &out_dir {
                                    let path: PathBuf =
                                        Path::new(dir).join(format!("{}.csv", report.spec.name));
                                    report.write_csv(&path).map_err(|e| export_err(&path, e))?;
                                }
                                if !quiet {
                                    writeln!(out, "{}", summary_line(&report))
                                        .map_err(|e| io_err(Path::new("<stdout>"), e))?;
                                }
                                ran += 1;
                            }
                        }
                    }
                }
            }
            if !quiet {
                writeln!(
                    out,
                    "sweep complete: {ran}/{total} cells ran, {failed} failed"
                )
                .map_err(|e| io_err(Path::new("<stdout>"), e))?;
            }
        }
    }
    Ok(())
}

/// Entry point used by the binary: parses and executes, mapping errors to an
/// exit code (2 for usage errors, 1 for runtime failures).
pub fn main_with(args: &[String], out: &mut dyn std::io::Write) -> i32 {
    match parse(args) {
        Err(e) => {
            eprintln!("{e}");
            2
        }
        Ok(command) => match execute(command, out) {
            Ok(()) => 0,
            Err(e @ CliError::Usage(_)) => {
                eprintln!("{e}");
                2
            }
            Err(e) => {
                eprintln!("{e}");
                1
            }
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(raw: &[&str]) -> Vec<String> {
        raw.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parses_run_and_flags() {
        let cmd = parse(&args(&["run", "spec.json", "--csv", "out.csv", "--quiet"])).unwrap();
        assert_eq!(
            cmd,
            Command::Run {
                spec_path: "spec.json".into(),
                csv: Some("out.csv".into()),
                json: None,
                quiet: true,
            }
        );
        assert!(parse(&args(&["run"])).is_err());
        assert!(parse(&args(&["run", "a.json", "--nope"])).is_err());
        assert!(parse(&args(&["run", "a.json", "b.json"])).is_err());
        assert!(parse(&args(&["frobnicate"])).is_err());
        assert_eq!(parse(&args(&[])).unwrap(), Command::Help);
        assert_eq!(parse(&args(&["list"])).unwrap(), Command::List);
        assert_eq!(parse(&args(&["template"])).unwrap(), Command::Template);
    }

    #[test]
    fn parses_sweep_axes() {
        let cmd = parse(&args(&[
            "sweep",
            "base.json",
            "--rule",
            "krum,median",
            "--f",
            "2..4",
            "--seed",
            "1,2",
            "--rounds",
            "10",
            "--out",
            "dir",
        ]))
        .unwrap();
        match cmd {
            Command::Sweep {
                base_path,
                axes,
                out,
                quiet,
            } => {
                assert_eq!(base_path, "base.json");
                assert_eq!(axes.rules, vec![RuleSpec::Krum, RuleSpec::Median]);
                assert_eq!(axes.fs, vec![2, 3, 4]);
                assert_eq!(axes.seeds, vec![1, 2]);
                assert_eq!(axes.rounds, Some(10));
                assert_eq!(out.as_deref(), Some("dir"));
                assert!(!quiet);
            }
            other => panic!("expected sweep, got {other:?}"),
        }
        assert!(parse(&args(&["sweep", "b.json", "--rule", "zeno"])).is_err());
        assert!(parse(&args(&["sweep", "b.json", "--f", "4..2"])).is_err());
        assert!(parse(&args(&["sweep", "b.json", "--f", "x"])).is_err());
        assert!(parse(&args(&["sweep", "b.json", "--rounds", "ten"])).is_err());
        assert!(parse(&args(&["sweep"])).is_err());
    }

    #[test]
    fn parses_serve_worker_and_loopback() {
        let cmd = parse(&args(&[
            "serve",
            "spec.json",
            "--listen",
            "0.0.0.0:9000",
            "--jobs",
            "4",
            "--out",
            "reports",
            "--quiet",
        ]))
        .unwrap();
        assert_eq!(
            cmd,
            Command::Serve {
                spec_path: "spec.json".into(),
                listen: "0.0.0.0:9000".into(),
                jobs: 4,
                out: Some("reports".into()),
                quiet: true,
                checkpoint_dir: None,
                checkpoint_every: 1,
                resume: None,
            }
        );
        // Defaults.
        assert_eq!(
            parse(&args(&["serve", "spec.json"])).unwrap(),
            Command::Serve {
                spec_path: "spec.json".into(),
                listen: DEFAULT_ADDR.into(),
                jobs: 1,
                out: None,
                quiet: false,
                checkpoint_dir: None,
                checkpoint_every: 1,
                resume: None,
            }
        );
        assert!(parse(&args(&["serve"])).is_err());
        assert!(parse(&args(&["serve", "s.json", "--jobs", "0"])).is_err());
        assert!(parse(&args(&["serve", "s.json", "--jobs", "many"])).is_err());
        assert!(parse(&args(&["serve", "s.json", "--nope"])).is_err());

        assert_eq!(
            parse(&args(&["worker", "--connect", "10.0.0.1:7878"])).unwrap(),
            Command::Worker {
                connect: "10.0.0.1:7878".into(),
                retries: 0,
                protocol: PROTOCOL_VERSION,
            }
        );
        assert_eq!(
            parse(&args(&["worker", "--retries", "8", "--protocol", "1"])).unwrap(),
            Command::Worker {
                connect: DEFAULT_ADDR.into(),
                retries: 8,
                protocol: 1,
            }
        );
        assert!(parse(&args(&["worker", "extra"])).is_err());
        assert!(parse(&args(&["worker", "--retries", "lots"])).is_err());
        assert!(parse(&args(&["worker", "--protocol", "two"])).is_err());

        let cmd = parse(&args(&[
            "loopback",
            "spec.json",
            "--jobs",
            "2",
            "--csv",
            "out.csv",
        ]))
        .unwrap();
        assert_eq!(
            cmd,
            Command::Loopback {
                spec_path: "spec.json".into(),
                jobs: 2,
                csv: Some("out.csv".into()),
                json: None,
                quiet: false,
            }
        );
        assert!(parse(&args(&["loopback"])).is_err());
        assert!(parse(&args(&["loopback", "a.json", "b.json"])).is_err());
    }

    /// Satellite: the fault-tolerance flags — checkpointing, resume and the
    /// chaos command — parse with their documented defaults and reject the
    /// contradictory spellings.
    #[test]
    fn parses_checkpoint_resume_and_chaos() {
        let cmd = parse(&args(&[
            "serve",
            "spec.json",
            "--checkpoint-dir",
            "ckpts",
            "--checkpoint-every",
            "3",
        ]))
        .unwrap();
        match cmd {
            Command::Serve {
                checkpoint_dir,
                checkpoint_every,
                resume,
                ..
            } => {
                assert_eq!(checkpoint_dir.as_deref(), Some("ckpts"));
                assert_eq!(checkpoint_every, 3);
                assert_eq!(resume, None);
            }
            other => panic!("expected serve, got {other:?}"),
        }

        let cmd = parse(&args(&["serve", "--resume", "ckpts"])).unwrap();
        match cmd {
            Command::Serve {
                spec_path, resume, ..
            } => {
                assert_eq!(spec_path, "");
                assert_eq!(resume.as_deref(), Some("ckpts"));
            }
            other => panic!("expected serve, got {other:?}"),
        }
        // A spec file and --resume contradict each other; a checkpoint
        // cadence of zero is meaningless.
        assert!(parse(&args(&["serve", "spec.json", "--resume", "d"])).is_err());
        assert!(parse(&args(&["serve", "s.json", "--checkpoint-every", "0"])).is_err());

        assert_eq!(
            parse(&args(&["chaos", "plan.json", "--csv", "c.csv", "--quiet"])).unwrap(),
            Command::Chaos {
                spec_path: "plan.json".into(),
                csv: Some("c.csv".into()),
                quiet: true,
            }
        );
        assert!(parse(&args(&["chaos"])).is_err());
        assert!(parse(&args(&["chaos", "a.json", "--nope"])).is_err());
    }

    /// Satellite: `krum loopback` drives the full server + workers in one
    /// process and its exported CSV carries the wire columns.
    #[test]
    fn execute_loopback_runs_and_exports() {
        let dir = std::env::temp_dir().join(format!("krum-cli-loopback-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let mut spec = template_spec();
        spec.rounds = 5;
        spec.eval_every = 5;
        let spec_path = dir.join("spec.json");
        std::fs::write(&spec_path, spec.to_json().unwrap()).unwrap();
        let csv_path = dir.join("loopback.csv");
        let mut out = Vec::new();
        execute(
            Command::Loopback {
                spec_path: spec_path.display().to_string(),
                jobs: 1,
                csv: Some(csv_path.display().to_string()),
                json: None,
                quiet: false,
            },
            &mut out,
        )
        .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("loopback:"), "got: {text}");
        let csv = std::fs::read_to_string(&csv_path).unwrap();
        assert!(csv.contains("wire_bytes"));
        assert!(csv.contains("# execution: sequential"));
        assert_eq!(csv.lines().filter(|l| !l.starts_with('#')).count(), 1 + 5);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn axis_parsing_accepts_lists_and_ranges() {
        assert_eq!(parse_axis("2..6", "--f").unwrap(), vec![2, 3, 4, 5, 6]);
        assert_eq!(parse_axis("7", "--f").unwrap(), vec![7]);
        assert_eq!(parse_axis(" 1, 3 ,5 ", "--f").unwrap(), vec![1, 3, 5]);
        assert!(parse_axis("", "--f").is_err());
        assert!(parse_axis("1..", "--f").is_err());
    }

    #[test]
    fn float_axis_parsing_accepts_lists_and_unit_stepped_ranges() {
        assert_eq!(
            parse_f64_axis("0.5,1,1.5", "--attack-sigma").unwrap(),
            vec![0.5, 1.0, 1.5]
        );
        assert_eq!(
            parse_f64_axis("1..3", "--attack-sigma").unwrap(),
            vec![1.0, 2.0, 3.0]
        );
        // A fractional lower bound steps by whole units up to the bound.
        assert_eq!(
            parse_f64_axis("0.5..2.7", "--attack-sigma").unwrap(),
            vec![0.5, 1.5, 2.5]
        );
        assert_eq!(parse_f64_axis(" 2 ", "--attack-sigma").unwrap(), vec![2.0]);
        assert!(parse_f64_axis("", "--attack-sigma").is_err());
        assert!(parse_f64_axis("3..1", "--attack-sigma").is_err());
        assert!(parse_f64_axis("0", "--attack-sigma").is_err());
        assert!(parse_f64_axis("-1,2", "--attack-sigma").is_err());
        assert!(parse_f64_axis("nan", "--attack-sigma").is_err());
    }

    #[test]
    fn attack_sigma_axis_requires_inlier_drift_and_sweeps_sigma() {
        // On an inlier-drift base the sigma is overridden per cell and
        // tagged into the file-name-safe cell name.
        let mut base = template_spec();
        base.attack = "inlier-drift:sigma=1,target=neg".parse().unwrap();
        let axes = SweepAxes {
            attack_sigmas: vec![0.5, 1.5],
            rounds: Some(5),
            ..SweepAxes::default()
        };
        let cells = expand_sweep(&base, &axes);
        assert_eq!(cells.len(), 2);
        let sigmas: Vec<f64> = cells
            .iter()
            .map(|c| match c {
                SweepCell::Spec(s) => match s.attack {
                    AttackSpec::InlierDrift { sigma, .. } => sigma,
                    other => panic!("expected inlier-drift, got {other}"),
                },
                other => panic!("expected a valid cell, got {other:?}"),
            })
            .collect();
        assert_eq!(sigmas, vec![0.5, 1.5]);
        let names: Vec<&str> = cells
            .iter()
            .filter_map(|c| match c {
                SweepCell::Spec(s) => Some(s.name.as_str()),
                SweepCell::Invalid(..) => None,
            })
            .collect();
        assert!(names[0].ends_with("_sig0-5"), "got: {}", names[0]);
        assert!(names[1].ends_with("_sig1-5"), "got: {}", names[1]);
        assert!(names.iter().all(|n| !n.contains(['.', ':', '='])));

        // Any other attack rejects the axis cell-by-cell, with the reason
        // naming the flag.
        let base = template_spec(); // sign-flip
        let cells = expand_sweep(&base, &axes);
        assert_eq!(cells.len(), 2);
        assert!(cells.iter().all(|c| matches!(
            c,
            SweepCell::Invalid(_, reason) if reason.contains("--attack-sigma")
        )));

        // An --attack axis mixing inlier-drift with another attack sweeps
        // the former and reports the latter.
        let mut base = template_spec();
        base.attack = "inlier-drift:sigma=1,target=neg".parse().unwrap();
        let axes = SweepAxes {
            attacks: vec![
                "inlier-drift:sigma=2,target=pos".parse().unwrap(),
                "sign-flip:scale=3".parse().unwrap(),
            ],
            attack_sigmas: vec![1.0],
            rounds: Some(5),
            ..SweepAxes::default()
        };
        let cells = expand_sweep(&base, &axes);
        assert_eq!(cells.len(), 2);
        let valid: Vec<&ScenarioSpec> = cells
            .iter()
            .filter_map(|c| match c {
                SweepCell::Spec(s) => Some(s.as_ref()),
                SweepCell::Invalid(..) => None,
            })
            .collect();
        assert_eq!(valid.len(), 1);
        // The sigma override wins; the axis attack's target is kept.
        assert!(matches!(
            valid[0].attack,
            AttackSpec::InlierDrift {
                sigma,
                target: krum_attacks::DriftTarget::Pos,
            } if sigma == 1.0
        ));

        // Parsing: --attack-sigma rides the sweep arm like the other axes.
        let cmd = parse(&args(&["sweep", "base.json", "--attack-sigma", "0.5,1"])).unwrap();
        match cmd {
            Command::Sweep { axes, .. } => assert_eq!(axes.attack_sigmas, vec![0.5, 1.0]),
            other => panic!("expected sweep, got {other:?}"),
        }
    }

    #[test]
    fn sweep_expansion_covers_the_grid_and_reports_invalid_cells() {
        let base = template_spec();
        let axes = SweepAxes {
            rules: vec![RuleSpec::Krum, RuleSpec::Median],
            fs: vec![2, 7],
            rounds: Some(5),
            ..SweepAxes::default()
        };
        let cells = expand_sweep(&base, &axes);
        assert_eq!(cells.len(), 4);
        let specs: Vec<&ScenarioSpec> = cells
            .iter()
            .filter_map(|c| match c {
                SweepCell::Spec(s) => Some(s.as_ref()),
                SweepCell::Invalid(..) => None,
            })
            .collect();
        // krum at n=15 rejects f=7 (2f + 2 >= n); median accepts both.
        assert_eq!(specs.len(), 3);
        assert!(specs.iter().all(|s| s.rounds == 5));
        assert!(specs
            .iter()
            .any(|s| s.rule == RuleSpec::Median && s.cluster.byzantine() == 7));
        let invalid: Vec<_> = cells
            .iter()
            .filter_map(|c| match c {
                SweepCell::Invalid(name, reason) => Some((name, reason)),
                SweepCell::Spec(_) => None,
            })
            .collect();
        assert_eq!(invalid.len(), 1);
        assert!(invalid[0].0.contains("krum"));
        // Names are file-name safe.
        assert!(specs.iter().all(|s| !s.name.contains(':')));
    }

    #[test]
    fn quorum_axis_requires_an_async_base_and_sweeps_quorum_sizes() {
        // On a barrier base scenario every --quorum cell is invalid.
        let base = template_spec();
        let axes = SweepAxes {
            quorums: vec![12, 13],
            rounds: Some(5),
            ..SweepAxes::default()
        };
        let cells = expand_sweep(&base, &axes);
        assert_eq!(cells.len(), 2);
        assert!(cells.iter().all(|c| matches!(
            c,
            SweepCell::Invalid(_, reason) if reason.contains("async-quorum")
        )));

        // On an async base the quorum is overridden per cell (and infeasible
        // quorums are reported, not run).
        let mut base = template_spec();
        base.execution = ExecutionSpec::AsyncQuorum {
            quorum: 15,
            max_staleness: 2,
            reuse_stale: false,
            network: krum_dist::NetworkModel {
                latency: krum_dist::LatencyModel::Constant { nanos: 1_000 },
                nanos_per_byte: 0.0,
            },
        };
        let axes = SweepAxes {
            quorums: vec![10, 12, 15],
            rounds: Some(5),
            ..SweepAxes::default()
        };
        let cells = expand_sweep(&base, &axes);
        assert_eq!(cells.len(), 3);
        // n = 15, f = 4: quorum 10 is below n - f = 11 → invalid; 12 and 15
        // are valid and carry the quorum in their cell name.
        let valid: Vec<&ScenarioSpec> = cells
            .iter()
            .filter_map(|c| match c {
                SweepCell::Spec(s) => Some(s.as_ref()),
                SweepCell::Invalid(..) => None,
            })
            .collect();
        assert_eq!(valid.len(), 2);
        assert!(valid.iter().any(|s| s.name.ends_with("_q12")));
        assert!(valid
            .iter()
            .all(|s| matches!(s.execution, ExecutionSpec::AsyncQuorum { .. })));
        // Parsing: --quorum takes lists and ranges like the other axes.
        let cmd = parse(&args(&["sweep", "base.json", "--quorum", "12..14"])).unwrap();
        match cmd {
            Command::Sweep { axes, .. } => assert_eq!(axes.quorums, vec![12, 13, 14]),
            other => panic!("expected sweep, got {other:?}"),
        }
    }

    #[test]
    fn groups_axis_shards_krum_bases_and_sweeps_hierarchical_group_counts() {
        // A krum base becomes hierarchical:groups=g per cell; group counts
        // whose per-group bound fails are reported, not run. The template
        // is n = 15, f = 4: g = 3 gives groups of 5 with ceil(4/3) = 2
        // Byzantine each (2·2 + 2 >= 5 → invalid); a 30-worker cell with
        // f = 2 and g = 3 gives groups of 10 with 1 Byzantine (valid).
        let base = template_spec();
        let axes = SweepAxes {
            ns: vec![30],
            fs: vec![2],
            groups: vec![3, 14],
            rounds: Some(5),
            ..SweepAxes::default()
        };
        let cells = expand_sweep(&base, &axes);
        assert_eq!(cells.len(), 2);
        let valid: Vec<&ScenarioSpec> = cells
            .iter()
            .filter_map(|c| match c {
                SweepCell::Spec(s) => Some(s.as_ref()),
                SweepCell::Invalid(..) => None,
            })
            .collect();
        // g = 3 over n = 30 is feasible; g = 14 leaves groups of 2 — not.
        assert_eq!(valid.len(), 1);
        assert!(valid[0].name.ends_with("_g3"));
        assert!(matches!(
            valid[0].rule,
            RuleSpec::Hierarchical { groups: 3, .. }
        ));

        // A hierarchical base keeps its stages and sweeps the group count.
        let mut base = template_spec();
        base.cluster = ClusterSpec::new(30, 2).unwrap();
        base.rule = RuleSpec::Hierarchical {
            groups: 2,
            inner: StageRule::Median,
            outer: StageRule::Median,
        };
        let axes = SweepAxes {
            groups: vec![5],
            rounds: Some(5),
            ..SweepAxes::default()
        };
        let cells = expand_sweep(&base, &axes);
        match &cells[0] {
            SweepCell::Spec(s) => assert!(matches!(
                s.rule,
                RuleSpec::Hierarchical {
                    groups: 5,
                    inner: StageRule::Median,
                    outer: StageRule::Median,
                }
            )),
            other => panic!("expected a valid cell, got {other:?}"),
        }

        // Non-krum, non-hierarchical rules reject the axis cell-by-cell.
        let mut base = template_spec();
        base.rule = RuleSpec::Median;
        let axes = SweepAxes {
            groups: vec![3],
            ..SweepAxes::default()
        };
        let cells = expand_sweep(&base, &axes);
        assert!(matches!(
            &cells[0],
            SweepCell::Invalid(_, reason) if reason.contains("--groups")
        ));

        // Parsing: --groups takes lists and ranges like the other axes.
        let cmd = parse(&args(&["sweep", "base.json", "--groups", "4,8,16"])).unwrap();
        match cmd {
            Command::Sweep { axes, .. } => assert_eq!(axes.groups, vec![4, 8, 16]),
            other => panic!("expected sweep, got {other:?}"),
        }
    }

    #[test]
    fn execute_list_template_and_help_write_output() {
        let mut out = Vec::new();
        execute(Command::List, &mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("krum"));
        assert!(text.contains("sign-flip"));
        assert!(text.contains("GaussianQuadratic"));
        // Satellite: the discoverability gap left by PR 3/4 is closed —
        // execution strategies, latency models and the wire protocol all
        // print.
        for name in EXECUTION_NAMES {
            assert!(text.contains(name), "missing execution strategy {name}");
        }
        for name in LATENCY_MODEL_NAMES {
            assert!(text.contains(name), "missing latency model {name}");
        }
        assert!(text.contains(&format!(
            "wire protocol (krum serve / worker / loopback): v{PROTOCOL_VERSION}"
        )));
        assert!(text.contains("round-closed"));
        // Satellite: the codec spec grammar prints, one pattern per codec.
        assert!(text.contains("gradient codecs"));
        for (pattern, _) in CODEC_GRAMMAR {
            assert!(text.contains(pattern), "missing codec grammar {pattern}");
        }
        assert!(text.contains("bfp:block=<1..4096>"));
        // Satellite: the audit lint registry prints, one code per lint.
        assert!(text.contains("static-analysis lints"));
        for lint in krum_audit::Lint::ALL {
            assert!(text.contains(lint.code()), "missing lint {}", lint.code());
        }

        let mut out = Vec::new();
        execute(Command::Template, &mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        let spec = ScenarioSpec::from_json(&text).unwrap();
        assert_eq!(spec.name, "template");

        let mut out = Vec::new();
        execute(Command::Help, &mut out).unwrap();
        assert!(String::from_utf8(out).unwrap().contains("usage: krum"));
    }

    #[test]
    fn parses_audit_and_flags() {
        assert_eq!(
            parse(&args(&["audit"])).unwrap(),
            Command::Audit {
                root: ".".into(),
                config: None,
                json: false,
                deny: false,
            }
        );
        assert_eq!(
            parse(&args(&[
                "audit", "--root", "/ws", "--config", "b.toml", "--json", "--deny"
            ]))
            .unwrap(),
            Command::Audit {
                root: "/ws".into(),
                config: Some("b.toml".into()),
                json: true,
                deny: true,
            }
        );
        assert!(parse(&args(&["audit", "--nope"])).is_err());
        assert!(parse(&args(&["audit", "--config"])).is_err());
    }

    #[test]
    fn execute_audit_scans_denies_and_emits_json() {
        let dir = std::env::temp_dir().join(format!("krum-cli-audit-{}", std::process::id()));
        let src = dir.join("src");
        std::fs::create_dir_all(&src).unwrap();
        std::fs::write(
            src.join("lib.rs"),
            "fn f(p: *const u8) -> u8 { unsafe { *p } }\n",
        )
        .unwrap();
        let root = dir.display().to_string();

        // Human output + --deny: the SAFE001 finding fails the gate.
        let mut out = Vec::new();
        let err = execute(
            Command::Audit {
                root: root.clone(),
                config: None,
                json: false,
                deny: true,
            },
            &mut out,
        )
        .unwrap_err();
        assert!(matches!(err, CliError::AuditFindings(1)), "{err}");
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("src/lib.rs:1:28: SAFE001"), "{text}");
        assert!(text.contains("audit FAILED"), "{text}");

        // Without --deny the same scan reports but succeeds.
        let mut out = Vec::new();
        execute(
            Command::Audit {
                root: root.clone(),
                config: None,
                json: false,
                deny: false,
            },
            &mut out,
        )
        .unwrap();

        // --json emits the versioned schema; a baseline suppresses the
        // finding and flips --deny back to success.
        let baseline = dir.join("audit.toml");
        std::fs::write(
            &baseline,
            "[[suppress]]\nlint = \"SAFE001\"\npath = \"src/lib.rs\"\nreason = \"fixture\"\n",
        )
        .unwrap();
        let mut out = Vec::new();
        execute(
            Command::Audit {
                root,
                config: Some(baseline.display().to_string()),
                json: true,
                deny: true,
            },
            &mut out,
        )
        .unwrap();
        let report = krum_audit::AuditReport::from_json(&String::from_utf8(out).unwrap()).unwrap();
        assert_eq!(report.schema_version, krum_audit::JSON_SCHEMA_VERSION);
        assert!(report.is_clean());
        assert_eq!(report.suppressed.len(), 1);

        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn execute_run_reports_missing_files_with_the_path() {
        let mut out = Vec::new();
        let err = execute(
            Command::Run {
                spec_path: "/definitely/missing.json".into(),
                csv: None,
                json: None,
                quiet: false,
            },
            &mut out,
        )
        .unwrap_err();
        assert!(err.to_string().contains("/definitely/missing.json"));
    }
}
