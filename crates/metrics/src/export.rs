//! Exporters: CSV and JSON serialisation of training histories.

use std::io::Write;
use std::path::Path;

use thiserror::Error;

use crate::history::TrainingHistory;
use crate::round::RoundRecord;

/// Errors raised when exporting metrics.
#[derive(Debug, Error)]
pub enum ExportError {
    /// Serialisation to JSON failed.
    #[error("failed to serialise history to JSON: {0}")]
    Json(#[from] serde_json::Error),
    /// Writing to the output file failed.
    #[error("failed to write export file: {0}")]
    Io(#[from] std::io::Error),
}

/// Renders a history as a CSV document (header plus one row per round).
pub fn to_csv(history: &TrainingHistory) -> String {
    let mut out = String::new();
    out.push_str(RoundRecord::csv_header());
    out.push('\n');
    for r in &history.rounds {
        out.push_str(&r.to_csv_row());
        out.push('\n');
    }
    out
}

/// Renders a history as pretty-printed JSON.
///
/// # Errors
///
/// Returns [`ExportError::Json`] if serialisation fails.
pub fn to_json(history: &TrainingHistory) -> Result<String, ExportError> {
    Ok(serde_json::to_string_pretty(history)?)
}

/// Writes the CSV rendering of `history` to `path`.
///
/// # Errors
///
/// Returns [`ExportError::Io`] on filesystem errors.
pub fn write_csv(history: &TrainingHistory, path: impl AsRef<Path>) -> Result<(), ExportError> {
    let mut file = std::fs::File::create(path)?;
    file.write_all(to_csv(history).as_bytes())?;
    Ok(())
}

/// Writes the JSON rendering of `history` to `path`.
///
/// # Errors
///
/// Returns [`ExportError::Json`] or [`ExportError::Io`].
pub fn write_json(history: &TrainingHistory, path: impl AsRef<Path>) -> Result<(), ExportError> {
    let mut file = std::fs::File::create(path)?;
    file.write_all(to_json(history)?.as_bytes())?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn history() -> TrainingHistory {
        let mut h = TrainingHistory::new("export-test", "krum", "gaussian", 12, 4);
        for i in 0..3 {
            let mut r = RoundRecord::new(i, 1.0 / (i + 1) as f64, 0.1);
            r.loss = Some(2.0 / (i + 1) as f64);
            h.push(r);
        }
        h
    }

    #[test]
    fn csv_has_header_and_one_row_per_round() {
        let csv = to_csv(&history());
        let lines: Vec<&str> = csv.trim_end().lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("round,loss"));
        assert!(lines[1].starts_with("0,2,"));
    }

    #[test]
    fn json_round_trips_through_serde() {
        let h = history();
        let json = to_json(&h).unwrap();
        let back: TrainingHistory = serde_json::from_str(&json).unwrap();
        assert_eq!(h, back);
    }

    #[test]
    fn files_are_written() {
        let dir = std::env::temp_dir().join(format!("krum-metrics-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let csv_path = dir.join("history.csv");
        let json_path = dir.join("history.json");
        write_csv(&history(), &csv_path).unwrap();
        write_json(&history(), &json_path).unwrap();
        assert!(std::fs::read_to_string(&csv_path)
            .unwrap()
            .contains("round,loss"));
        assert!(std::fs::read_to_string(&json_path)
            .unwrap()
            .contains("\"aggregator\": \"krum\""));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn io_errors_are_reported() {
        let err = write_csv(&history(), "/nonexistent-dir/OUT/metrics.csv").unwrap_err();
        assert!(matches!(err, ExportError::Io(_)));
        assert!(err.to_string().contains("write"));
    }
}
