//! # krum-metrics
//!
//! Round-level telemetry for the Krum reproduction.
//!
//! Every experiment in EXPERIMENTS.md is regenerated from the numeric series
//! produced here: a [`RoundRecord`] per synchronous round, collected into a
//! [`TrainingHistory`], summarised by [`SelectionStats`] (how often the
//! aggregation rule picked a Byzantine proposal) and exported as CSV or JSON
//! for the tables in the write-up.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod export;
mod history;
mod round;
mod selection;

pub use export::{to_csv, to_json, write_csv, write_json, ExportError};
pub use history::{ConvergenceSummary, TrainingHistory};
pub use round::RoundRecord;
pub use selection::SelectionStats;

/// Convenience prelude for the metrics crate.
pub mod prelude {
    pub use crate::{
        to_csv, to_json, ConvergenceSummary, ExportError, RoundRecord, SelectionStats,
        TrainingHistory,
    };
}
