//! Selection statistics for selection-based aggregation rules.
//!
//! The Figure-2 experiment (E2) measures exactly this: how often each rule
//! ends up selecting a Byzantine proposal under the collusion attack.

use serde::{Deserialize, Serialize};

/// Counts how often the aggregation rule selected an honest vs. a Byzantine
/// proposal.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct SelectionStats {
    honest: usize,
    byzantine: usize,
}

impl SelectionStats {
    /// Creates an empty counter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one selection event.
    pub fn record(&mut self, selected_byzantine: bool) {
        if selected_byzantine {
            self.byzantine += 1;
        } else {
            self.honest += 1;
        }
    }

    /// Number of rounds in which an honest proposal was selected.
    pub fn honest_selected(&self) -> usize {
        self.honest
    }

    /// Number of rounds in which a Byzantine proposal was selected.
    pub fn byzantine_selected(&self) -> usize {
        self.byzantine
    }

    /// Total number of recorded selections.
    pub fn total(&self) -> usize {
        self.honest + self.byzantine
    }

    /// Fraction of rounds in which a Byzantine proposal was selected
    /// (0.0 when nothing has been recorded).
    pub fn byzantine_rate(&self) -> f64 {
        if self.total() == 0 {
            0.0
        } else {
            self.byzantine as f64 / self.total() as f64
        }
    }

    /// Merges another counter into this one.
    pub fn merge(&mut self, other: &Self) {
        self.honest += other.honest;
        self.byzantine += other.byzantine;
    }
}

impl std::fmt::Display for SelectionStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "selections: {} honest, {} byzantine ({:.1}% byzantine)",
            self.honest,
            self.byzantine,
            100.0 * self.byzantine_rate()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_rates() {
        let mut s = SelectionStats::new();
        assert_eq!(s.total(), 0);
        assert_eq!(s.byzantine_rate(), 0.0);
        s.record(false);
        s.record(false);
        s.record(true);
        assert_eq!(s.honest_selected(), 2);
        assert_eq!(s.byzantine_selected(), 1);
        assert_eq!(s.total(), 3);
        assert!((s.byzantine_rate() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn merge_adds_counts() {
        let mut a = SelectionStats::new();
        a.record(true);
        let mut b = SelectionStats::new();
        b.record(false);
        b.record(false);
        a.merge(&b);
        assert_eq!(a.total(), 3);
        assert_eq!(a.byzantine_selected(), 1);
    }

    #[test]
    fn display_mentions_percentage() {
        let mut s = SelectionStats::new();
        s.record(true);
        s.record(false);
        let text = s.to_string();
        assert!(text.contains("50.0%"));
        assert!(text.contains("1 honest"));
    }

    #[test]
    fn serde_round_trip() {
        let mut s = SelectionStats::new();
        s.record(true);
        let json = serde_json::to_string(&s).unwrap();
        let back: SelectionStats = serde_json::from_str(&json).unwrap();
        assert_eq!(s, back);
    }
}
