//! Training history: an ordered collection of round records plus metadata.

use serde::{Deserialize, Serialize};

use crate::round::RoundRecord;
use crate::selection::SelectionStats;

/// The full trajectory of one training run.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct TrainingHistory {
    /// Free-form run label, e.g. `"krum n=25 f=11 gaussian-attack"`.
    pub label: String,
    /// Name of the aggregation rule used by the parameter server.
    pub aggregator: String,
    /// Name of the attack the Byzantine workers ran (`"none"` if `f = 0`).
    pub attack: String,
    /// Total number of workers `n`.
    pub workers: usize,
    /// Number of Byzantine workers `f`.
    pub byzantine: usize,
    /// One record per completed round, in round order.
    pub rounds: Vec<RoundRecord>,
}

/// Summary of how (and whether) a run converged.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ConvergenceSummary {
    /// Loss at the first recorded round, when available.
    pub initial_loss: Option<f64>,
    /// Loss at the last recorded round, when available.
    pub final_loss: Option<f64>,
    /// Best (lowest) loss seen during the run, when available.
    pub best_loss: Option<f64>,
    /// Accuracy at the last recorded round, when available.
    pub final_accuracy: Option<f64>,
    /// Smallest recorded true-gradient norm, when available.
    pub min_gradient_norm: Option<f64>,
    /// Mean aggregation time per round in nanoseconds (0 when empty).
    pub mean_aggregate_nanos: f64,
    /// 99th-percentile (nearest-rank) aggregation time per round in
    /// nanoseconds (0 when empty) — the tail the scaling benchmarks watch.
    pub p99_aggregate_nanos: f64,
    /// Number of recorded rounds.
    pub rounds: usize,
    /// Whether any recorded quantity became non-finite (a diverged run).
    pub diverged: bool,
}

impl TrainingHistory {
    /// Creates an empty history with descriptive metadata.
    pub fn new(
        label: impl Into<String>,
        aggregator: impl Into<String>,
        attack: impl Into<String>,
        workers: usize,
        byzantine: usize,
    ) -> Self {
        Self {
            label: label.into(),
            aggregator: aggregator.into(),
            attack: attack.into(),
            workers,
            byzantine,
            rounds: Vec::new(),
        }
    }

    /// Appends one round record.
    pub fn push(&mut self, record: RoundRecord) {
        self.rounds.push(record);
    }

    /// Number of recorded rounds.
    pub fn len(&self) -> usize {
        self.rounds.len()
    }

    /// Returns `true` when no round has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.rounds.is_empty()
    }

    /// The last recorded round, if any.
    pub fn last(&self) -> Option<&RoundRecord> {
        self.rounds.last()
    }

    /// Loss series (rounds without a loss measurement are skipped).
    pub fn losses(&self) -> Vec<(usize, f64)> {
        self.rounds
            .iter()
            .filter_map(|r| r.loss.map(|l| (r.round, l)))
            .collect()
    }

    /// Accuracy series (rounds without an accuracy measurement are skipped).
    pub fn accuracies(&self) -> Vec<(usize, f64)> {
        self.rounds
            .iter()
            .filter_map(|r| r.accuracy.map(|a| (r.round, a)))
            .collect()
    }

    /// True-gradient-norm series.
    pub fn gradient_norms(&self) -> Vec<(usize, f64)> {
        self.rounds
            .iter()
            .filter_map(|r| r.true_gradient_norm.map(|g| (r.round, g)))
            .collect()
    }

    /// First round at which the loss dropped to `threshold` or below, if ever.
    pub fn rounds_to_loss(&self, threshold: f64) -> Option<usize> {
        self.rounds
            .iter()
            .find(|r| r.loss.is_some_and(|l| l <= threshold))
            .map(|r| r.round)
    }

    /// First round at which the accuracy reached `threshold` or above, if ever.
    pub fn rounds_to_accuracy(&self, threshold: f64) -> Option<usize> {
        self.rounds
            .iter()
            .find(|r| r.accuracy.is_some_and(|a| a >= threshold))
            .map(|r| r.round)
    }

    /// Selection statistics accumulated over the whole run.
    pub fn selection_stats(&self) -> SelectionStats {
        let mut stats = SelectionStats::default();
        for r in &self.rounds {
            if let Some(byz) = r.selected_byzantine {
                stats.record(byz);
            }
        }
        stats
    }

    fn mean_nanos(&self, pick: impl Fn(&RoundRecord) -> u128) -> f64 {
        if self.rounds.is_empty() {
            return 0.0;
        }
        self.rounds.iter().map(|r| pick(r) as f64).sum::<f64>() / self.rounds.len() as f64
    }

    /// Mean aggregation time per round in nanoseconds (0 when empty).
    pub fn mean_aggregation_nanos(&self) -> f64 {
        self.mean_nanos(|r| r.aggregation_nanos)
    }

    /// 99th-percentile aggregation time per round in nanoseconds
    /// (nearest-rank over the recorded rounds; 0 when empty).
    pub fn p99_aggregation_nanos(&self) -> f64 {
        let mut times: Vec<u128> = self.rounds.iter().map(|r| r.aggregation_nanos).collect();
        if times.is_empty() {
            return 0.0;
        }
        times.sort_unstable();
        times[(99 * times.len()).div_ceil(100) - 1] as f64
    }

    /// Mean propose-phase (worker gradient) time per round in nanoseconds
    /// (0 when empty).
    pub fn mean_propose_nanos(&self) -> f64 {
        self.mean_nanos(|r| r.propose_nanos)
    }

    /// Mean attack-phase time per round in nanoseconds (0 when empty).
    pub fn mean_attack_nanos(&self) -> f64 {
        self.mean_nanos(|r| r.attack_nanos)
    }

    /// Mean simulated-network charge per round in nanoseconds (0 when empty
    /// or when no network model is attached).
    pub fn mean_network_nanos(&self) -> f64 {
        self.mean_nanos(|r| r.network_nanos)
    }

    /// Mean full-round time in nanoseconds (0 when empty).
    pub fn mean_round_nanos(&self) -> f64 {
        self.mean_nanos(|r| r.round_nanos)
    }

    fn mean_over_quorum_rounds(&self, pick: impl Fn(&RoundRecord) -> Option<usize>) -> f64 {
        let values: Vec<usize> = self.rounds.iter().filter_map(&pick).collect();
        if values.is_empty() {
            return 0.0;
        }
        values.iter().map(|&v| v as f64).sum::<f64>() / values.len() as f64
    }

    /// Mean quorum size over the rounds that recorded one (async-quorum
    /// execution); 0 when the run never recorded a quorum.
    pub fn mean_quorum_size(&self) -> f64 {
        self.mean_over_quorum_rounds(|r| r.quorum_size)
    }

    /// Mean number of stale carry-over proposals aggregated per
    /// quorum-recording round; 0 when the run never recorded a quorum.
    pub fn mean_stale_in_quorum(&self) -> f64 {
        self.mean_over_quorum_rounds(|r| r.stale_in_quorum)
    }

    /// Total in-flight proposals dropped for exceeding the staleness bound
    /// over the whole run.
    pub fn total_dropped_stale(&self) -> usize {
        self.rounds.iter().filter_map(|r| r.dropped_stale).sum()
    }

    /// Mean wire traffic per round in bytes, over the rounds that ran on a
    /// real transport (`krum-server`); 0 when the run was in-process.
    pub fn mean_wire_bytes(&self) -> f64 {
        let values: Vec<u64> = self.rounds.iter().filter_map(|r| r.wire_bytes).collect();
        if values.is_empty() {
            return 0.0;
        }
        values.iter().map(|&v| v as f64).sum::<f64>() / values.len() as f64
    }

    /// Total wire traffic of the run in bytes (0 when in-process).
    pub fn total_wire_bytes(&self) -> u64 {
        self.rounds.iter().filter_map(|r| r.wire_bytes).sum()
    }

    /// Mean uncompressed-equivalent traffic per round in bytes, over the
    /// rounds that ran on a real transport; 0 when the run was in-process.
    /// Equal to [`TrainingHistory::mean_wire_bytes`] when no codec was
    /// negotiated.
    pub fn mean_raw_bytes(&self) -> f64 {
        let values: Vec<u64> = self.rounds.iter().filter_map(|r| r.raw_bytes).collect();
        if values.is_empty() {
            return 0.0;
        }
        values.iter().map(|&v| v as f64).sum::<f64>() / values.len() as f64
    }

    /// Total uncompressed-equivalent traffic of the run in bytes (0 when
    /// in-process).
    pub fn total_raw_bytes(&self) -> u64 {
        self.rounds.iter().filter_map(|r| r.raw_bytes).sum()
    }

    /// Mean broadcast-to-quorum-close arrival latency per round in
    /// nanoseconds, over the rounds that ran on a real transport; 0 when
    /// the run was in-process.
    pub fn mean_arrival_nanos(&self) -> f64 {
        let values: Vec<u128> = self.rounds.iter().filter_map(|r| r.arrival_nanos).collect();
        if values.is_empty() {
            return 0.0;
        }
        values.iter().map(|&v| v as f64).sum::<f64>() / values.len() as f64
    }

    /// Total worker reconnections absorbed over the run (0 when in-process
    /// or churn-free).
    pub fn total_reconnects(&self) -> u64 {
        self.rounds.iter().filter_map(|r| r.reconnects).sum()
    }

    /// Total rounds that closed degraded — an honest crash fault absorbed
    /// by the quorum path instead of a full barrier (0 when in-process).
    pub fn total_degraded_rounds(&self) -> u64 {
        self.rounds.iter().filter_map(|r| r.degraded_rounds).sum()
    }

    /// Total checkpoint bytes persisted over the run (0 when checkpointing
    /// is off or the run was in-process).
    pub fn total_checkpoint_bytes(&self) -> u64 {
        self.rounds.iter().filter_map(|r| r.checkpoint_bytes).sum()
    }

    /// Mean checkpoint bytes per checkpoint-recording round (0 when the
    /// run never checkpointed).
    pub fn mean_checkpoint_bytes(&self) -> f64 {
        let values: Vec<u64> = self
            .rounds
            .iter()
            .filter_map(|r| r.checkpoint_bytes)
            .filter(|&b| b > 0)
            .collect();
        if values.is_empty() {
            return 0.0;
        }
        values.iter().map(|&v| v as f64).sum::<f64>() / values.len() as f64
    }

    /// Mean distance between the accepted aggregate and the honest mean,
    /// over the rounds that tracked drift (0 when untracked).
    pub fn mean_dist_to_honest_mean(&self) -> f64 {
        let values: Vec<f64> = self
            .rounds
            .iter()
            .filter_map(|r| r.dist_to_honest_mean)
            .collect();
        if values.is_empty() {
            return 0.0;
        }
        values.iter().sum::<f64>() / values.len() as f64
    }

    /// The attacker's cumulative displacement of the trajectory at the end
    /// of the run — the last recorded `attacker_displacement` (`None` when
    /// drift was never tracked or no Byzantine proposals were present).
    pub fn final_attacker_displacement(&self) -> Option<f64> {
        self.rounds
            .iter()
            .rev()
            .find_map(|r| r.attacker_displacement)
    }

    /// Mean reputation spread over the rounds that recorded one (the
    /// reputation-weighted defense; 0 for stateless rules).
    pub fn mean_reputation_spread(&self) -> f64 {
        let values: Vec<f64> = self
            .rounds
            .iter()
            .filter_map(|r| r.reputation_spread)
            .collect();
        if values.is_empty() {
            return 0.0;
        }
        values.iter().sum::<f64>() / values.len() as f64
    }

    /// Builds a [`ConvergenceSummary`] over the recorded rounds.
    pub fn summary(&self) -> ConvergenceSummary {
        let losses: Vec<f64> = self.rounds.iter().filter_map(|r| r.loss).collect();
        let accuracy = self.rounds.iter().rev().find_map(|r| r.accuracy);
        let grad_norms: Vec<f64> = self
            .rounds
            .iter()
            .filter_map(|r| r.true_gradient_norm)
            .collect();
        let diverged = self.rounds.iter().any(|r| {
            r.loss.is_some_and(|l| !l.is_finite())
                || !r.aggregate_norm.is_finite()
                || r.true_gradient_norm.is_some_and(|g| !g.is_finite())
        });
        ConvergenceSummary {
            initial_loss: losses.first().copied(),
            final_loss: losses.last().copied(),
            best_loss: losses.iter().copied().reduce(f64::min),
            final_accuracy: accuracy,
            min_gradient_norm: grad_norms.iter().copied().reduce(f64::min),
            mean_aggregate_nanos: self.mean_aggregation_nanos(),
            p99_aggregate_nanos: self.p99_aggregation_nanos(),
            rounds: self.rounds.len(),
            diverged,
        }
    }
}

impl Extend<RoundRecord> for TrainingHistory {
    fn extend<T: IntoIterator<Item = RoundRecord>>(&mut self, iter: T) {
        self.rounds.extend(iter);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(round: usize, loss: f64, acc: f64) -> RoundRecord {
        let mut r = RoundRecord::new(round, 1.0, 0.1);
        r.loss = Some(loss);
        r.accuracy = Some(acc);
        r.true_gradient_norm = Some(loss * 2.0);
        r
    }

    fn history() -> TrainingHistory {
        let mut h = TrainingHistory::new("test", "krum", "none", 10, 3);
        for (i, (l, a)) in [(1.0, 0.3), (0.6, 0.5), (0.3, 0.7), (0.1, 0.9)]
            .iter()
            .enumerate()
        {
            h.push(record(i, *l, *a));
        }
        h
    }

    #[test]
    fn metadata_and_series() {
        let h = history();
        assert_eq!(h.len(), 4);
        assert!(!h.is_empty());
        assert_eq!(h.aggregator, "krum");
        assert_eq!(h.workers, 10);
        assert_eq!(h.byzantine, 3);
        assert_eq!(h.losses().len(), 4);
        assert_eq!(h.accuracies()[3], (3, 0.9));
        assert_eq!(h.gradient_norms()[0], (0, 2.0));
        assert_eq!(h.last().unwrap().round, 3);
    }

    #[test]
    fn convergence_thresholds() {
        let h = history();
        assert_eq!(h.rounds_to_loss(0.6), Some(1));
        assert_eq!(h.rounds_to_loss(0.05), None);
        assert_eq!(h.rounds_to_accuracy(0.7), Some(2));
        assert_eq!(h.rounds_to_accuracy(0.99), None);
    }

    #[test]
    fn summary_reports_losses_and_divergence() {
        let h = history();
        let s = h.summary();
        assert_eq!(s.initial_loss, Some(1.0));
        assert_eq!(s.final_loss, Some(0.1));
        assert_eq!(s.best_loss, Some(0.1));
        assert_eq!(s.final_accuracy, Some(0.9));
        assert_eq!(s.min_gradient_norm, Some(0.2));
        assert_eq!(s.rounds, 4);
        assert!(!s.diverged);

        let mut bad = history();
        bad.push(record(4, f64::INFINITY, 0.0));
        assert!(bad.summary().diverged);
    }

    #[test]
    fn empty_history_summary_is_all_none() {
        let h = TrainingHistory::new("empty", "average", "none", 5, 0);
        let s = h.summary();
        assert!(s.initial_loss.is_none());
        assert!(s.best_loss.is_none());
        assert_eq!(s.rounds, 0);
        assert!(!s.diverged);
        assert_eq!(h.mean_aggregation_nanos(), 0.0);
        assert_eq!(h.p99_aggregation_nanos(), 0.0);
        assert_eq!(s.mean_aggregate_nanos, 0.0);
        assert_eq!(s.p99_aggregate_nanos, 0.0);
        assert_eq!(h.mean_round_nanos(), 0.0);
    }

    #[test]
    fn selection_stats_accumulate() {
        let mut h = TrainingHistory::new("sel", "krum", "collusion", 10, 2);
        for i in 0..6 {
            let mut r = RoundRecord::new(i, 1.0, 0.1);
            r.selected_byzantine = Some(i % 3 == 0);
            h.push(r);
        }
        let stats = h.selection_stats();
        assert_eq!(stats.total(), 6);
        assert_eq!(stats.byzantine_selected(), 2);
        assert!((stats.byzantine_rate() - 2.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn timing_means() {
        let mut h = TrainingHistory::new("t", "krum", "none", 4, 0);
        for i in 0..3 {
            let mut r = RoundRecord::new(i, 1.0, 0.1);
            r.aggregation_nanos = 100 * (i as u128 + 1);
            r.propose_nanos = 50;
            r.attack_nanos = 10 * (i as u128 + 1);
            r.network_nanos = 400;
            r.round_nanos = 1000;
            h.push(r);
        }
        assert!((h.mean_aggregation_nanos() - 200.0).abs() < 1e-9);
        // Nearest-rank p99 over {100, 200, 300} is the max, and the
        // summary carries both aggregate-time statistics.
        assert!((h.p99_aggregation_nanos() - 300.0).abs() < 1e-9);
        let s = h.summary();
        assert!((s.mean_aggregate_nanos - 200.0).abs() < 1e-9);
        assert!((s.p99_aggregate_nanos - 300.0).abs() < 1e-9);
        assert!((h.mean_round_nanos() - 1000.0).abs() < 1e-9);
        assert!((h.mean_propose_nanos() - 50.0).abs() < 1e-9);
        assert!((h.mean_attack_nanos() - 20.0).abs() < 1e-9);
        assert!((h.mean_network_nanos() - 400.0).abs() < 1e-9);
        let empty = TrainingHistory::new("e", "krum", "none", 4, 0);
        assert_eq!(empty.mean_propose_nanos(), 0.0);
        assert_eq!(empty.mean_network_nanos(), 0.0);
    }

    #[test]
    fn quorum_statistics_aggregate_over_async_rounds() {
        let mut h = TrainingHistory::new("q", "krum", "straggler", 10, 2);
        // Two async rounds and one barrier round (no quorum columns).
        for (i, (q, stale, dropped)) in [(8, 0, 1), (8, 2, 0)].iter().enumerate() {
            let mut r = RoundRecord::new(i, 1.0, 0.1);
            r.quorum_size = Some(*q);
            r.stale_in_quorum = Some(*stale);
            r.dropped_stale = Some(*dropped);
            h.push(r);
        }
        h.push(RoundRecord::new(2, 1.0, 0.1));
        assert!((h.mean_quorum_size() - 8.0).abs() < 1e-12);
        assert!((h.mean_stale_in_quorum() - 1.0).abs() < 1e-12);
        assert_eq!(h.total_dropped_stale(), 1);
        let empty = TrainingHistory::new("e", "krum", "none", 4, 0);
        assert_eq!(empty.mean_quorum_size(), 0.0);
        assert_eq!(empty.total_dropped_stale(), 0);
    }

    /// Satellite: the wire statistics aggregate only over networked rounds
    /// and report zero for in-process histories.
    #[test]
    fn wire_statistics_aggregate_over_networked_rounds() {
        let mut h = TrainingHistory::new("w", "krum", "sign-flip", 9, 2);
        for (i, (bytes, arrival)) in [(1_000u64, 500u128), (3_000, 1_500)].iter().enumerate() {
            let mut r = RoundRecord::new(i, 1.0, 0.1);
            r.wire_bytes = Some(*bytes);
            r.raw_bytes = Some(*bytes * 4);
            r.arrival_nanos = Some(*arrival);
            h.push(r);
        }
        h.push(RoundRecord::new(2, 1.0, 0.1)); // in-process round
        assert!((h.mean_wire_bytes() - 2_000.0).abs() < 1e-12);
        assert_eq!(h.total_wire_bytes(), 4_000);
        assert!((h.mean_raw_bytes() - 8_000.0).abs() < 1e-12);
        assert_eq!(h.total_raw_bytes(), 16_000);
        assert!((h.mean_arrival_nanos() - 1_000.0).abs() < 1e-12);
        let empty = TrainingHistory::new("e", "krum", "none", 4, 0);
        assert_eq!(empty.mean_wire_bytes(), 0.0);
        assert_eq!(empty.total_wire_bytes(), 0);
        assert_eq!(empty.mean_raw_bytes(), 0.0);
        assert_eq!(empty.total_raw_bytes(), 0);
        assert_eq!(empty.mean_arrival_nanos(), 0.0);
    }

    /// The drift statistics aggregate only over drift-tracking rounds; the
    /// final displacement is the last recorded value, not a sum (the column
    /// is already cumulative).
    #[test]
    fn drift_statistics_aggregate_over_tracking_rounds() {
        let mut h = TrainingHistory::new("d", "krum", "inlier-drift", 9, 2);
        assert_eq!(h.mean_dist_to_honest_mean(), 0.0);
        assert_eq!(h.final_attacker_displacement(), None);
        assert_eq!(h.mean_reputation_spread(), 0.0);
        for (i, (dist, disp, spread)) in [(1.0, 0.5, 0.1), (3.0, 1.25, 0.3)].iter().enumerate() {
            let mut r = RoundRecord::new(i, 1.0, 0.1);
            r.dist_to_honest_mean = Some(*dist);
            r.attacker_displacement = Some(*disp);
            r.reputation_spread = Some(*spread);
            h.push(r);
        }
        h.push(RoundRecord::new(2, 1.0, 0.1)); // untracked round
        assert!((h.mean_dist_to_honest_mean() - 2.0).abs() < 1e-12);
        assert_eq!(h.final_attacker_displacement(), Some(1.25));
        assert!((h.mean_reputation_spread() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn extend_appends_records() {
        let mut h = TrainingHistory::new("e", "average", "none", 2, 0);
        h.extend(vec![
            RoundRecord::new(0, 1.0, 0.1),
            RoundRecord::new(1, 1.0, 0.1),
        ]);
        assert_eq!(h.len(), 2);
    }

    #[test]
    fn serde_round_trip() {
        let h = history();
        let json = serde_json::to_string(&h).unwrap();
        let back: TrainingHistory = serde_json::from_str(&json).unwrap();
        assert_eq!(h, back);
    }

    /// Satellite: churn totals sum only the rounds that recorded the
    /// transport-side counters, and the checkpoint mean skips
    /// checkpoint-free rounds.
    #[test]
    fn churn_totals_and_checkpoint_mean() {
        let mut h = TrainingHistory::new("churn", "krum", "none", 9, 2);
        assert_eq!(h.total_reconnects(), 0);
        assert_eq!(h.total_degraded_rounds(), 0);
        assert_eq!(h.total_checkpoint_bytes(), 0);
        assert_eq!(h.mean_checkpoint_bytes(), 0.0);
        for i in 0..4 {
            let mut r = RoundRecord::new(i, 1.0, 0.1);
            r.reconnects = Some(u64::from(i == 2));
            r.degraded_rounds = Some(u64::from(i == 2));
            r.checkpoint_bytes = Some(if i % 2 == 1 { 1_000 } else { 0 });
            h.push(r);
        }
        h.push(RoundRecord::new(4, 1.0, 0.1)); // in-process round: all None
        assert_eq!(h.total_reconnects(), 1);
        assert_eq!(h.total_degraded_rounds(), 1);
        assert_eq!(h.total_checkpoint_bytes(), 2_000);
        assert_eq!(h.mean_checkpoint_bytes(), 1_000.0);
    }
}
