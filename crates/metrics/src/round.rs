//! Per-round measurement record.

use serde::{Deserialize, Serialize};

/// Everything the parameter server measured during one synchronous round.
///
/// Fields that cannot always be computed (test accuracy, the angle to the true
/// gradient, which worker was selected) are optional; experiments fill in what
/// their configuration makes observable.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RoundRecord {
    /// Round index `t`, starting at 0.
    pub round: usize,
    /// Training loss `Q(x_t)` (or the best available estimate of it).
    pub loss: Option<f64>,
    /// Accuracy on a held-out evaluation set, when one is configured.
    pub accuracy: Option<f64>,
    /// Norm of the true gradient `‖∇Q(x_t)‖` when analytically available.
    pub true_gradient_norm: Option<f64>,
    /// Norm of the aggregated update `‖F(V_1, …, V_n)‖`.
    pub aggregate_norm: f64,
    /// Cosine of the angle between the aggregate and the true gradient
    /// (`⟨F, g⟩ / (‖F‖·‖g‖)`), when the true gradient is available.
    pub alignment: Option<f64>,
    /// Distance between the parameter vector and a known optimum `‖x_t − x*‖`,
    /// when the optimum is known (quadratic cost experiments).
    pub distance_to_optimum: Option<f64>,
    /// Index of the worker whose proposal was selected, for selection rules
    /// (Krum, Multi-Krum with m = 1); `None` for averaging-style rules.
    pub selected_worker: Option<usize>,
    /// Whether the selected worker was Byzantine.
    pub selected_byzantine: Option<bool>,
    /// Learning rate `γ_t` used this round.
    pub learning_rate: f64,
    /// Wall-clock duration of the propose phase (honest workers estimating
    /// gradients at the broadcast parameters), in nanoseconds.
    pub propose_nanos: u128,
    /// Wall-clock duration of the attack phase (the adversary observing the
    /// round and forging its proposals), in nanoseconds.
    pub attack_nanos: u128,
    /// Wall-clock duration of the aggregation step, in nanoseconds.
    pub aggregation_nanos: u128,
    /// Simulated network time charged to this round (zero when no network
    /// model is attached), in nanoseconds. Included in `round_nanos`.
    pub network_nanos: u128,
    /// Wall-clock duration of the full round (including any simulated
    /// network charge), in nanoseconds.
    pub round_nanos: u128,
}

impl RoundRecord {
    /// Creates a record with only the mandatory fields; the optional
    /// measurements start as `None`/zero and are filled in by the trainer.
    pub fn new(round: usize, aggregate_norm: f64, learning_rate: f64) -> Self {
        Self {
            round,
            loss: None,
            accuracy: None,
            true_gradient_norm: None,
            aggregate_norm,
            alignment: None,
            distance_to_optimum: None,
            selected_worker: None,
            selected_byzantine: None,
            learning_rate,
            propose_nanos: 0,
            attack_nanos: 0,
            aggregation_nanos: 0,
            network_nanos: 0,
            round_nanos: 0,
        }
    }

    /// CSV header matching [`RoundRecord::to_csv_row`]. The timing columns
    /// follow the round pipeline: propose → attack → aggregate → network.
    pub fn csv_header() -> &'static str {
        "round,loss,accuracy,true_gradient_norm,aggregate_norm,alignment,\
         distance_to_optimum,selected_worker,selected_byzantine,learning_rate,\
         propose_nanos,attack_nanos,aggregation_nanos,network_nanos,round_nanos"
    }

    /// Serialises the record as one CSV row (empty cells for `None`).
    pub fn to_csv_row(&self) -> String {
        fn opt<T: std::fmt::Display>(v: &Option<T>) -> String {
            v.as_ref().map(ToString::to_string).unwrap_or_default()
        }
        format!(
            "{},{},{},{},{},{},{},{},{},{},{},{},{},{},{}",
            self.round,
            opt(&self.loss),
            opt(&self.accuracy),
            opt(&self.true_gradient_norm),
            self.aggregate_norm,
            opt(&self.alignment),
            opt(&self.distance_to_optimum),
            opt(&self.selected_worker),
            opt(&self.selected_byzantine),
            self.learning_rate,
            self.propose_nanos,
            self.attack_nanos,
            self.aggregation_nanos,
            self.network_nanos,
            self.round_nanos,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_fills_defaults() {
        let r = RoundRecord::new(3, 1.5, 0.01);
        assert_eq!(r.round, 3);
        assert_eq!(r.aggregate_norm, 1.5);
        assert_eq!(r.learning_rate, 0.01);
        assert!(r.loss.is_none());
        assert!(r.selected_worker.is_none());
        assert_eq!(r.aggregation_nanos, 0);
        assert_eq!(r.propose_nanos, 0);
        assert_eq!(r.attack_nanos, 0);
        assert_eq!(r.network_nanos, 0);
    }

    #[test]
    fn phase_columns_appear_in_pipeline_order() {
        let header = RoundRecord::csv_header();
        let propose = header.find("propose_nanos").unwrap();
        let attack = header.find("attack_nanos").unwrap();
        let aggregation = header.find("aggregation_nanos").unwrap();
        let network = header.find("network_nanos").unwrap();
        let round = header.find("round_nanos").unwrap();
        assert!(propose < attack && attack < aggregation);
        assert!(aggregation < network && network < round);
        let mut r = RoundRecord::new(0, 1.0, 0.1);
        r.propose_nanos = 11;
        r.attack_nanos = 22;
        r.aggregation_nanos = 33;
        r.network_nanos = 44;
        r.round_nanos = 110;
        assert!(r.to_csv_row().ends_with("11,22,33,44,110"));
    }

    #[test]
    fn csv_row_has_as_many_cells_as_header() {
        let mut r = RoundRecord::new(0, 2.0, 0.1);
        r.loss = Some(0.7);
        r.selected_worker = Some(4);
        r.selected_byzantine = Some(false);
        let header_cells = RoundRecord::csv_header().split(',').count();
        let row_cells = r.to_csv_row().split(',').count();
        assert_eq!(header_cells, row_cells);
        assert!(r.to_csv_row().contains("0.7"));
    }

    #[test]
    fn none_fields_serialise_as_empty_cells() {
        let r = RoundRecord::new(1, 0.0, 0.1);
        let row = r.to_csv_row();
        assert!(row.starts_with("1,,,,"), "row was {row}");
    }

    #[test]
    fn serde_round_trip() {
        let mut r = RoundRecord::new(9, 0.4, 0.05);
        r.alignment = Some(0.99);
        let json = serde_json::to_string(&r).unwrap();
        let back: RoundRecord = serde_json::from_str(&json).unwrap();
        assert_eq!(r, back);
    }
}
