//! Per-round measurement record.

use serde::{Deserialize, Serialize};

/// Everything the parameter server measured during one synchronous round.
///
/// Fields that cannot always be computed (test accuracy, the angle to the true
/// gradient, which worker was selected) are optional; experiments fill in what
/// their configuration makes observable.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RoundRecord {
    /// Round index `t`, starting at 0.
    pub round: usize,
    /// Training loss `Q(x_t)` (or the best available estimate of it).
    pub loss: Option<f64>,
    /// Accuracy on a held-out evaluation set, when one is configured.
    pub accuracy: Option<f64>,
    /// Norm of the true gradient `‖∇Q(x_t)‖` when analytically available.
    pub true_gradient_norm: Option<f64>,
    /// Norm of the aggregated update `‖F(V_1, …, V_n)‖`.
    pub aggregate_norm: f64,
    /// Cosine of the angle between the aggregate and the true gradient
    /// (`⟨F, g⟩ / (‖F‖·‖g‖)`), when the true gradient is available.
    pub alignment: Option<f64>,
    /// Distance between the parameter vector and a known optimum `‖x_t − x*‖`,
    /// when the optimum is known (quadratic cost experiments).
    pub distance_to_optimum: Option<f64>,
    /// Index of the worker whose proposal was selected, for selection rules
    /// (Krum, Multi-Krum with m = 1); `None` for averaging-style rules.
    pub selected_worker: Option<usize>,
    /// Whether the selected worker was Byzantine.
    pub selected_byzantine: Option<bool>,
    /// Learning rate `γ_t` used this round.
    pub learning_rate: f64,
    /// Wall-clock duration of the propose phase (honest workers estimating
    /// gradients at the broadcast parameters), in nanoseconds.
    pub propose_nanos: u128,
    /// Wall-clock duration of the attack phase (the adversary observing the
    /// round and forging its proposals), in nanoseconds.
    pub attack_nanos: u128,
    /// Wall-clock duration of the aggregation step, in nanoseconds.
    pub aggregation_nanos: u128,
    /// Simulated network time charged to this round (zero when no network
    /// model is attached), in nanoseconds. Included in `round_nanos`.
    pub network_nanos: u128,
    /// Wall-clock duration of the full round (including any simulated
    /// network charge), in nanoseconds.
    pub round_nanos: u128,
    /// Number of proposals aggregated this round (`None` for barrier
    /// strategies, where it is always `n`; `Some(q)` under async quorum).
    pub quorum_size: Option<usize>,
    /// How many quorum members were stale carry-overs from earlier rounds.
    pub stale_in_quorum: Option<usize>,
    /// Largest staleness (in rounds) among this round's quorum members.
    pub max_staleness_in_quorum: Option<usize>,
    /// In-flight proposals dropped this round for exceeding the staleness
    /// bound.
    pub dropped_stale: Option<usize>,
    /// In-flight proposals carried into the next round.
    pub pending_carryover: Option<usize>,
    /// Bytes exchanged on the wire for this round (frames sent plus frames
    /// received), when the round ran over a real transport (`krum-server`);
    /// `None` for in-process execution.
    pub wire_bytes: Option<u64>,
    /// Bytes the same round would have cost uncompressed (every gradient
    /// and parameter payload at its raw `8·dim` framing). Equal to
    /// `wire_bytes` when no codec is negotiated; the `raw_bytes /
    /// wire_bytes` ratio is the round's wire-compression factor. `None`
    /// for in-process execution.
    pub raw_bytes: Option<u64>,
    /// Wall-clock nanoseconds from the round's broadcast to the arrival
    /// that closed its quorum, measured on a real transport; `None` for
    /// in-process execution (where `network_nanos` carries the *simulated*
    /// charge instead).
    pub arrival_nanos: Option<u128>,
    /// Worker reconnections (`Rejoin` handshakes re-staffed into their old
    /// slot) absorbed during this round; `None` for in-process execution.
    pub reconnects: Option<u64>,
    /// 1 when this round closed degraded — an honest crash fault absorbed
    /// by the quorum path instead of a full barrier — else 0; `None` for
    /// in-process execution.
    pub degraded_rounds: Option<u64>,
    /// Bytes of checkpoint state persisted at the end of this round (0 on
    /// rounds without a checkpoint); `None` when checkpointing is off or
    /// the round ran in-process.
    pub checkpoint_bytes: Option<u64>,
    /// Distance between the accepted aggregate and the mean of this round's
    /// honest proposals `‖F − μ_honest‖` — how far the round's outcome was
    /// pulled from the honest consensus; `None` when the engine does not
    /// track drift.
    pub dist_to_honest_mean: Option<f64>,
    /// Cumulative projection of the applied updates onto the
    /// attacker-direction (Byzantine mean minus honest mean, unit-normed),
    /// summed over all rounds so far — the attacker's net displacement of
    /// the trajectory. `None` when untracked or when no Byzantine proposals
    /// were present.
    pub attacker_displacement: Option<f64>,
    /// `max − min` of the per-worker reputation weights after this round,
    /// for the reputation-weighted defense; `None` for stateless rules.
    pub reputation_spread: Option<f64>,
}

impl RoundRecord {
    /// Creates a record with only the mandatory fields; the optional
    /// measurements start as `None`/zero and are filled in by the trainer.
    pub fn new(round: usize, aggregate_norm: f64, learning_rate: f64) -> Self {
        Self {
            round,
            loss: None,
            accuracy: None,
            true_gradient_norm: None,
            aggregate_norm,
            alignment: None,
            distance_to_optimum: None,
            selected_worker: None,
            selected_byzantine: None,
            learning_rate,
            propose_nanos: 0,
            attack_nanos: 0,
            aggregation_nanos: 0,
            network_nanos: 0,
            round_nanos: 0,
            quorum_size: None,
            stale_in_quorum: None,
            max_staleness_in_quorum: None,
            dropped_stale: None,
            pending_carryover: None,
            wire_bytes: None,
            raw_bytes: None,
            arrival_nanos: None,
            reconnects: None,
            degraded_rounds: None,
            checkpoint_bytes: None,
            dist_to_honest_mean: None,
            attacker_displacement: None,
            reputation_spread: None,
        }
    }

    /// CSV header matching [`RoundRecord::to_csv_row`]. The timing columns
    /// follow the round pipeline: propose → attack → aggregate → network;
    /// the quorum/staleness columns are filled under async-quorum execution
    /// and empty for barrier rounds; the trailing wire columns are filled
    /// when the round ran over a real transport (`krum-server`); the
    /// churn columns (`reconnects`, `degraded_rounds`, `checkpoint_bytes`)
    /// are transport-only; the drift columns (`dist_to_honest_mean`,
    /// `attacker_displacement`, `reputation_spread`) close the row and are
    /// filled by engines that track adaptive-adversary drift.
    pub fn csv_header() -> &'static str {
        "round,loss,accuracy,true_gradient_norm,aggregate_norm,alignment,\
         distance_to_optimum,selected_worker,selected_byzantine,learning_rate,\
         propose_nanos,attack_nanos,aggregation_nanos,network_nanos,round_nanos,\
         quorum_size,stale_in_quorum,max_staleness_in_quorum,dropped_stale,\
         pending_carryover,wire_bytes,raw_bytes,arrival_nanos,reconnects,\
         degraded_rounds,checkpoint_bytes,dist_to_honest_mean,\
         attacker_displacement,reputation_spread"
    }

    /// Serialises the record as one CSV row (empty cells for `None`).
    pub fn to_csv_row(&self) -> String {
        fn opt<T: std::fmt::Display>(v: &Option<T>) -> String {
            v.as_ref().map(ToString::to_string).unwrap_or_default()
        }
        format!(
            "{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{}",
            self.round,
            opt(&self.loss),
            opt(&self.accuracy),
            opt(&self.true_gradient_norm),
            self.aggregate_norm,
            opt(&self.alignment),
            opt(&self.distance_to_optimum),
            opt(&self.selected_worker),
            opt(&self.selected_byzantine),
            self.learning_rate,
            self.propose_nanos,
            self.attack_nanos,
            self.aggregation_nanos,
            self.network_nanos,
            self.round_nanos,
            opt(&self.quorum_size),
            opt(&self.stale_in_quorum),
            opt(&self.max_staleness_in_quorum),
            opt(&self.dropped_stale),
            opt(&self.pending_carryover),
            opt(&self.wire_bytes),
            opt(&self.raw_bytes),
            opt(&self.arrival_nanos),
            opt(&self.reconnects),
            opt(&self.degraded_rounds),
            opt(&self.checkpoint_bytes),
            opt(&self.dist_to_honest_mean),
            opt(&self.attacker_displacement),
            opt(&self.reputation_spread),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_fills_defaults() {
        let r = RoundRecord::new(3, 1.5, 0.01);
        assert_eq!(r.round, 3);
        assert_eq!(r.aggregate_norm, 1.5);
        assert_eq!(r.learning_rate, 0.01);
        assert!(r.loss.is_none());
        assert!(r.selected_worker.is_none());
        assert_eq!(r.aggregation_nanos, 0);
        assert_eq!(r.propose_nanos, 0);
        assert_eq!(r.attack_nanos, 0);
        assert_eq!(r.network_nanos, 0);
    }

    #[test]
    fn phase_columns_appear_in_pipeline_order() {
        let header = RoundRecord::csv_header();
        let propose = header.find("propose_nanos").unwrap();
        let attack = header.find("attack_nanos").unwrap();
        let aggregation = header.find("aggregation_nanos").unwrap();
        let network = header.find("network_nanos").unwrap();
        let round = header.find("round_nanos").unwrap();
        assert!(propose < attack && attack < aggregation);
        assert!(aggregation < network && network < round);
        let mut r = RoundRecord::new(0, 1.0, 0.1);
        r.propose_nanos = 11;
        r.attack_nanos = 22;
        r.aggregation_nanos = 33;
        r.network_nanos = 44;
        r.round_nanos = 110;
        // The trailing quorum/staleness, wire and drift cells are empty for
        // in-process barrier rounds.
        assert!(r.to_csv_row().ends_with("11,22,33,44,110,,,,,,,,,,,,,,"));
    }

    #[test]
    fn quorum_columns_trail_the_header_and_serialise() {
        let header = RoundRecord::csv_header();
        let round_nanos = header.find("round_nanos").unwrap();
        for column in [
            "quorum_size",
            "stale_in_quorum",
            "max_staleness_in_quorum",
            "dropped_stale",
            "pending_carryover",
        ] {
            let at = header
                .find(column)
                .unwrap_or_else(|| panic!("column {column} missing from the CSV header"));
            assert!(at > round_nanos, "{column} must trail the timing columns");
        }
        let mut r = RoundRecord::new(3, 1.0, 0.1);
        r.quorum_size = Some(8);
        r.stale_in_quorum = Some(2);
        r.max_staleness_in_quorum = Some(1);
        r.dropped_stale = Some(0);
        r.pending_carryover = Some(3);
        assert!(r.to_csv_row().ends_with("8,2,1,0,3,,,,,,,,,"));
    }

    /// Satellite: the wire columns trail everything (they only apply to
    /// networked rounds) and serialise as plain integers.
    #[test]
    fn wire_columns_trail_the_header_and_serialise() {
        let header = RoundRecord::csv_header();
        let carryover = header.find("pending_carryover").unwrap();
        let wire = header.find("wire_bytes").unwrap();
        let raw = header.find("raw_bytes").unwrap();
        let arrival = header.find("arrival_nanos").unwrap();
        assert!(carryover < wire && wire < raw && raw < arrival);
        let mut r = RoundRecord::new(2, 1.0, 0.1);
        r.wire_bytes = Some(81_920);
        r.raw_bytes = Some(327_680);
        r.arrival_nanos = Some(1_500_000);
        assert!(r.to_csv_row().ends_with(",81920,327680,1500000,,,,,,"));
    }

    /// Satellite: the churn columns follow the wire columns, in
    /// reconnects → degraded → checkpoint order, and serialise as plain
    /// integers on networked rounds.
    #[test]
    fn churn_columns_trail_the_header_and_serialise() {
        let header = RoundRecord::csv_header();
        let arrival = header.find("arrival_nanos").unwrap();
        let reconnects = header.find("reconnects").unwrap();
        let degraded = header.find("degraded_rounds").unwrap();
        let checkpoint = header.find("checkpoint_bytes").unwrap();
        assert!(arrival < reconnects && reconnects < degraded && degraded < checkpoint);
        let mut r = RoundRecord::new(4, 1.0, 0.1);
        r.reconnects = Some(1);
        r.degraded_rounds = Some(1);
        r.checkpoint_bytes = Some(4_096);
        assert!(r.to_csv_row().ends_with(",1,1,4096,,,"));
    }

    /// The drift columns close the row, in distance → displacement → spread
    /// order, and serialise as plain floats when an engine tracks them.
    #[test]
    fn drift_columns_close_the_header_and_serialise() {
        let header = RoundRecord::csv_header();
        let checkpoint = header.find("checkpoint_bytes").unwrap();
        let dist = header.find("dist_to_honest_mean").unwrap();
        let displacement = header.find("attacker_displacement").unwrap();
        let spread = header.find("reputation_spread").unwrap();
        assert!(checkpoint < dist && dist < displacement && displacement < spread);
        assert!(header.ends_with("reputation_spread"));
        let mut r = RoundRecord::new(5, 1.0, 0.1);
        r.dist_to_honest_mean = Some(0.5);
        r.attacker_displacement = Some(12.25);
        r.reputation_spread = Some(0.75);
        assert!(r.to_csv_row().ends_with(",0.5,12.25,0.75"));
    }

    #[test]
    fn csv_row_has_as_many_cells_as_header() {
        let mut r = RoundRecord::new(0, 2.0, 0.1);
        r.loss = Some(0.7);
        r.selected_worker = Some(4);
        r.selected_byzantine = Some(false);
        let header_cells = RoundRecord::csv_header().split(',').count();
        let row_cells = r.to_csv_row().split(',').count();
        assert_eq!(header_cells, row_cells);
        assert!(r.to_csv_row().contains("0.7"));
    }

    #[test]
    fn none_fields_serialise_as_empty_cells() {
        let r = RoundRecord::new(1, 0.0, 0.1);
        let row = r.to_csv_row();
        assert!(row.starts_with("1,,,,"), "row was {row}");
    }

    #[test]
    fn serde_round_trip() {
        let mut r = RoundRecord::new(9, 0.4, 0.05);
        r.alignment = Some(0.99);
        let json = serde_json::to_string(&r).unwrap();
        let back: RoundRecord = serde_json::from_str(&json).unwrap();
        assert_eq!(r, back);
    }
}
