//! The lint registry: stable codes, human names, rationale and path
//! applicability for every check the auditor knows.
//!
//! Codes are append-only: a released code never changes meaning, so
//! `audit.toml` suppressions and downstream JSON consumers stay valid
//! across versions.

/// A registered lint.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Lint {
    /// `DET001` — `HashMap`/`HashSet` in a trajectory-affecting crate.
    Det001,
    /// `DET002` — entropy-seeded randomness outside bench/timing modules.
    Det002,
    /// `DET003` — parallel float reduction on an aggregation path.
    Det003,
    /// `PANIC001` — panic-capable construct on a never-panic path.
    Panic001,
    /// `SAFE001` — `unsafe` without a `// SAFETY:` comment.
    Safe001,
}

/// Crates whose source feeds the per-seed trajectory: one nondeterministic
/// iteration order or float-reduction order here silently voids the
/// bit-identical-trajectory claim (see EXPERIMENTS.md).
const TRAJECTORY_SRC: &[&str] = &[
    "crates/core/src/",
    "crates/dist/src/",
    "crates/scenario/src/",
    "crates/attacks/src/",
    "crates/compress/src/",
];

/// Paths holding aggregation kernels, where a rayon `sum`/`reduce` over
/// floats would make the reduction order (and thus the result bits) depend
/// on thread scheduling.
const AGGREGATION_SRC: &[&str] = &["crates/core/src/", "crates/dist/src/"];

/// The never-panic surface: everything that touches bytes from the wire.
/// `krum-wire` decodes attacker-controlled frames; `krum-server` handles
/// them. A panic here is a remote denial of service.
const NEVER_PANIC_SRC: &[&str] = &["crates/wire/src/", "crates/server/src/"];

/// Benchmark / timing code is the one place entropy and wall clocks are
/// legitimate; everything else must derive randomness from the master seed.
const ENTROPY_EXEMPT: &[&str] = &["crates/bench/"];

fn under(path: &str, roots: &[&str]) -> bool {
    roots.iter().any(|root| path.starts_with(root))
}

impl Lint {
    /// Every registered lint, in code order.
    pub const ALL: [Lint; 5] = [
        Lint::Det001,
        Lint::Det002,
        Lint::Det003,
        Lint::Panic001,
        Lint::Safe001,
    ];

    /// The stable diagnostic code (`DET001`, …).
    pub fn code(self) -> &'static str {
        match self {
            Lint::Det001 => "DET001",
            Lint::Det002 => "DET002",
            Lint::Det003 => "DET003",
            Lint::Panic001 => "PANIC001",
            Lint::Safe001 => "SAFE001",
        }
    }

    /// Short kebab-case name.
    pub fn name(self) -> &'static str {
        match self {
            Lint::Det001 => "hash-iteration",
            Lint::Det002 => "entropy-rng",
            Lint::Det003 => "parallel-float-reduction",
            Lint::Panic001 => "panic-path",
            Lint::Safe001 => "undocumented-unsafe",
        }
    }

    /// One-line rationale, shown by `krum list`.
    pub fn summary(self) -> &'static str {
        match self {
            Lint::Det001 => {
                "HashMap/HashSet in a trajectory-affecting crate: iteration order is \
                 nondeterministic — use BTreeMap/BTreeSet or sort before iterating"
            }
            Lint::Det002 => {
                "entropy-seeded RNG (thread_rng/from_entropy/SystemTime) outside bench \
                 modules: all randomness must derive from the master seed"
            }
            Lint::Det003 => {
                "parallel float sum/reduce/fold on an aggregation path: reduction order \
                 depends on thread scheduling, so result bits do too"
            }
            Lint::Panic001 => {
                "unwrap/expect/panic!/indexing on the wire-decode or frame-handling \
                 path: malformed input must surface as a structured error, never a panic"
            }
            Lint::Safe001 => "unsafe block/impl/fn without a preceding `// SAFETY:` comment",
        }
    }

    /// Resolves a stable code (`"DET001"`) back to its lint.
    pub fn from_code(code: &str) -> Option<Lint> {
        Lint::ALL.into_iter().find(|l| l.code() == code)
    }

    /// Whether this lint scans the file at `path` (workspace-relative,
    /// `/`-separated).
    pub fn applies_to(self, path: &str) -> bool {
        match self {
            Lint::Det001 => under(path, TRAJECTORY_SRC),
            Lint::Det002 => !under(path, ENTROPY_EXEMPT),
            Lint::Det003 => under(path, AGGREGATION_SRC),
            Lint::Panic001 => under(path, NEVER_PANIC_SRC),
            Lint::Safe001 => true,
        }
    }

    /// Whether this lint also scans `#[cfg(test)]` regions. Test code may
    /// unwrap and take entropy freely; undocumented `unsafe` is held to the
    /// same standard everywhere.
    pub fn scans_test_code(self) -> bool {
        matches!(self, Lint::Safe001)
    }
}

impl std::fmt::Display for Lint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.code())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_round_trip() {
        for lint in Lint::ALL {
            assert_eq!(Lint::from_code(lint.code()), Some(lint));
        }
        assert_eq!(Lint::from_code("DET999"), None);
    }

    #[test]
    fn applicability_matches_the_documented_scopes() {
        assert!(Lint::Det001.applies_to("crates/core/src/krum.rs"));
        assert!(!Lint::Det001.applies_to("crates/metrics/src/export.rs"));
        assert!(Lint::Det002.applies_to("crates/server/src/job.rs"));
        assert!(!Lint::Det002.applies_to("crates/bench/src/bin/e1_linear_fragility.rs"));
        assert!(Lint::Det003.applies_to("crates/core/src/kernel.rs"));
        assert!(!Lint::Det003.applies_to("crates/cli/src/lib.rs"));
        assert!(Lint::Panic001.applies_to("crates/wire/src/lib.rs"));
        assert!(!Lint::Panic001.applies_to("crates/core/src/krum.rs"));
        assert!(Lint::Safe001.applies_to("tests/allocation_regression.rs"));
    }
}
