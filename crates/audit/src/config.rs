//! `audit.toml`: the checked-in suppression baseline.
//!
//! Every suppression is per-lint, per-path and **must carry a written
//! justification** — a missing or empty `reason` is a configuration error,
//! not a warning. The goal is a baseline that is explicit, reviewable in
//! diffs and shrinkable over time; unused entries are reported so they can
//! be deleted once the underlying code is fixed.
//!
//! The build environment vendors no TOML crate, so this module parses the
//! exact subset the file needs (and rejects everything else, keeping the
//! file honest):
//!
//! ```toml
//! [[suppress]]
//! lint = "PANIC001"
//! path = "crates/server/src/chaos.rs"
//! contains = ".expect("          # optional: only lines containing this
//! reason = "why this is sound, in writing"
//! ```

use std::path::Path;

use thiserror::Error;

use crate::lints::Lint;
use crate::report::Finding;
use serde::{Deserialize, Serialize};

/// One baseline entry: silences `lint` findings under `path`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Suppression {
    /// Stable lint code (`DET001`, …).
    pub lint: String,
    /// Workspace-relative path prefix (a file or a directory).
    pub path: String,
    /// Optional refinement: only findings whose source line contains this
    /// substring are suppressed, keeping the baseline tight.
    pub contains: Option<String>,
    /// The written justification. Required, non-empty.
    pub reason: String,
}

impl Suppression {
    /// Does this entry cover `finding`?
    pub fn matches(&self, finding: &Finding) -> bool {
        self.lint == finding.lint
            && finding.file.starts_with(&self.path)
            && self
                .contains
                .as_ref()
                .is_none_or(|needle| finding.snippet.contains(needle))
    }
}

/// The parsed `audit.toml`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct AuditConfig {
    /// Baseline suppressions, in file order.
    pub suppressions: Vec<Suppression>,
}

/// A malformed `audit.toml`.
#[derive(Debug, Error)]
pub enum ConfigError {
    /// The file could not be read.
    #[error("cannot read `{path}`: {source}")]
    Io {
        /// The offending path.
        path: String,
        /// The underlying error.
        source: std::io::Error,
    },
    /// A syntax or semantic error, with its line number.
    #[error("audit.toml:{line}: {message}")]
    Parse {
        /// 1-based line number.
        line: usize,
        /// What went wrong.
        message: String,
    },
}

impl AuditConfig {
    /// Loads and parses `path`. A missing file is an error — pass
    /// [`AuditConfig::default`] explicitly to run without a baseline.
    ///
    /// # Errors
    ///
    /// [`ConfigError::Io`] when unreadable, [`ConfigError::Parse`] when
    /// malformed.
    pub fn load(path: &Path) -> Result<Self, ConfigError> {
        let text = std::fs::read_to_string(path).map_err(|source| ConfigError::Io {
            path: path.display().to_string(),
            source,
        })?;
        Self::parse(&text)
    }

    /// Parses the `audit.toml` dialect described in the module docs.
    ///
    /// # Errors
    ///
    /// [`ConfigError::Parse`] on unknown keys/sections, duplicate keys,
    /// missing `lint`/`path`, unknown lint codes or an absent/empty
    /// `reason`.
    pub fn parse(text: &str) -> Result<Self, ConfigError> {
        let err = |line: usize, message: String| ConfigError::Parse { line, message };
        let mut suppressions = Vec::new();
        // Fields of the entry currently being assembled, with the line the
        // entry started on (for error attribution).
        let mut entry: Option<(usize, PartialEntry)> = None;

        for (idx, raw) in text.lines().enumerate() {
            let lineno = idx + 1;
            let line = strip_comment(raw).trim();
            if line.is_empty() {
                continue;
            }
            if line == "[[suppress]]" {
                if let Some((start, partial)) = entry.take() {
                    suppressions.push(partial.finish(start)?);
                }
                entry = Some((lineno, PartialEntry::default()));
                continue;
            }
            if line.starts_with('[') {
                return Err(err(
                    lineno,
                    format!("unknown section `{line}`: only `[[suppress]]` entries are allowed"),
                ));
            }
            let Some((key, value)) = line.split_once('=') else {
                return Err(err(
                    lineno,
                    format!("expected `key = \"value\"`, got `{line}`"),
                ));
            };
            let Some((_, partial)) = entry.as_mut() else {
                return Err(err(
                    lineno,
                    "keys must live inside a `[[suppress]]` entry".to_string(),
                ));
            };
            let key = key.trim();
            let value = parse_string(value.trim()).map_err(|m| err(lineno, m))?;
            let slot = match key {
                "lint" => &mut partial.lint,
                "path" => &mut partial.path,
                "contains" => &mut partial.contains,
                "reason" => &mut partial.reason,
                other => {
                    return Err(err(
                        lineno,
                        format!("unknown key `{other}` (expected lint, path, contains or reason)"),
                    ))
                }
            };
            if slot.is_some() {
                return Err(err(lineno, format!("duplicate key `{key}`")));
            }
            *slot = Some(value);
        }
        if let Some((start, partial)) = entry.take() {
            suppressions.push(partial.finish(start)?);
        }
        Ok(Self { suppressions })
    }
}

#[derive(Default)]
struct PartialEntry {
    lint: Option<String>,
    path: Option<String>,
    contains: Option<String>,
    reason: Option<String>,
}

impl PartialEntry {
    fn finish(self, line: usize) -> Result<Suppression, ConfigError> {
        let err = |message: String| ConfigError::Parse { line, message };
        let lint = self
            .lint
            .ok_or_else(|| err("suppression is missing `lint`".to_string()))?;
        if Lint::from_code(&lint).is_none() {
            return Err(err(format!(
                "unknown lint code `{lint}` (known: {})",
                Lint::ALL.map(Lint::code).join(", ")
            )));
        }
        let path = self
            .path
            .ok_or_else(|| err("suppression is missing `path`".to_string()))?;
        let reason = self
            .reason
            .ok_or_else(|| err("suppression is missing its written `reason`".to_string()))?;
        if reason.trim().is_empty() {
            return Err(err(
                "a suppression's `reason` must actually justify it (empty string given)"
                    .to_string(),
            ));
        }
        Ok(Suppression {
            lint,
            path,
            contains: self.contains,
            reason,
        })
    }
}

/// Removes a trailing `#` comment, respecting string quoting.
fn strip_comment(line: &str) -> &str {
    let bytes = line.as_bytes();
    let mut in_string = false;
    let mut escaped = false;
    for (i, &b) in bytes.iter().enumerate() {
        if escaped {
            escaped = false;
            continue;
        }
        match b {
            b'\\' if in_string => escaped = true,
            b'"' => in_string = !in_string,
            b'#' if !in_string => return &line[..i],
            _ => {}
        }
    }
    line
}

/// Parses a double-quoted TOML basic string with the usual escapes.
fn parse_string(raw: &str) -> Result<String, String> {
    let inner = raw
        .strip_prefix('"')
        .and_then(|r| r.strip_suffix('"'))
        .ok_or_else(|| format!("expected a double-quoted string, got `{raw}`"))?;
    let mut out = String::with_capacity(inner.len());
    let mut chars = inner.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('"') => out.push('"'),
            Some('\\') => out.push('\\'),
            Some('n') => out.push('\n'),
            Some('t') => out.push('\t'),
            Some(other) => return Err(format!("unsupported escape `\\{other}`")),
            None => return Err("dangling escape at end of string".to_string()),
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_full_entry() {
        let config = AuditConfig::parse(
            r##"
# The baseline.
[[suppress]]
lint = "PANIC001"   # frame path
path = "crates/server/src/chaos.rs"
contains = ".expect("
reason = "lock poisoning implies a prior panic"
"##,
        )
        .unwrap();
        assert_eq!(config.suppressions.len(), 1);
        let s = &config.suppressions[0];
        assert_eq!(s.lint, "PANIC001");
        assert_eq!(s.contains.as_deref(), Some(".expect("));
    }

    #[test]
    fn reason_is_mandatory_and_nonempty() {
        let missing = "[[suppress]]\nlint = \"DET001\"\npath = \"x\"\n";
        assert!(AuditConfig::parse(missing).is_err());
        let empty = "[[suppress]]\nlint = \"DET001\"\npath = \"x\"\nreason = \"  \"\n";
        assert!(AuditConfig::parse(empty).is_err());
    }

    #[test]
    fn rejects_unknown_lints_keys_and_sections() {
        assert!(
            AuditConfig::parse("[[suppress]]\nlint = \"NOPE1\"\npath = \"x\"\nreason = \"r\"")
                .is_err()
        );
        assert!(AuditConfig::parse(
            "[[suppress]]\nlint = \"DET001\"\npath = \"x\"\nreason = \"r\"\nseverity = \"low\""
        )
        .is_err());
        assert!(AuditConfig::parse("[general]\nfoo = \"bar\"").is_err());
        assert!(AuditConfig::parse("lint = \"DET001\"").is_err());
    }

    #[test]
    fn matching_respects_path_prefix_and_contains() {
        let s = Suppression {
            lint: "PANIC001".into(),
            path: "crates/server/src/".into(),
            contains: Some(".expect(".into()),
            reason: "r".into(),
        };
        let mut finding = Finding {
            lint: "PANIC001".into(),
            file: "crates/server/src/chaos.rs".into(),
            line: 1,
            col: 1,
            message: "m".into(),
            snippet: "lock().expect(\"poisoned\")".into(),
        };
        assert!(s.matches(&finding));
        finding.snippet = "v[0]".into();
        assert!(!s.matches(&finding));
        finding.file = "crates/wire/src/lib.rs".into();
        assert!(!s.matches(&finding));
    }
}
