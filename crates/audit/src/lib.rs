//! # krum-audit
//!
//! A workspace static-analysis pass enforcing the two invariants every PR
//! has so far re-promised by hand:
//!
//! 1. **Determinism** — trajectories are bit-identical per seed across
//!    engines, strategies and the wire (the reproduction's core claim from
//!    Blanchard et al., PODC 2017). One nondeterministic float reduction
//!    or hash-iteration order silently voids every resilience result.
//! 2. **Never-panic decode** — `krum-wire` parses attacker-controlled
//!    bytes and `krum-server` handles them; a reachable panic is a remote
//!    denial of service.
//!
//! The analyzer is token-level (built on [`mini_parse::lex`], the vendored
//! lexer — no network deps, no rustc internals): string literals, comments
//! and doc examples never trip a lint, and every finding carries stable
//! `file:line:col` coordinates. Five lints are registered, with stable
//! codes (see [`Lint`]):
//!
//! | code       | name                       | scope                          |
//! |------------|----------------------------|--------------------------------|
//! | `DET001`   | hash-iteration             | core/dist/scenario/attacks/compress src |
//! | `DET002`   | entropy-rng                | workspace minus `crates/bench` |
//! | `DET003`   | parallel-float-reduction   | core/dist src                  |
//! | `PANIC001` | panic-path                 | wire/server src                |
//! | `SAFE001`  | undocumented-unsafe        | whole workspace                |
//!
//! Suppressions live in a checked-in `audit.toml` ([`AuditConfig`]), one
//! entry per lint × path, each requiring a written justification. The CLI
//! front-end is `krum audit` (human or `--json` output, `--deny` exit
//! status for CI).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod analyzer;
mod config;
mod lints;
mod report;
mod walk;

use std::path::Path;

use thiserror::Error;

pub use analyzer::{analyze_source, AnalyzeError};
pub use config::{AuditConfig, ConfigError, Suppression};
pub use lints::Lint;
pub use report::{AuditReport, Finding, SuppressedFinding, JSON_SCHEMA_VERSION};
pub use walk::{workspace_files, SCAN_ROOTS, SKIP_DIRS};

/// A failed audit *run* (not failed lints — findings live in the report).
#[derive(Debug, Error)]
pub enum AuditError {
    /// A source file could not be read.
    #[error("cannot read `{path}`: {source}")]
    Io {
        /// The offending path.
        path: String,
        /// The underlying error.
        source: std::io::Error,
    },
    /// A source file did not lex as Rust.
    #[error(transparent)]
    Analyze(#[from] AnalyzeError),
    /// The `audit.toml` baseline is malformed.
    #[error(transparent)]
    Config(#[from] ConfigError),
}

/// Runs the full pass over the workspace at `root`, applying `config`'s
/// baseline, and returns the report (findings, suppressed findings and
/// unused suppressions).
///
/// # Errors
///
/// [`AuditError`] on I/O or lex failures — never on findings.
pub fn audit_workspace(root: &Path, config: &AuditConfig) -> Result<AuditReport, AuditError> {
    let files = walk::workspace_files(root).map_err(|source| AuditError::Io {
        path: root.display().to_string(),
        source,
    })?;
    let mut findings = Vec::new();
    let mut suppressed = Vec::new();
    let mut used = vec![false; config.suppressions.len()];
    for file in &files {
        let source = std::fs::read_to_string(root.join(file)).map_err(|source| AuditError::Io {
            path: file.clone(),
            source,
        })?;
        for finding in analyzer::analyze_source(file, &source)? {
            match config.suppressions.iter().position(|s| s.matches(&finding)) {
                Some(idx) => {
                    used[idx] = true;
                    suppressed.push(SuppressedFinding {
                        finding,
                        reason: config.suppressions[idx].reason.clone(),
                    });
                }
                None => findings.push(finding),
            }
        }
    }
    let unused_suppressions = config
        .suppressions
        .iter()
        .zip(&used)
        .filter(|(_, &u)| !u)
        .map(|(s, _)| s.clone())
        .collect();
    Ok(AuditReport {
        schema_version: JSON_SCHEMA_VERSION,
        files_scanned: files.len(),
        findings,
        suppressed,
        unused_suppressions,
    })
}
