//! The token-level lint engine.
//!
//! One pass of [`mini_parse::lex::tokenize`] per file, then each applicable
//! lint walks the token stream. Working on tokens (not text) means string
//! literals, comments and doc examples can mention `unwrap()` or `HashMap`
//! freely without tripping anything — only real code fires.

use mini_parse::lex::{tokenize, Token, TokenKind};
use thiserror::Error;

use crate::lints::Lint;
use crate::report::Finding;

/// A file that failed to lex — i.e. text `rustc` itself would reject.
#[derive(Debug, Error)]
#[error("{file}:{line}:{col}: {message}")]
pub struct AnalyzeError {
    /// Workspace-relative path of the offending file.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// What the lexer rejected.
    pub message: String,
}

/// Entropy-seeded constructs flagged by DET002.
const ENTROPY_IDENTS: &[(&str, &str)] = &[
    (
        "thread_rng",
        "`thread_rng()` seeds from OS entropy; derive a `ChaCha8Rng` from the master seed instead",
    ),
    (
        "from_entropy",
        "`from_entropy()` seeds from OS entropy; use `seed_from_u64`/`from_seed` on a \
         seed derived from the master seed",
    ),
    (
        "SystemTime",
        "`SystemTime` feeds wall-clock state into the run; timing belongs in bench \
         modules, seeds must come from the spec",
    ),
];

/// Rayon entry points that start a parallel chain (DET003).
const PAR_METHODS: &[&str] = &[
    "par_iter",
    "par_iter_mut",
    "into_par_iter",
    "par_chunks",
    "par_chunks_mut",
    "par_chunks_exact",
    "par_windows",
    "par_bridge",
    "par_extend",
];

/// Order-sensitive reduction adapters (DET003): on floats their result
/// depends on evaluation order, which rayon does not fix.
const REDUCERS: &[&str] = &["sum", "reduce", "fold", "product"];

/// Panicking macros flagged by PANIC001 (`assert!` family deliberately
/// excluded: those are invariant checks, not input handling).
const PANIC_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];

/// Keywords that may legitimately precede a `[` without forming an index
/// expression (slice patterns, array types after `let`, …).
const NON_INDEX_PREFIX: &[&str] = &[
    "let", "ref", "mut", "in", "match", "if", "while", "for", "return", "else", "move", "box",
    "dyn", "impl", "as", "type", "const", "static", "use", "where", "break", "yield",
];

/// Runs every lint applicable to `path` over `src`, in token order.
/// Suppressions are applied later, by the caller — this is the raw pass.
///
/// # Errors
///
/// Returns [`AnalyzeError`] when the file does not lex (the workspace
/// self-test asserts this never happens on checked-in sources).
pub fn analyze_source(path: &str, src: &str) -> Result<Vec<Finding>, AnalyzeError> {
    let tokens = tokenize(src).map_err(|e| AnalyzeError {
        file: path.to_string(),
        line: e.line,
        col: e.col,
        message: e.message,
    })?;
    let lines: Vec<&str> = src.lines().collect();
    let test_regions = cfg_test_regions(&tokens);
    let in_test = |idx: usize| test_regions.iter().any(|&(lo, hi)| idx >= lo && idx <= hi);

    let mut findings = Vec::new();
    for lint in Lint::ALL {
        if !lint.applies_to(path) {
            continue;
        }
        let mut fire = |token: &Token<'_>, idx: usize, message: String| {
            if !lint.scans_test_code() && in_test(idx) {
                return;
            }
            findings.push(Finding {
                lint: lint.code().to_string(),
                file: path.to_string(),
                line: token.line,
                col: token.col,
                message,
                snippet: lines
                    .get(token.line as usize - 1)
                    .map(|l| l.trim().to_string())
                    .unwrap_or_default(),
            });
        };
        match lint {
            Lint::Det001 => det001(&tokens, &mut fire),
            Lint::Det002 => det002(&tokens, &mut fire),
            Lint::Det003 => det003(&tokens, &mut fire),
            Lint::Panic001 => panic001(&tokens, &mut fire),
            Lint::Safe001 => safe001(&tokens, &mut fire),
        }
    }
    // One pass per lint keeps each rule readable; re-sort so the report
    // reads in source order, not registry order.
    findings.sort_by(|a, b| (a.line, a.col, &a.lint).cmp(&(b.line, b.col, &b.lint)));
    Ok(findings)
}

/// Token index ranges (inclusive) covered by `#[cfg(test)]` items.
fn cfg_test_regions(tokens: &[Token<'_>]) -> Vec<(usize, usize)> {
    let mut regions = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        if is_cfg_test_attr(tokens, i) {
            // Skip this and any further attributes, then mark the item's
            // brace-delimited body (if any) as a test region.
            let mut j = i;
            while j < tokens.len() && tokens[j].is_punct('#') {
                j = skip_attr(tokens, j);
                while j < tokens.len() && tokens[j].is_comment() {
                    j += 1;
                }
            }
            // Scan to the item's opening brace; a `;` first means there is
            // no inline body (e.g. `#[cfg(test)] mod tests;`).
            let mut k = j;
            while k < tokens.len() && !tokens[k].is_punct('{') && !tokens[k].is_punct(';') {
                k += 1;
            }
            if k < tokens.len() && tokens[k].is_punct('{') {
                let end = match_brace(tokens, k);
                regions.push((i, end));
                i = end + 1;
                continue;
            }
            i = k + 1;
            continue;
        }
        i += 1;
    }
    regions
}

/// Does an attribute starting at token `i` (`#`) spell `#[cfg(test)]`?
fn is_cfg_test_attr(tokens: &[Token<'_>], i: usize) -> bool {
    tokens.get(i).is_some_and(|t| t.is_punct('#'))
        && tokens.get(i + 1).is_some_and(|t| t.is_punct('['))
        && tokens.get(i + 2).is_some_and(|t| t.is_ident("cfg"))
        && tokens.get(i + 3).is_some_and(|t| t.is_punct('('))
        && tokens.get(i + 4).is_some_and(|t| t.is_ident("test"))
        && tokens.get(i + 5).is_some_and(|t| t.is_punct(')'))
        && tokens.get(i + 6).is_some_and(|t| t.is_punct(']'))
}

/// Returns the index just past an attribute starting at `#` token `i`.
fn skip_attr(tokens: &[Token<'_>], i: usize) -> usize {
    let mut j = i + 1; // at `[` (or `!` for inner attributes)
    if tokens.get(j).is_some_and(|t| t.is_punct('!')) {
        j += 1;
    }
    if !tokens.get(j).is_some_and(|t| t.is_punct('[')) {
        return i + 1;
    }
    let mut depth = 0i32;
    while j < tokens.len() {
        if tokens[j].is_punct('[') {
            depth += 1;
        } else if tokens[j].is_punct(']') {
            depth -= 1;
            if depth == 0 {
                return j + 1;
            }
        }
        j += 1;
    }
    tokens.len()
}

/// Index of the `}` matching the `{` at token `open`.
fn match_brace(tokens: &[Token<'_>], open: usize) -> usize {
    let mut depth = 0i32;
    let mut j = open;
    while j < tokens.len() {
        if tokens[j].is_punct('{') {
            depth += 1;
        } else if tokens[j].is_punct('}') {
            depth -= 1;
            if depth == 0 {
                return j;
            }
        }
        j += 1;
    }
    tokens.len() - 1
}

fn det001(tokens: &[Token<'_>], fire: &mut impl FnMut(&Token<'_>, usize, String)) {
    for (i, t) in tokens.iter().enumerate() {
        if t.kind != TokenKind::Ident {
            continue;
        }
        if t.text == "HashMap" || t.text == "HashSet" {
            let ordered = if t.text == "HashMap" {
                "BTreeMap"
            } else {
                "BTreeSet"
            };
            fire(
                t,
                i,
                format!(
                    "`{}` in a trajectory-affecting crate: iteration order varies per \
                     process, which breaks bit-identical trajectories — use `{}` or \
                     collect-and-sort",
                    t.text, ordered
                ),
            );
        }
    }
}

fn det002(tokens: &[Token<'_>], fire: &mut impl FnMut(&Token<'_>, usize, String)) {
    for (i, t) in tokens.iter().enumerate() {
        if t.kind != TokenKind::Ident {
            continue;
        }
        if let Some((_, why)) = ENTROPY_IDENTS.iter().find(|(name, _)| t.is_ident(name)) {
            fire(t, i, format!("entropy-seeded randomness: {why}"));
        }
    }
}

fn det003(tokens: &[Token<'_>], fire: &mut impl FnMut(&Token<'_>, usize, String)) {
    for (i, t) in tokens.iter().enumerate() {
        if t.kind != TokenKind::Ident || !PAR_METHODS.contains(&t.text) {
            continue;
        }
        // Walk the rest of the method chain at the same delimiter depth:
        // a reducer *inside* an argument closure is sequential (fine); a
        // reducer on the chain itself merges across threads in scheduling
        // order (not fine for floats).
        let mut depth = 0i32;
        let mut j = i + 1;
        while j < tokens.len() {
            let tok = &tokens[j];
            if tok.is_punct('(') || tok.is_punct('[') || tok.is_punct('{') {
                depth += 1;
            } else if tok.is_punct(')') || tok.is_punct(']') || tok.is_punct('}') {
                depth -= 1;
                if depth < 0 {
                    break; // the chain's enclosing expression closed
                }
            } else if depth == 0 && tok.is_punct(';') {
                break;
            } else if depth == 0
                && tok.is_punct('.')
                && tokens
                    .get(j + 1)
                    .is_some_and(|n| n.kind == TokenKind::Ident && REDUCERS.contains(&n.text))
            {
                let reducer = &tokens[j + 1];
                fire(
                    reducer,
                    j + 1,
                    format!(
                        "`.{}()` after `{}` reduces in thread-scheduling order; on \
                         floats the result bits are nondeterministic — reduce \
                         sequentially or into per-slot buffers",
                        reducer.text, t.text
                    ),
                );
                break;
            }
            j += 1;
        }
    }
}

fn panic001(tokens: &[Token<'_>], fire: &mut impl FnMut(&Token<'_>, usize, String)) {
    for (i, t) in tokens.iter().enumerate() {
        match t.kind {
            TokenKind::Ident if t.text == "unwrap" || t.text == "expect" => {
                // Only method calls: `.unwrap(` / `.expect(`.
                let is_method = i > 0
                    && tokens[i - 1].is_punct('.')
                    && tokens.get(i + 1).is_some_and(|n| n.is_punct('('));
                if is_method {
                    fire(
                        t,
                        i,
                        format!(
                            "`.{}()` on a never-panic path: propagate a structured \
                             error instead",
                            t.text
                        ),
                    );
                }
            }
            TokenKind::Ident
                if PANIC_MACROS.contains(&t.text)
                    && tokens.get(i + 1).is_some_and(|n| n.is_punct('!')) =>
            {
                fire(
                    t,
                    i,
                    format!(
                        "`{}!` on a never-panic path: malformed input must \
                         surface as a structured error",
                        t.text
                    ),
                );
            }
            TokenKind::Punct if t.is_punct('[') => {
                // Index expressions: `expr[...]` — the previous token ends a
                // value (identifier, `)`, `]`, `?`). Slice patterns, array
                // types and attribute syntax are excluded by the prefix check.
                let Some(prev) = i.checked_sub(1).map(|p| &tokens[p]) else {
                    continue;
                };
                let indexes_value = match prev.kind {
                    TokenKind::Ident => !NON_INDEX_PREFIX.contains(&prev.text),
                    TokenKind::Punct => {
                        prev.is_punct(')') || prev.is_punct(']') || prev.is_punct('?')
                    }
                    _ => false,
                };
                if indexes_value {
                    fire(
                        t,
                        i,
                        "slice/array indexing can panic on out-of-range input: use \
                         `.get(..)` and handle `None`"
                            .to_string(),
                    );
                }
            }
            _ => {}
        }
    }
}

fn safe001(tokens: &[Token<'_>], fire: &mut impl FnMut(&Token<'_>, usize, String)) {
    for (i, t) in tokens.iter().enumerate() {
        if !t.is_ident("unsafe") {
            continue;
        }
        // Walk backwards over the item prefix (visibility, attributes,
        // signature fragments) looking for a `// SAFETY:` comment. The
        // search stops at the previous statement/item boundary.
        let mut documented = false;
        for prev in tokens[..i].iter().rev() {
            if prev.is_comment() {
                if prev.text.contains("SAFETY:") {
                    documented = true;
                    break;
                }
            } else if prev.is_punct(';') || prev.is_punct('{') || prev.is_punct('}') {
                break;
            }
        }
        if !documented {
            fire(
                t,
                i,
                "`unsafe` without a `// SAFETY:` comment: state the invariant that \
                 makes this sound"
                    .to_string(),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn on(path: &str, src: &str) -> Vec<Finding> {
        analyze_source(path, src).expect("fixture lexes")
    }

    #[test]
    fn det001_fires_only_in_trajectory_crates() {
        let src = "use std::collections::HashMap;\nfn f(m: &HashMap<u32, f64>) {}\n";
        let hits = on("crates/core/src/x.rs", src);
        assert_eq!(hits.iter().filter(|f| f.lint == "DET001").count(), 2);
        assert!(on("crates/metrics/src/x.rs", src)
            .iter()
            .all(|f| f.lint != "DET001"));
    }

    #[test]
    fn det001_ignores_strings_comments_and_test_mods() {
        let src = r#"
// A HashMap would be wrong here.
fn f() { let _ = "HashMap"; }
#[cfg(test)]
mod tests { use std::collections::HashMap; fn g(_m: HashMap<u8, u8>) {} }
"#;
        assert!(on("crates/core/src/x.rs", src)
            .iter()
            .all(|f| f.lint != "DET001"));
    }

    #[test]
    fn det003_flags_chain_reducers_not_closure_internals() {
        let hot = "fn f(xs: &[f64]) -> f64 { xs.par_iter().map(|x| x * 2.0).sum() }";
        let hits = on("crates/core/src/x.rs", hot);
        assert_eq!(hits.iter().filter(|f| f.lint == "DET003").count(), 1);

        let cold = "fn f(xs: &mut [Vec<f64>]) { xs.par_iter_mut().for_each(|row| { \
                    let s: f64 = row.iter().sum(); row.push(s); }); }";
        assert!(on("crates/core/src/x.rs", cold)
            .iter()
            .all(|f| f.lint != "DET003"));
    }

    #[test]
    fn panic001_flags_the_documented_constructs() {
        let src = r#"
fn f(v: &[u8]) -> u8 {
    let x = v.first().unwrap();
    let y: u8 = v.try_into().expect("boom");
    if v.is_empty() { panic!("empty"); }
    v[0] + x + y
}
"#;
        let hits = on("crates/wire/src/x.rs", src);
        let codes: Vec<&str> = hits.iter().map(|f| f.message.as_str()).collect();
        assert_eq!(
            hits.iter().filter(|f| f.lint == "PANIC001").count(),
            4,
            "{codes:?}"
        );
    }

    #[test]
    fn panic001_skips_unwrap_or_and_patterns_and_tests() {
        let src = r#"
fn f(v: Option<u8>, arr: &[u8]) -> u8 {
    let [a, b] = [1u8, 2u8];
    let c = v.unwrap_or(0);
    let d = vec![1u8];
    let e = arr.get(0).copied().unwrap_or_default();
    a + b + c + d.len() as u8 + e
}
#[cfg(test)]
mod tests { fn g() { Some(1).unwrap(); } }
"#;
        let hits = on("crates/wire/src/x.rs", src);
        assert!(hits.iter().all(|f| f.lint != "PANIC001"), "{hits:?}");
    }

    #[test]
    fn safe001_requires_a_safety_comment() {
        let bad = "fn f(p: *const u8) -> u8 { unsafe { *p } }";
        assert_eq!(on("crates/x/src/x.rs", bad).len(), 1);
        let good = "fn f(p: *const u8) -> u8 {\n    // SAFETY: caller guarantees p is valid.\n    unsafe { *p }\n}";
        assert!(on("crates/x/src/x.rs", good).is_empty());
        // The comment does not leak across statement boundaries.
        let two = "fn f(p: *const u8) -> (u8, u8) {\n    // SAFETY: p valid.\n    let a = unsafe { *p };\n    let b = unsafe { *p };\n    (a, b)\n}";
        assert_eq!(on("crates/x/src/x.rs", two).len(), 1);
    }

    #[test]
    fn det002_exempts_bench_paths() {
        let src = "fn f() { let mut rng = thread_rng(); }";
        assert_eq!(on("crates/server/src/x.rs", src).len(), 1);
        assert!(on("crates/bench/src/bin/x.rs", src).is_empty());
    }
}
