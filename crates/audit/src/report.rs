//! Findings and the audit report: human rendering and the versioned JSON
//! schema consumed by future tooling (bench_summary, dashboards).
//!
//! The JSON schema is stable and documented in the README ("Static
//! analysis"). `schema_version` is bumped on any incompatible change; the
//! round-trip test in `tests/json_schema.rs` pins the shape.

use serde::{Deserialize, Serialize};

use crate::config::Suppression;

/// Version tag carried by [`AuditReport::to_json`] output.
pub const JSON_SCHEMA_VERSION: u32 = 1;

/// One diagnostic: a lint firing at a source location.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Finding {
    /// Stable lint code (`DET001`, …).
    pub lint: String,
    /// Workspace-relative file path (`/`-separated).
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based byte column.
    pub col: u32,
    /// Why this construct is flagged, with the suggested fix.
    pub message: String,
    /// The offending source line, trimmed.
    pub snippet: String,
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "{}:{}:{}: {} {}",
            self.file, self.line, self.col, self.lint, self.message
        )?;
        write!(f, "        {}", self.snippet)
    }
}

/// A finding silenced by an `audit.toml` entry, kept in the report so the
/// baseline stays visible.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SuppressedFinding {
    /// The silenced finding.
    pub finding: Finding,
    /// The entry's written justification.
    pub reason: String,
}

/// The result of one full audit pass.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AuditReport {
    /// JSON schema version ([`JSON_SCHEMA_VERSION`]).
    pub schema_version: u32,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
    /// Active findings, in (file, line, col) order.
    pub findings: Vec<Finding>,
    /// Findings silenced by the baseline, same order.
    pub suppressed: Vec<SuppressedFinding>,
    /// Baseline entries that matched nothing — candidates for deletion.
    pub unused_suppressions: Vec<Suppression>,
}

impl AuditReport {
    /// `true` when no active finding survived suppression.
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// Serializes the report to the versioned JSON schema.
    ///
    /// # Errors
    ///
    /// Propagates `serde_json` failures (practically unreachable for this
    /// tree of strings and integers).
    pub fn to_json(&self) -> Result<String, serde_json::Error> {
        serde_json::to_string_pretty(self)
    }

    /// Parses a report back from [`AuditReport::to_json`] output.
    ///
    /// # Errors
    ///
    /// Returns the underlying `serde_json` error on malformed input.
    pub fn from_json(text: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(text)
    }

    /// Renders the human report: every finding with its snippet, the
    /// suppressed tally per file, unused baseline entries, and a one-line
    /// verdict.
    pub fn render_human(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for finding in &self.findings {
            let _ = writeln!(out, "{finding}");
        }
        if !self.suppressed.is_empty() {
            let _ = writeln!(
                out,
                "{} finding(s) suppressed by audit.toml:",
                self.suppressed.len()
            );
            for s in &self.suppressed {
                let _ = writeln!(
                    out,
                    "  {}:{}: {} ({})",
                    s.finding.file, s.finding.line, s.finding.lint, s.reason
                );
            }
        }
        for unused in &self.unused_suppressions {
            let _ = writeln!(
                out,
                "warning: unused suppression ({} at `{}`): delete it from audit.toml",
                unused.lint, unused.path
            );
        }
        let verdict = if self.is_clean() { "clean" } else { "FAILED" };
        let _ = write!(
            out,
            "audit {verdict}: {} finding(s), {} suppressed, {} unused suppression(s), \
             {} file(s) scanned",
            self.findings.len(),
            self.suppressed.len(),
            self.unused_suppressions.len(),
            self.files_scanned
        );
        out
    }
}
