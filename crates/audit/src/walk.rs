//! Workspace file discovery.
//!
//! The audit scans the workspace's own sources: `src/`, `crates/`,
//! `tests/` and `examples/` under the given root. It deliberately skips:
//!
//! - `vendor/` — third-party substitutes are not held to the invariants;
//! - `target/` — build output;
//! - any directory named `fixtures/` — lint test vectors must keep their
//!   positive cases *in the tree* without tripping the live gate.
//!
//! The returned paths are workspace-relative, `/`-separated and sorted, so
//! a run's finding order is stable across machines.

use std::fs;
use std::io;
use std::path::Path;

/// Directory roots scanned, relative to the workspace root.
pub const SCAN_ROOTS: &[&str] = &["src", "crates", "tests", "examples"];

/// Directory names skipped wherever they appear.
pub const SKIP_DIRS: &[&str] = &["vendor", "target", "fixtures"];

/// Collects every `.rs` file under the scan roots, as sorted
/// workspace-relative `/`-separated paths.
///
/// # Errors
///
/// Propagates filesystem errors from directory traversal.
pub fn workspace_files(root: &Path) -> io::Result<Vec<String>> {
    let mut files = Vec::new();
    for scan in SCAN_ROOTS {
        let dir = root.join(scan);
        if dir.is_dir() {
            collect(&dir, scan, &mut files)?;
        }
    }
    files.sort();
    Ok(files)
}

fn collect(dir: &Path, rel: &str, files: &mut Vec<String>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let name = entry.file_name();
        let name = name.to_string_lossy();
        let child_rel = format!("{rel}/{name}");
        let path = entry.path();
        if path.is_dir() {
            if SKIP_DIRS.contains(&name.as_ref()) {
                continue;
            }
            collect(&path, &child_rel, files)?;
        } else if name.ends_with(".rs") {
            files.push(child_rel);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Runs against the real workspace this crate lives in.
    fn repo_root() -> std::path::PathBuf {
        Path::new(env!("CARGO_MANIFEST_DIR")).join("../..")
    }

    #[test]
    fn finds_the_workspace_and_skips_vendor_and_fixtures() {
        let files = workspace_files(&repo_root()).unwrap();
        assert!(files.iter().any(|f| f == "crates/core/src/krum.rs"));
        assert!(files.iter().any(|f| f == "src/lib.rs"));
        assert!(files.iter().all(|f| !f.starts_with("vendor/")));
        assert!(files.iter().all(|f| !f.contains("/fixtures/")));
        assert!(files.iter().all(|f| f.ends_with(".rs")));
        let mut sorted = files.clone();
        sorted.sort();
        assert_eq!(files, sorted, "order must be deterministic");
    }
}
