//! Self-tests against the real workspace this crate lives in: the lexer
//! must parse every checked-in `.rs` file, and the shipped `audit.toml`
//! baseline must leave the tree clean — the same gate CI runs via
//! `krum audit --deny`.

use std::path::{Path, PathBuf};

use krum_audit::{audit_workspace, workspace_files, AuditConfig};

fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..")
}

/// Every workspace source file lexes without error — i.e. the analyzer can
/// never silently skip a file (a file the lexer rejects would also be a
/// file `rustc` rejects).
#[test]
fn every_workspace_file_lexes() {
    let root = repo_root();
    let files = workspace_files(&root).expect("workspace walk");
    assert!(
        files.len() > 50,
        "workspace walk looks wrong: only {} files",
        files.len()
    );
    for file in &files {
        let src = std::fs::read_to_string(root.join(file)).expect("readable source");
        if let Err(e) = krum_audit::analyze_source(file, &src) {
            panic!("{file} failed to lex: {e}");
        }
    }
}

/// The live gate: the workspace at HEAD is clean under the checked-in
/// baseline, and the baseline carries no dead entries.
#[test]
fn workspace_is_clean_under_the_checked_in_baseline() {
    let root = repo_root();
    let config = AuditConfig::load(&root.join("audit.toml")).expect("audit.toml parses");
    let report = audit_workspace(&root, &config).expect("audit runs");
    assert!(
        report.is_clean(),
        "workspace has unsuppressed findings:\n{}",
        report.render_human()
    );
    assert!(
        report.unused_suppressions.is_empty(),
        "audit.toml carries dead entries:\n{}",
        report.render_human()
    );
}
