//! Fixture tests: every lint fires on its positive fixture, stays silent
//! on the negative twin, and honors `audit.toml` suppressions.
//!
//! The fixtures live in `tests/fixtures/` — a directory name the workspace
//! walker skips ([`krum_audit::SKIP_DIRS`]), so the positive cases can sit
//! in the tree without tripping the live `krum audit --deny` gate.

use std::path::Path;

use krum_audit::{analyze_source, audit_workspace, AuditConfig, Finding};

/// Analyzes a fixture as if it lived at `path` inside the workspace.
fn analyze_fixture(fixture: &str, path: &str) -> Vec<Finding> {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures");
    let src = std::fs::read_to_string(dir.join(fixture)).expect("fixture readable");
    analyze_source(path, &src).expect("fixture lexes")
}

fn codes(findings: &[Finding], code: &str) -> usize {
    findings.iter().filter(|f| f.lint == code).count()
}

#[test]
fn det001_fires_on_positive_and_not_on_negative() {
    let hits = analyze_fixture("det001_positive.rs", "crates/core/src/fixture.rs");
    assert_eq!(codes(&hits, "DET001"), 5, "{hits:#?}");
    let twin = analyze_fixture("det001_negative.rs", "crates/core/src/fixture.rs");
    assert_eq!(codes(&twin, "DET001"), 0, "{twin:#?}");
    // Scope: the same positive is fine outside trajectory-affecting crates.
    let elsewhere = analyze_fixture("det001_positive.rs", "crates/metrics/src/fixture.rs");
    assert_eq!(codes(&elsewhere, "DET001"), 0);
}

#[test]
fn det002_fires_on_positive_and_not_on_negative() {
    let hits = analyze_fixture("det002_positive.rs", "crates/scenario/src/fixture.rs");
    assert_eq!(codes(&hits, "DET002"), 4, "{hits:#?}");
    let twin = analyze_fixture("det002_negative.rs", "crates/scenario/src/fixture.rs");
    assert_eq!(codes(&twin, "DET002"), 0, "{twin:#?}");
    // Scope: bench modules are exempt — timing there is the whole point.
    let bench = analyze_fixture("det002_positive.rs", "crates/bench/src/bin/fixture.rs");
    assert_eq!(codes(&bench, "DET002"), 0);
}

#[test]
fn det003_fires_on_positive_and_not_on_negative() {
    let hits = analyze_fixture("det003_positive.rs", "crates/core/src/fixture.rs");
    assert_eq!(codes(&hits, "DET003"), 1, "{hits:#?}");
    let twin = analyze_fixture("det003_negative.rs", "crates/core/src/fixture.rs");
    assert_eq!(codes(&twin, "DET003"), 0, "{twin:#?}");
}

#[test]
fn panic001_fires_on_positive_and_not_on_negative() {
    let hits = analyze_fixture("panic001_positive.rs", "crates/wire/src/fixture.rs");
    // One each: `.unwrap()`, `.expect()`, `panic!`, `bytes[1]`.
    assert_eq!(codes(&hits, "PANIC001"), 4, "{hits:#?}");
    let twin = analyze_fixture("panic001_negative.rs", "crates/wire/src/fixture.rs");
    assert_eq!(codes(&twin, "PANIC001"), 0, "{twin:#?}");
    // Scope: the same constructs are fine outside wire/server.
    let elsewhere = analyze_fixture("panic001_positive.rs", "crates/core/src/fixture.rs");
    assert_eq!(codes(&elsewhere, "PANIC001"), 0);
}

#[test]
fn safe001_fires_on_positive_and_not_on_negative() {
    let hits = analyze_fixture("safe001_positive.rs", "crates/tensor/src/fixture.rs");
    assert_eq!(codes(&hits, "SAFE001"), 1, "{hits:#?}");
    let twin = analyze_fixture("safe001_negative.rs", "crates/tensor/src/fixture.rs");
    assert_eq!(codes(&twin, "SAFE001"), 0, "{twin:#?}");
}

/// Findings carry exact coordinates and the offending line.
#[test]
fn findings_carry_file_line_col_and_snippet() {
    let hits = analyze_fixture("safe001_positive.rs", "crates/tensor/src/fixture.rs");
    let f = hits.first().expect("one finding");
    assert_eq!(f.file, "crates/tensor/src/fixture.rs");
    assert_eq!((f.line, f.col), (3, 5));
    assert_eq!(f.snippet, "unsafe { *p }");
}

/// A matching `audit.toml` entry suppresses a finding; a non-matching
/// `contains` leaves it active and is itself reported as unused.
#[test]
fn audit_toml_suppressions_are_respected_and_audited() {
    let dir = std::env::temp_dir().join(format!("krum-audit-suppress-{}", std::process::id()));
    let src_dir = dir.join("src");
    std::fs::create_dir_all(&src_dir).expect("temp workspace");
    let fixtures = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures");
    std::fs::copy(fixtures.join("safe001_positive.rs"), src_dir.join("lib.rs"))
        .expect("copy fixture");

    let matching = AuditConfig::parse(
        "[[suppress]]\nlint = \"SAFE001\"\npath = \"src/\"\ncontains = \"unsafe { *p }\"\n\
         reason = \"fixture: raw read documented elsewhere\"\n",
    )
    .expect("baseline parses");
    let report = audit_workspace(&dir, &matching).expect("audit runs");
    assert!(report.is_clean(), "{}", report.render_human());
    assert_eq!(report.suppressed.len(), 1);
    assert_eq!(
        report.suppressed[0].reason,
        "fixture: raw read documented elsewhere"
    );
    assert!(report.unused_suppressions.is_empty());

    let non_matching = AuditConfig::parse(
        "[[suppress]]\nlint = \"SAFE001\"\npath = \"src/\"\ncontains = \"no such snippet\"\n\
         reason = \"never matches\"\n",
    )
    .expect("baseline parses");
    let report = audit_workspace(&dir, &non_matching).expect("audit runs");
    assert!(!report.is_clean());
    assert_eq!(report.unused_suppressions.len(), 1);

    std::fs::remove_dir_all(&dir).expect("cleanup");
}
