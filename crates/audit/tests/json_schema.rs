//! Pins the `krum audit --json` report schema (documented in the README's
//! "Static analysis" section): field names, the version tag, and lossless
//! round-tripping. Bump [`krum_audit::JSON_SCHEMA_VERSION`] on any
//! incompatible change — this test is the tripwire.

use krum_audit::{audit_workspace, AuditConfig, AuditReport, JSON_SCHEMA_VERSION};

#[test]
fn json_report_round_trips_and_keeps_its_documented_shape() {
    let dir = std::env::temp_dir().join(format!("krum-audit-json-{}", std::process::id()));
    let src_dir = dir.join("src");
    std::fs::create_dir_all(&src_dir).expect("temp workspace");
    // One active finding (SAFE001) and one suppressed (a second unsafe
    // block), so every report section is populated.
    std::fs::write(
        src_dir.join("lib.rs"),
        "pub fn f(p: *const u8) -> u8 {\n    unsafe { *p }\n}\n\
         pub fn g(p: *const u8) -> u8 {\n    unsafe { p.read() }\n}\n",
    )
    .expect("write fixture");
    let config = AuditConfig::parse(
        "[[suppress]]\nlint = \"SAFE001\"\npath = \"src/lib.rs\"\ncontains = \"p.read()\"\n\
         reason = \"fixture\"\n\
         [[suppress]]\nlint = \"DET001\"\npath = \"never/\"\nreason = \"stays unused\"\n",
    )
    .expect("baseline parses");

    let report = audit_workspace(&dir, &config).expect("audit runs");
    assert_eq!(report.schema_version, JSON_SCHEMA_VERSION);
    assert_eq!(report.files_scanned, 1);
    assert_eq!(report.findings.len(), 1);
    assert_eq!(report.suppressed.len(), 1);
    assert_eq!(report.unused_suppressions.len(), 1);

    let json = report.to_json().expect("serializes");
    // The documented field names, pinned literally.
    for field in [
        "\"schema_version\"",
        "\"files_scanned\"",
        "\"findings\"",
        "\"suppressed\"",
        "\"unused_suppressions\"",
        "\"lint\"",
        "\"file\"",
        "\"line\"",
        "\"col\"",
        "\"message\"",
        "\"snippet\"",
        "\"finding\"",
        "\"reason\"",
    ] {
        assert!(json.contains(field), "missing {field} in:\n{json}");
    }

    let parsed = AuditReport::from_json(&json).expect("parses back");
    assert_eq!(parsed, report, "round trip must be lossless");

    std::fs::remove_dir_all(&dir).expect("cleanup");
}
