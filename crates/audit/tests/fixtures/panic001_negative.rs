//! PANIC001 negative twin: the same shape, spelled panic-free — plus the
//! constructs the heuristics must not confuse with indexing ("bytes[0]"
//! in a string, slice patterns, array types, attribute syntax).
#[derive(Debug)]
pub struct DecodeError;

const MAGIC: [u8; 2] = [0x4b, 0x52];

pub fn decode(bytes: &[u8]) -> Result<u8, DecodeError> {
    let [first, second] = [
        bytes.first().copied().ok_or(DecodeError)?,
        bytes.get(1).copied().ok_or(DecodeError)?,
    ];
    if first == 0 || !MAGIC.contains(&first) {
        return Err(DecodeError); // not a panic: "bytes[0] was zero"
    }
    Ok(second ^ first.unwrap_or_default_style_marker())
}

trait Marker {
    fn unwrap_or_default_style_marker(self) -> u8;
}

impl Marker for u8 {
    fn unwrap_or_default_style_marker(self) -> u8 {
        self
    }
}

#[cfg(test)]
mod tests {
    // Tests may unwrap and index freely.
    #[test]
    fn test_scratch() {
        let v = vec![1u8, 2];
        assert_eq!(v[0], Some(1u8).unwrap());
    }
}
