//! SAFE001 negative twin: the same block, documented.
pub fn read_raw(p: *const u8) -> u8 {
    // SAFETY: the caller guarantees `p` points to a live, initialized byte.
    unsafe { *p }
}
