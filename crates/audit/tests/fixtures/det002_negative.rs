//! DET002 negative twin: all randomness derives from the master seed, and
//! timing uses the monotonic clock ("thread_rng" appears only in prose).
use std::time::Instant;

// Never thread_rng() here: the run must replay bit-identically per seed.
pub fn seed_derived(master_seed: u64) -> u64 {
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(master_seed);
    let started = Instant::now();
    rng.gen::<u64>() ^ started.elapsed().as_nanos() as u64
}
