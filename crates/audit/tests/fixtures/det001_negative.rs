//! DET001 negative twin: ordered collections; "HashMap" appears only in
//! prose and strings, which the token-level pass must ignore.
use std::collections::{BTreeMap, BTreeSet};

// A HashMap would be wrong here: iteration order must be stable.
pub fn tally(xs: &[u32]) -> BTreeMap<u32, u32> {
    let mut counts = BTreeMap::new();
    for &x in xs {
        *counts.entry(x).or_insert(0) += 1;
    }
    counts
}

pub fn distinct(xs: &[u32]) -> BTreeSet<u32> {
    xs.iter().copied().collect()
}

pub fn describe() -> &'static str {
    "not a HashMap or HashSet in sight"
}

#[cfg(test)]
mod tests {
    // Test-only hash state never affects the trajectory.
    use std::collections::HashMap;

    #[test]
    fn scratch() {
        let _scratch: HashMap<u8, u8> = HashMap::new();
    }
}
