//! PANIC001 positive: one of each panic-capable construct on a decode path.
pub fn decode(bytes: &[u8]) -> u8 {
    let first = bytes.first().unwrap();
    let tag: u8 = bytes.try_into().expect("one byte");
    if *first == 0 {
        panic!("zero tag");
    }
    bytes[1] ^ tag
}
