//! DET001 positive: hash collections in a trajectory-affecting crate.
use std::collections::{HashMap, HashSet};

pub fn tally(xs: &[u32]) -> HashMap<u32, u32> {
    let mut counts = HashMap::new();
    for &x in xs {
        *counts.entry(x).or_insert(0) += 1;
    }
    counts
}

pub fn distinct(xs: &[u32]) -> HashSet<u32> {
    xs.iter().copied().collect()
}
