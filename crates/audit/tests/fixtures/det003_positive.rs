//! DET003 positive: a float reduction on the parallel chain itself.
use rayon::prelude::*;

pub fn norm_squared(xs: &[f64]) -> f64 {
    xs.par_iter().map(|x| x * x).sum()
}
