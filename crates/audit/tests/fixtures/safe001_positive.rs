//! SAFE001 positive: an `unsafe` block with no `// SAFETY:` comment.
pub fn read_raw(p: *const u8) -> u8 {
    unsafe { *p }
}
