//! DET003 negative twin: the parallel loop writes disjoint per-slot
//! outputs; the only `.sum()` is sequential, inside the closure.
use rayon::prelude::*;

pub fn row_norms(rows: &mut [Vec<f64>], out: &mut [f64]) {
    out.par_iter_mut()
        .zip(rows.par_iter())
        .for_each(|(slot, row)| {
            let s: f64 = row.iter().map(|x| x * x).sum();
            *slot = s.sqrt();
        });
}
