//! DET002 positive: one of each entropy source outside a bench module.
use std::time::SystemTime;

pub fn entropy_seeded() -> u64 {
    let mut rng = rand::thread_rng();
    let _fresh = rand_chacha::ChaCha8Rng::from_entropy();
    let now = SystemTime::now();
    rng.gen::<u64>() ^ now.elapsed().map_or(0, |d| d.as_nanos() as u64)
}
