//! Cross-crate integration tests: full training pipelines through the facade.

use krum::aggregation::{Aggregator, Average, CoordinateWiseMedian, Krum, MultiKrum};
use krum::attacks::{Collusion, GaussianNoise, NoAttack, OmniscientNegative, SignFlip};
use krum::data::{generators, partition, BatchSampler};
use krum::dist::{
    ClusterSpec, LatencyModel, LearningRateSchedule, NetworkModel, SyncTrainer, ThreadedTrainer,
    TrainingConfig,
};
use krum::metrics::{to_csv, to_json, TrainingHistory};
use krum::models::{
    accuracy, BatchGradientEstimator, GaussianEstimator, GradientEstimator, LogisticRegression,
    QuadraticCost,
};
use krum::tensor::Vector;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn quadratic_estimators(count: usize, dim: usize, sigma: f64) -> Vec<Box<dyn GradientEstimator>> {
    (0..count)
        .map(|_| {
            Box::new(
                GaussianEstimator::new(QuadraticCost::isotropic(Vector::zeros(dim), 0.0), sigma)
                    .unwrap(),
            ) as Box<dyn GradientEstimator>
        })
        .collect()
}

fn logistic_estimators(
    dataset: &krum::data::Dataset,
    honest: usize,
    features: usize,
    seed: u64,
) -> Vec<Box<dyn GradientEstimator>> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    partition::iid_shards(dataset, honest, &mut rng)
        .unwrap()
        .into_iter()
        .map(|shard| {
            let sampler = BatchSampler::new(shard, 16).unwrap();
            Box::new(
                BatchGradientEstimator::new(LogisticRegression::new(features), sampler).unwrap(),
            ) as Box<dyn GradientEstimator>
        })
        .collect()
}

fn config(rounds: usize, dim: usize) -> TrainingConfig {
    TrainingConfig {
        rounds,
        schedule: LearningRateSchedule::InverseTime {
            gamma: 0.2,
            tau: 60.0,
        },
        seed: 2024,
        eval_every: 10,
        known_optimum: Some(Vector::zeros(dim)),
    }
}

#[test]
fn krum_converges_on_quadratic_with_a_third_byzantine() {
    let dim = 30;
    let cluster = ClusterSpec::new(15, 4).unwrap();
    let mut trainer = SyncTrainer::new(
        cluster,
        Box::new(Krum::new(15, 4).unwrap()),
        Box::new(OmniscientNegative::new(5.0).unwrap()),
        quadratic_estimators(11, dim, 0.3),
        config(300, dim),
    )
    .unwrap();
    let (params, history) = trainer.run(Vector::filled(dim, 4.0)).unwrap();
    assert!(params.norm() < 1.0, "‖x − x*‖ = {}", params.norm());
    let summary = history.summary();
    assert!(!summary.diverged);
    assert!(summary.final_loss.unwrap() < summary.initial_loss.unwrap() * 0.01);
    // While the gradient is still large (early rounds), the attacker's
    // −5·∇Q proposals sit far from the honest cluster and Krum never picks
    // them. (Near the optimum the forged vectors shrink towards zero and
    // become harmless, so selecting them occasionally is expected.)
    let early_byzantine = history.rounds[..20]
        .iter()
        .filter(|r| r.selected_byzantine == Some(true))
        .count();
    assert!(
        early_byzantine <= 2,
        "{early_byzantine} Byzantine selections in the first 20 rounds"
    );
}

#[test]
fn averaging_is_destroyed_by_the_same_attack() {
    let dim = 30;
    let cluster = ClusterSpec::new(15, 4).unwrap();
    let mut trainer = SyncTrainer::new(
        cluster,
        Box::new(Average::new()),
        Box::new(OmniscientNegative::new(5.0).unwrap()),
        quadratic_estimators(11, dim, 0.3),
        config(300, dim),
    )
    .unwrap();
    let (params, _) = trainer.run(Vector::filled(dim, 4.0)).unwrap();
    // The omniscient attacker reverses the average update direction, so the
    // parameters move away from the optimum instead of towards it.
    assert!(
        params.norm() > 4.0 * (dim as f64).sqrt() * 0.5,
        "‖x‖ = {}",
        params.norm()
    );
}

#[test]
fn logistic_regression_under_gaussian_attack_krum_vs_average() {
    let features = 10;
    let mut rng = ChaCha8Rng::seed_from_u64(3);
    let (dataset, _, _) = generators::logistic_regression(2_000, features, &mut rng).unwrap();
    let (train, test) = dataset.split(0.8).unwrap();
    let cluster = ClusterSpec::new(11, 3).unwrap();
    let run = |aggregator: Box<dyn Aggregator>| {
        let cfg = TrainingConfig {
            rounds: 200,
            schedule: LearningRateSchedule::InverseTime {
                gamma: 0.5,
                tau: 50.0,
            },
            seed: 5,
            eval_every: 200,
            known_optimum: None,
        };
        let model = LogisticRegression::new(features);
        let test = test.clone();
        let mut trainer = SyncTrainer::new(
            cluster,
            aggregator,
            Box::new(GaussianNoise::new(100.0).unwrap()),
            logistic_estimators(&train, cluster.honest(), features, 8),
            cfg,
        )
        .unwrap()
        .with_accuracy_probe(move |params| accuracy(&model, params, &test).ok().flatten());
        trainer.run(Vector::zeros(features + 1)).unwrap()
    };
    let (_, krum_history) = run(Box::new(Krum::new(11, 3).unwrap()));
    let (_, avg_history) = run(Box::new(Average::new()));
    let krum_acc = krum_history.summary().final_accuracy.unwrap();
    let avg_acc = avg_history.summary().final_accuracy.unwrap();
    assert!(krum_acc > 0.8, "krum accuracy {krum_acc}");
    assert!(
        krum_acc > avg_acc + 0.05,
        "krum ({krum_acc}) should beat averaging ({avg_acc}) under the Gaussian attack"
    );
}

#[test]
fn figure_2_collusion_beats_closest_to_barycenter_but_not_krum_over_a_run() {
    use krum::aggregation::ClosestToBarycenter;
    let dim = 20;
    let cluster = ClusterSpec::new(13, 3).unwrap();
    let run = |aggregator: Box<dyn Aggregator>| {
        let mut trainer = SyncTrainer::new(
            cluster,
            aggregator,
            Box::new(Collusion::new(5_000.0).unwrap()),
            quadratic_estimators(10, dim, 0.2),
            config(150, dim),
        )
        .unwrap();
        trainer.run(Vector::filled(dim, 3.0)).unwrap()
    };
    let (krum_params, krum_history) = run(Box::new(Krum::new(13, 3).unwrap()));
    let (bary_params, bary_history) = run(Box::new(ClosestToBarycenter::new()));
    // The flawed rule keeps selecting the colluding Byzantine proposal…
    assert!(bary_history.selection_stats().byzantine_rate() > 0.9);
    // …and is dragged far away, while Krum stays near the optimum.
    assert!(krum_params.norm() < 1.0);
    assert!(bary_params.norm() > 10.0 * krum_params.norm());
    assert!(krum_history.selection_stats().byzantine_rate() < 0.05);
}

#[test]
fn multikrum_matches_average_speed_without_attack_and_survives_with_attack() {
    let dim = 25;
    let cluster = ClusterSpec::new(12, 3).unwrap();
    let run = |aggregator: Box<dyn Aggregator>, attacked: bool| {
        let attack: Box<dyn krum::attacks::Attack> = if attacked {
            Box::new(SignFlip::new(8.0).unwrap())
        } else {
            Box::new(NoAttack::new())
        };
        let mut trainer = SyncTrainer::new(
            cluster,
            aggregator,
            attack,
            quadratic_estimators(9, dim, 0.5),
            config(200, dim),
        )
        .unwrap();
        trainer.run(Vector::filled(dim, 3.0)).unwrap().0
    };
    let mk = MultiKrum::new(12, 3, 9).unwrap();
    let clean_mk = run(Box::new(mk), false);
    let attacked_mk = run(Box::new(mk), true);
    let attacked_avg = run(Box::new(Average::new()), true);
    assert!(clean_mk.norm() < 0.5);
    assert!(attacked_mk.norm() < 1.0);
    assert!(attacked_avg.norm() > 5.0);
}

#[test]
fn median_baseline_also_survives_moderate_attacks() {
    let dim = 15;
    let cluster = ClusterSpec::new(11, 2).unwrap();
    let mut trainer = SyncTrainer::new(
        cluster,
        Box::new(CoordinateWiseMedian::new()),
        Box::new(SignFlip::new(10.0).unwrap()),
        quadratic_estimators(9, dim, 0.2),
        config(200, dim),
    )
    .unwrap();
    let (params, _) = trainer.run(Vector::filled(dim, 3.0)).unwrap();
    assert!(params.norm() < 1.0);
}

#[test]
fn threaded_engine_matches_sequential_engine_and_exports_cleanly() {
    let dim = 12;
    let cluster = ClusterSpec::new(9, 2).unwrap();
    let seed_cfg = |dim: usize| TrainingConfig {
        rounds: 40,
        schedule: LearningRateSchedule::Constant { gamma: 0.1 },
        seed: 31,
        eval_every: 5,
        known_optimum: Some(Vector::zeros(dim)),
    };
    let mut sequential = SyncTrainer::new(
        cluster,
        Box::new(Krum::new(9, 2).unwrap()),
        Box::new(GaussianNoise::new(30.0).unwrap()),
        quadratic_estimators(7, dim, 0.4),
        seed_cfg(dim),
    )
    .unwrap();
    let mut threaded = ThreadedTrainer::new(
        cluster,
        Box::new(Krum::new(9, 2).unwrap()),
        Box::new(GaussianNoise::new(30.0).unwrap()),
        quadratic_estimators(8, dim, 0.4), // honest + metrics probe
        seed_cfg(dim),
        NetworkModel {
            latency: LatencyModel::Uniform {
                min_nanos: 10_000,
                max_nanos: 50_000,
            },
            nanos_per_byte: 0.25,
        },
    )
    .unwrap();
    let start = Vector::filled(dim, 2.0);
    let (seq_params, seq_history) = sequential.run(start.clone()).unwrap();
    let (thr_params, thr_history) = threaded.run(start).unwrap();
    assert!(seq_params.distance(&thr_params) < 1e-9);
    assert_eq!(seq_history.len(), thr_history.len());
    // The threaded engine charges simulated network time to its rounds.
    assert!(thr_history.mean_round_nanos() > 20_000.0);

    // Exports produce one row per round and preserve the run metadata and
    // series shape (floating-point values may differ in the last bit after a
    // text round-trip, so we compare structure rather than bit-exact values).
    let csv = to_csv(&seq_history);
    assert!(csv.lines().count() == seq_history.len() + 1);
    let json = to_json(&seq_history).unwrap();
    let back: TrainingHistory = serde_json::from_str(&json).unwrap();
    assert_eq!(back.len(), seq_history.len());
    assert_eq!(back.aggregator, seq_history.aggregator);
    assert_eq!(back.attack, seq_history.attack);
    assert_eq!(back.workers, seq_history.workers);
    for (a, b) in back.rounds.iter().zip(&seq_history.rounds) {
        assert_eq!(a.round, b.round);
        assert_eq!(a.selected_worker, b.selected_worker);
        assert!((a.aggregate_norm - b.aggregate_norm).abs() < 1e-9);
    }
}

#[test]
fn history_metadata_describes_the_run() {
    let dim = 8;
    let cluster = ClusterSpec::new(7, 2).unwrap();
    let mut trainer = SyncTrainer::new(
        cluster,
        Box::new(Krum::new(7, 2).unwrap()),
        Box::new(SignFlip::new(3.0).unwrap()),
        quadratic_estimators(5, dim, 0.1),
        config(20, dim),
    )
    .unwrap();
    let (_, history) = trainer.run(Vector::filled(dim, 1.0)).unwrap();
    assert_eq!(history.workers, 7);
    assert_eq!(history.byzantine, 2);
    assert!(history.aggregator.contains("krum"));
    assert_eq!(history.attack, "sign-flip");
    assert_eq!(history.len(), 20);
    assert!(history.rounds.iter().all(|r| r.aggregate_norm.is_finite()));
    assert!(history.rounds.iter().all(|r| r.learning_rate > 0.0));
}
