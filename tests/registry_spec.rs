//! Property tests for the aggregation-rule registry's spec parsing.
//!
//! `build_aggregator` is the boundary where user-controlled strings (CLI
//! flags, config files) enter the system, so it must never panic: every
//! canonical name must build on a valid cluster shape, and every malformed
//! spec or out-of-range `(n, f)` must come back as
//! `AggregationError::InvalidConfig` (or another structured error), never a
//! panic or an unwrap.

use krum::aggregation::{build_aggregator, AggregationError, Aggregator, RULE_NAMES};
use krum::tensor::Vector;
use proptest::prelude::*;

/// Canonical names round-trip: each builds on a valid shape, aggregates, and
/// reports a display name that starts with the spec it was built from (so
/// the name printed in experiment tables can be traced back to a spec).
#[test]
fn canonical_names_round_trip() {
    for &name in RULE_NAMES {
        let rule = build_aggregator(name, 9, 2)
            .unwrap_or_else(|e| panic!("canonical rule `{name}` failed to build: {e}"));
        let display = rule.name();
        let base = display.split('(').next().unwrap();
        assert!(
            name == base || name == "median" && base == "coordinate-median",
            "rule `{name}` reports unrelated display name `{display}`"
        );
        // Rebuilding from the canonical name is stable.
        let again = build_aggregator(name, 9, 2).unwrap();
        assert_eq!(display, again.name());
        let proposals = vec![Vector::zeros(3); 9];
        assert_eq!(rule.aggregate(&proposals).unwrap().dim(), 3);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Arbitrary (name, params, n, f) combinations never panic — they either
    /// build a working rule or return a structured error.
    #[test]
    fn arbitrary_specs_never_panic(
        name_idx in 0usize..12,
        key_idx in 0usize..6,
        value in 0usize..64,
        decoration in 0usize..6,
        n in 0usize..40,
        f in 0usize..40,
    ) {
        let name = [
            "average",
            "krum",
            "multi-krum",
            "median",
            "trimmed-mean",
            "geometric-median",
            "closest-to-barycenter",
            "min-diameter-subset",
            "uniform-weighted-average",
            "coordinate-median",
            "zeno",
            "",
        ][name_idx];
        let key = ["m", "trim", "k", "", "m m", "=m"][key_idx];
        let spec = match decoration {
            0 => name.to_string(),
            1 => format!("{name}:{key}={value}"),
            2 => format!("{name}:{key}"),
            3 => format!("{name}:{key}={value},{key}={value}"),
            4 => format!("{name}:{key}=not-a-number"),
            _ => format!(" {name} : {key} = {value} "),
        };
        // Must not panic; on success the rule must aggregate or reject
        // structurally (wrong worker count etc.), still without panicking.
        match build_aggregator(&spec, n, f) {
            Ok(rule) => {
                let proposals = vec![Vector::zeros(2); n];
                let _ = rule.aggregate_detailed(&proposals);
                prop_assert!(!rule.name().is_empty());
            }
            Err(e) => {
                // Registry failures surface as structured config errors.
                prop_assert!(
                    matches!(e, AggregationError::InvalidConfig { .. }),
                    "spec `{}` (n={}, f={}) returned unexpected error {:?}",
                    spec, n, f, e
                );
            }
        }
    }

    /// Malformed `key=value` parameter lists are always InvalidConfig.
    #[test]
    fn malformed_params_are_invalid_config(
        name_idx in 0usize..2,
        junk_idx in 0usize..5,
    ) {
        let name = ["multi-krum", "trimmed-mean"][name_idx];
        let junk = ["m", "=3", "m=", "m=3.5", "m=-1"][junk_idx];
        let spec = format!("{name}:{junk}");
        let result = build_aggregator(&spec, 9, 2);
        prop_assert!(
            matches!(result, Err(AggregationError::InvalidConfig { .. })),
            "spec `{}` should be InvalidConfig, got {:?}",
            spec,
            result.map(|r| r.name())
        );
    }

    /// Out-of-range cluster shapes surface the underlying rule's
    /// InvalidConfig instead of panicking: Krum and Multi-Krum require
    /// 2f + 2 < n, the subset rule caps n.
    #[test]
    fn out_of_range_shapes_are_invalid_config(n in 0usize..80, f in 0usize..80) {
        for spec in ["krum", "multi-krum"] {
            let result = build_aggregator(spec, n, f);
            if 2 * f + 2 >= n {
                prop_assert!(
                    matches!(result, Err(AggregationError::InvalidConfig { .. })),
                    "{spec} with n={n}, f={f} must be rejected"
                );
            } else {
                prop_assert!(result.is_ok(), "{spec} with n={n}, f={f} must build");
            }
        }
        let subset = build_aggregator("min-diameter-subset", n, f);
        if n == 0 || f >= n || n > 30 {
            prop_assert!(matches!(
                subset,
                Err(AggregationError::InvalidConfig { .. })
            ));
        } else {
            prop_assert!(subset.is_ok());
        }
    }
}
