//! Property tests for the rule and attack registries' spec parsing.
//!
//! `build_aggregator` / `build_attack` are the boundary where
//! user-controlled strings (CLI flags, scenario files) enter the system, so
//! they must never panic: every canonical name must build on a valid
//! configuration, every typed spec must round-trip `Display → FromStr`
//! exactly, and every malformed spec or out-of-range parameter must come
//! back as a structured error (`AggregationError::InvalidConfig` /
//! `AttackError::BadConfig`), never a panic or an unwrap.

use krum::aggregation::{build_aggregator, AggregationError, Aggregator, RuleSpec, RULE_NAMES};
use krum::attacks::{build_attack, AttackError, AttackSpec, ATTACK_NAMES};
use krum::tensor::Vector;
use proptest::prelude::*;

/// Canonical names round-trip: each builds on a valid shape, aggregates, and
/// reports a display name that starts with the spec it was built from (so
/// the name printed in experiment tables can be traced back to a spec).
#[test]
fn canonical_names_round_trip() {
    for &name in RULE_NAMES {
        // Bare `hierarchical` defaults to 4 Krum-in-Krum groups, so the
        // per-group Krum precondition needs a larger valid shape than the
        // flat rules do.
        let (n, f) = if name == "hierarchical" {
            (24, 3)
        } else {
            (9, 2)
        };
        let rule = build_aggregator(name, n, f)
            .unwrap_or_else(|e| panic!("canonical rule `{name}` failed to build: {e}"));
        let display = rule.name();
        let base = display.split('(').next().unwrap();
        assert!(
            name == base || name == "median" && base == "coordinate-median",
            "rule `{name}` reports unrelated display name `{display}`"
        );
        // Rebuilding from the canonical name is stable.
        let again = build_aggregator(name, n, f).unwrap();
        assert_eq!(display, again.name());
        let proposals = vec![Vector::zeros(3); n];
        assert_eq!(rule.aggregate(&proposals).unwrap().dim(), 3);
    }
}

/// A generator covering every [`RuleSpec`] variant, parameterised and not.
fn rule_spec(seed: usize, param: usize) -> RuleSpec {
    match seed % 11 {
        0 => RuleSpec::Average,
        1 => RuleSpec::UniformWeightedAverage,
        2 => RuleSpec::Krum,
        3 => RuleSpec::MultiKrum { m: None },
        4 => RuleSpec::MultiKrum { m: Some(param) },
        5 => RuleSpec::Median,
        6 => RuleSpec::TrimmedMean { trim: None },
        7 => RuleSpec::TrimmedMean { trim: Some(param) },
        8 => RuleSpec::GeometricMedian,
        9 => RuleSpec::ClosestToBarycenter,
        _ => RuleSpec::MinDiameterSubset,
    }
}

/// A generator covering every [`AttackSpec`] variant.
fn attack_spec(seed: usize, param: f64) -> AttackSpec {
    match seed % 12 {
        0 => AttackSpec::None,
        1 => AttackSpec::ConstantTarget { fill: param },
        2 => AttackSpec::Collusion { magnitude: param },
        3 => AttackSpec::GaussianNoise { std: param },
        4 => AttackSpec::SignFlip { scale: param },
        5 => AttackSpec::OmniscientNegative { scale: param },
        6 => AttackSpec::LittleIsEnough { z: param },
        7 => AttackSpec::Mimic {
            victim: param.abs() as usize,
        },
        8 => AttackSpec::KrumAware {
            aggressiveness: param,
        },
        9 => AttackSpec::Straggler { scale: param },
        10 => AttackSpec::LastToRespond { scale: param },
        _ => AttackSpec::NonFinite,
    }
}

/// Every canonical attack name parses with defaults, builds, and reports a
/// display name whose base matches the spec it came from.
#[test]
fn canonical_attack_names_round_trip() {
    for &name in ATTACK_NAMES {
        let spec: AttackSpec = name
            .parse()
            .unwrap_or_else(|e| panic!("canonical attack `{name}` failed to parse: {e}"));
        assert_eq!(spec.name(), name);
        let built = spec
            .build(4)
            .unwrap_or_else(|e| panic!("canonical attack `{name}` failed to build: {e}"));
        assert_eq!(built.name(), name);
        // Re-parsing the parameterised rendering lands on the same spec.
        let reparsed: AttackSpec = spec.to_string().parse().unwrap();
        assert_eq!(reparsed, spec);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// `Display → FromStr` is the identity for every `RuleSpec` variant, so
    /// the textual form in tables/CLIs/JSON names exactly one typed spec.
    #[test]
    fn rule_specs_round_trip_display_fromstr(seed in 0usize..11, param in 0usize..1000) {
        let spec = rule_spec(seed, param);
        let text = spec.to_string();
        let parsed: RuleSpec = text.parse().unwrap_or_else(|e| {
            panic!("`{text}` (from {spec:?}) failed to parse back: {e}")
        });
        prop_assert_eq!(parsed, spec);
        // And the serde rendering is the same string.
        let json = serde_json::to_string(&spec).unwrap();
        prop_assert_eq!(json, format!("\"{text}\""));
    }

    /// `Display → FromStr` is the identity for every `AttackSpec` variant,
    /// including non-round float parameters (f64 `Display` is exact).
    #[test]
    fn attack_specs_round_trip_display_fromstr(
        seed in 0usize..12,
        param in 1e-6f64..1e9,
    ) {
        let spec = attack_spec(seed, param);
        let text = spec.to_string();
        let parsed: AttackSpec = text.parse().unwrap_or_else(|e| {
            panic!("`{text}` (from {spec:?}) failed to parse back: {e}")
        });
        prop_assert_eq!(parsed, spec);
        let back: AttackSpec = serde_json::from_str(&serde_json::to_string(&spec).unwrap()).unwrap();
        prop_assert_eq!(back, spec);
    }

    /// Arbitrary attack-spec strings never panic: they parse into a working
    /// strategy or return a structured `AttackError`, and building at any
    /// dimension never panics either.
    #[test]
    fn arbitrary_attack_specs_never_panic(
        name_idx in 0usize..15,
        key_idx in 0usize..6,
        value in -1e3f64..1e3,
        decoration in 0usize..6,
        dim in 0usize..40,
    ) {
        let name = [
            "none",
            "constant-target",
            "collusion",
            "gaussian-noise",
            "sign-flip",
            "omniscient-negative",
            "little-is-enough",
            "mimic",
            "krum-aware",
            "straggler",
            "last-to-respond",
            "non-finite",
            "zeno",
            "",
            "sign-flip ",
        ][name_idx];
        let key = ["fill", "scale", "std", "", "z z", "=z"][key_idx];
        let spec = match decoration {
            0 => name.to_string(),
            1 => format!("{name}:{key}={value}"),
            2 => format!("{name}:{key}"),
            3 => format!("{name}:{key}={value},{key}={value}"),
            4 => format!("{name}:{key}=not-a-number"),
            _ => format!(" {name} : {key} = {value} "),
        };
        match build_attack(&spec, dim) {
            Ok(attack) => prop_assert!(!attack.name().is_empty()),
            Err(e) => prop_assert!(
                matches!(e, AttackError::BadConfig { .. }),
                "spec `{}` (dim={}) returned unexpected error {:?}",
                spec, dim, e
            ),
        }
    }

    /// Arbitrary (name, params, n, f) combinations never panic — they either
    /// build a working rule or return a structured error.
    #[test]
    fn arbitrary_specs_never_panic(
        name_idx in 0usize..12,
        key_idx in 0usize..6,
        value in 0usize..64,
        decoration in 0usize..6,
        n in 0usize..40,
        f in 0usize..40,
    ) {
        let name = [
            "average",
            "krum",
            "multi-krum",
            "median",
            "trimmed-mean",
            "geometric-median",
            "closest-to-barycenter",
            "min-diameter-subset",
            "uniform-weighted-average",
            "coordinate-median",
            "zeno",
            "",
        ][name_idx];
        let key = ["m", "trim", "k", "", "m m", "=m"][key_idx];
        let spec = match decoration {
            0 => name.to_string(),
            1 => format!("{name}:{key}={value}"),
            2 => format!("{name}:{key}"),
            3 => format!("{name}:{key}={value},{key}={value}"),
            4 => format!("{name}:{key}=not-a-number"),
            _ => format!(" {name} : {key} = {value} "),
        };
        // Must not panic; on success the rule must aggregate or reject
        // structurally (wrong worker count etc.), still without panicking.
        match build_aggregator(&spec, n, f) {
            Ok(rule) => {
                let proposals = vec![Vector::zeros(2); n];
                let _ = rule.aggregate_detailed(&proposals);
                prop_assert!(!rule.name().is_empty());
            }
            Err(e) => {
                // Registry failures surface as structured config errors.
                prop_assert!(
                    matches!(e, AggregationError::InvalidConfig { .. }),
                    "spec `{}` (n={}, f={}) returned unexpected error {:?}",
                    spec, n, f, e
                );
            }
        }
    }

    /// Malformed `key=value` parameter lists are always InvalidConfig.
    #[test]
    fn malformed_params_are_invalid_config(
        name_idx in 0usize..2,
        junk_idx in 0usize..5,
    ) {
        let name = ["multi-krum", "trimmed-mean"][name_idx];
        let junk = ["m", "=3", "m=", "m=3.5", "m=-1"][junk_idx];
        let spec = format!("{name}:{junk}");
        let result = build_aggregator(&spec, 9, 2);
        prop_assert!(
            matches!(result, Err(AggregationError::InvalidConfig { .. })),
            "spec `{}` should be InvalidConfig, got {:?}",
            spec,
            result.map(|r| r.name())
        );
    }

    /// Out-of-range cluster shapes surface the underlying rule's
    /// InvalidConfig instead of panicking: Krum and Multi-Krum require
    /// 2f + 2 < n, the subset rule caps n.
    #[test]
    fn out_of_range_shapes_are_invalid_config(n in 0usize..80, f in 0usize..80) {
        for spec in ["krum", "multi-krum"] {
            let result = build_aggregator(spec, n, f);
            if 2 * f + 2 >= n {
                prop_assert!(
                    matches!(result, Err(AggregationError::InvalidConfig { .. })),
                    "{spec} with n={n}, f={f} must be rejected"
                );
            } else {
                prop_assert!(result.is_ok(), "{spec} with n={n}, f={f} must build");
            }
        }
        let subset = build_aggregator("min-diameter-subset", n, f);
        if n == 0 || f >= n || n > 30 {
            prop_assert!(matches!(
                subset,
                Err(AggregationError::InvalidConfig { .. })
            ));
        } else {
            prop_assert!(subset.is_ok());
        }
    }
}
