//! Property pin for the incremental Gram cache (tentpole of the scaling
//! PR): over randomized arrival patterns — fresh, stale and carried
//! proposal mixes produced by reuse-mode `AsyncQuorum` rounds under
//! timing-aware adversaries and heavy-tailed networks — the trajectory
//! with the generation-keyed incremental Gram update is **byte-identical**
//! to the trajectory that recomputes every pairwise distance from scratch.
//!
//! The incremental path only ever rewrites Gram rows whose generation
//! counter moved; unchanged entries keep their exact bit patterns and
//! changed entries are recomputed with the same accumulation order as the
//! full kernel, so no tolerance is needed anywhere below: every assert is
//! on `f64::to_bits`.

use krum::attacks::{Attack, AttackSpec};
use krum::dist::{
    ClusterSpec, ExecutionStrategy, LatencyModel, LearningRateSchedule, NetworkModel, RoundEngine,
    TrainingConfig,
};
use krum::models::{GaussianEstimator, GradientEstimator, QuadraticCost};
use krum::tensor::Vector;

/// Deterministic config generator (an LCG, so the "random" cases are the
/// same on every run — a failing case is immediately reproducible).
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 16
    }

    /// Uniform draw in `[lo, hi]`.
    fn range(&mut self, lo: usize, hi: usize) -> usize {
        lo + (self.next() as usize) % (hi - lo + 1)
    }
}

struct Case {
    n: usize,
    f: usize,
    dim: usize,
    rounds: usize,
    quorum: usize,
    max_staleness: usize,
    network: NetworkModel,
    attack: AttackSpec,
    seed: u64,
}

fn draw_case(rng: &mut Lcg) -> Case {
    let n = rng.range(7, 20);
    // Keep Krum feasible at the full table arity: 2f + 2 < n.
    let f = rng.range(1, (n - 3) / 2);
    let quorum = rng.range(1, n);
    let max_staleness = rng.range(0, 6);
    let network = match rng.range(0, 2) {
        0 => NetworkModel {
            latency: LatencyModel::Constant {
                nanos: rng.range(0, 50_000) as u64,
            },
            nanos_per_byte: 0.0,
        },
        1 => NetworkModel {
            latency: LatencyModel::Uniform {
                min_nanos: 1_000,
                max_nanos: 200_000,
            },
            nanos_per_byte: 0.05,
        },
        _ => NetworkModel {
            latency: LatencyModel::Pareto {
                min_nanos: 10_000,
                alpha: 1.1 + rng.range(0, 10) as f64 / 10.0,
            },
            nanos_per_byte: 0.02,
        },
    };
    let attack = match rng.range(0, 3) {
        0 => AttackSpec::SignFlip { scale: 3.0 },
        1 => AttackSpec::Straggler { scale: 2.5 },
        2 => AttackSpec::LastToRespond { scale: 2.0 },
        _ => AttackSpec::GaussianNoise { std: 20.0 },
    };
    Case {
        n,
        f,
        dim: rng.range(3, 24),
        rounds: rng.range(8, 30),
        quorum,
        max_staleness,
        network,
        attack,
        seed: rng.next(),
    }
}

/// One round's observable fingerprint: aggregate-norm bits, selected
/// worker, and how many quorum slots were stale carry-overs.
type RoundFingerprint = (u64, Option<usize>, Option<usize>);

fn run(case: &Case, gram_cache: bool) -> (Vector, Vec<RoundFingerprint>) {
    let estimators: Vec<Box<dyn GradientEstimator>> = (0..case.n - case.f)
        .map(|_| {
            Box::new(
                GaussianEstimator::new(QuadraticCost::isotropic(Vector::zeros(case.dim), 0.0), 0.3)
                    .unwrap(),
            ) as Box<dyn GradientEstimator>
        })
        .collect();
    let attack: Box<dyn Attack> = case.attack.build(case.dim).unwrap();
    let mut engine = RoundEngine::new(
        ClusterSpec::new(case.n, case.f).unwrap(),
        Box::new(krum::aggregation::Krum::new(case.n, case.f).unwrap()),
        attack,
        estimators,
        None,
        TrainingConfig {
            rounds: case.rounds,
            schedule: LearningRateSchedule::Constant { gamma: 0.15 },
            seed: case.seed,
            eval_every: 5,
            known_optimum: Some(Vector::zeros(case.dim)),
        },
        ExecutionStrategy::AsyncQuorum {
            quorum: case.quorum,
            max_staleness: case.max_staleness,
            network: case.network,
            reuse_stale: true,
        },
    )
    .unwrap();
    engine.set_gram_cache(gram_cache);
    let (params, history) = engine.run(Vector::filled(case.dim, 1.5)).unwrap();
    let trace = history
        .rounds
        .iter()
        .map(|r| {
            (
                r.aggregate_norm.to_bits(),
                r.selected_worker,
                r.stale_in_quorum,
            )
        })
        .collect();
    (params, trace)
}

#[test]
fn incremental_gram_is_bit_identical_to_full_recomputation_over_random_arrivals() {
    let mut rng = Lcg(0x5eed_cafe);
    let mut saw_stale = false;
    let mut saw_partial_refresh = false;
    for case_index in 0..24 {
        let case = draw_case(&mut rng);
        let (cached_params, cached_trace) = run(&case, true);
        let (full_params, full_trace) = run(&case, false);

        let label = format!(
            "case {case_index}: n={} f={} q={} staleness={} dim={} rounds={} attack={}",
            case.n, case.f, case.quorum, case.max_staleness, case.dim, case.rounds, case.attack
        );
        assert_eq!(cached_params.dim(), full_params.dim(), "{label}");
        for (a, b) in cached_params.as_slice().iter().zip(full_params.as_slice()) {
            assert_eq!(a.to_bits(), b.to_bits(), "{label}");
        }
        assert_eq!(cached_trace, full_trace, "{label}");

        saw_stale |= cached_trace.iter().any(|(_, _, s)| s.unwrap_or(0) > 0);
        saw_partial_refresh |= case.quorum < case.n;
    }
    // The sweep must actually exercise the interesting regime: rounds that
    // aggregate carried (stale) table entries next to fresh ones.
    assert!(saw_stale, "no sampled case aggregated stale proposals");
    assert!(saw_partial_refresh, "no sampled case refreshed partially");
}
