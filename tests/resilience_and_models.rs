//! Property tests on the resilience machinery (Definition 3.2 / Proposition
//! 4.2) and on the gradient implementations of every model.

use krum::aggregation::{eta, krum_sin_alpha, Krum, ResilienceEstimator};
use krum::data::{generators, Batch, BatchSampler};
use krum::models::{
    finite_difference_check, LinearRegression, LogisticRegression, Mlp, MlpBuilder, Model,
    SoftmaxRegression,
};
use krum::tensor::{InitStrategy, Vector};
use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn eta_is_monotone_in_f_and_increasing_in_n(n in 7usize..60) {
        let max_f = (n - 3) / 2;
        let mut previous = 0.0;
        for f in 0..=max_f {
            let value = eta(n, f).unwrap();
            prop_assert!(value.is_finite() && value > 0.0);
            prop_assert!(value >= previous, "eta must grow with f");
            previous = value;
        }
        // eta grows with n for fixed f.
        prop_assert!(eta(n + 1, 0).unwrap() > eta(n, 0).unwrap());
    }

    #[test]
    fn sin_alpha_scales_linearly_with_sigma(n in 7usize..40, d in 1usize..200,
                                            sigma in 0.001f64..0.5, norm in 0.5f64..20.0) {
        let f = (n - 3) / 2;
        let one = krum_sin_alpha(n, f, d, sigma, norm).unwrap();
        let two = krum_sin_alpha(n, f, d, 2.0 * sigma, norm).unwrap();
        prop_assert!((two / one - 2.0).abs() < 1e-9);
        // And inversely with the gradient norm.
        let half = krum_sin_alpha(n, f, d, sigma, 2.0 * norm).unwrap();
        prop_assert!((one / half - 2.0).abs() < 1e-9);
    }

    #[test]
    fn linear_model_gradients_match_finite_differences(seed in 0u64..500, dim in 1usize..6) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let (ds, _, _) = generators::linear_regression(12, dim, 0.2, &mut rng).unwrap();
        let batch = BatchSampler::new(ds, 12).unwrap().full_batch();
        let model = LinearRegression::with_l2(dim, 0.01);
        let params = model.init_parameters(InitStrategy::Gaussian { std: 0.5 }, &mut rng);
        let err = finite_difference_check(&model, &params, &batch, 1e-5).unwrap();
        prop_assert!(err < 1e-5, "finite-difference error {err}");
    }

    #[test]
    fn logistic_model_gradients_match_finite_differences(seed in 0u64..500, dim in 1usize..6) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let (ds, _, _) = generators::logistic_regression(16, dim, &mut rng).unwrap();
        let batch = BatchSampler::new(ds, 16).unwrap().full_batch();
        let model = LogisticRegression::new(dim);
        let params = model.init_parameters(InitStrategy::Gaussian { std: 0.5 }, &mut rng);
        let err = finite_difference_check(&model, &params, &batch, 1e-5).unwrap();
        prop_assert!(err < 1e-5, "finite-difference error {err}");
    }

    #[test]
    fn softmax_model_gradients_match_finite_differences(seed in 0u64..200, classes in 2usize..5) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let ds = generators::gaussian_blobs(20, 3, classes, 2.0, 0.4, &mut rng).unwrap();
        let batch = BatchSampler::new(ds, 20).unwrap().full_batch();
        let model = SoftmaxRegression::new(3, classes).unwrap();
        let params = model.init_parameters(InitStrategy::Gaussian { std: 0.3 }, &mut rng);
        let err = finite_difference_check(&model, &params, &batch, 1e-5).unwrap();
        prop_assert!(err < 1e-5, "finite-difference error {err}");
    }

    #[test]
    fn mlp_gradients_match_finite_differences(seed in 0u64..100, hidden in 2usize..8) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let ds = generators::gaussian_blobs(10, 2, 2, 2.0, 0.4, &mut rng).unwrap();
        let batch = BatchSampler::new(ds, 10).unwrap().full_batch();
        let mlp: Mlp = MlpBuilder::new(2, 2)
            .hidden_layer(hidden)
            .activation(krum::models::Activation::Tanh)
            .build()
            .unwrap();
        let params = mlp.init_parameters(InitStrategy::Gaussian { std: 0.4 }, &mut rng);
        let err = finite_difference_check(&mlp, &params, &batch, 1e-5).unwrap();
        prop_assert!(err < 1e-4, "finite-difference error {err}");
    }

    #[test]
    fn model_losses_are_finite_and_nonnegative(seed in 0u64..300) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let ds = generators::gaussian_blobs(15, 4, 3, 2.0, 0.5, &mut rng).unwrap();
        let batch = BatchSampler::new(ds, 15).unwrap().full_batch();
        let model = SoftmaxRegression::new(4, 3).unwrap();
        let params = model.init_parameters(InitStrategy::Gaussian { std: 1.0 }, &mut rng);
        let loss = model.loss(&params, &batch).unwrap();
        prop_assert!(loss.is_finite() && loss >= 0.0);
        let grad = model.gradient(&params, &batch).unwrap();
        prop_assert!(grad.is_finite());
        prop_assert_eq!(grad.dim(), model.dim());
    }
}

#[test]
fn krum_resilience_holds_across_f_values_when_premise_is_satisfied() {
    // Sweep f for n = 15, d = 8 with noise small enough that
    // η(n,f)·√d·σ < ‖g‖ for every tested f; condition (i) must hold.
    let n = 15;
    let d = 8;
    let g = Vector::filled(d, 2.0); // ‖g‖ = 2√8 ≈ 5.66
    let mut rng = ChaCha8Rng::seed_from_u64(0);
    for f in [0usize, 2, 4, 6] {
        if 2 * f + 2 >= n {
            continue;
        }
        let sigma = 0.02;
        let sin_alpha = krum_sin_alpha(n, f, d, sigma, g.norm()).unwrap();
        assert!(sin_alpha < 1.0, "premise violated for f = {f}");
        let krum = Krum::new(n, f).unwrap();
        let estimator = ResilienceEstimator::new(150).unwrap();
        let check = estimator
            .check(
                &krum,
                &g,
                sigma,
                n,
                f,
                |correct, rng| {
                    // Strong adversary: negated honest mean, large magnitude.
                    let mean = Vector::mean_of(correct).unwrap();
                    (0..f)
                        .map(|_| {
                            let mut v = mean.scaled(-10.0);
                            v.axpy(1.0, &Vector::gaussian(mean.dim(), 0.0, 1.0, rng));
                            v
                        })
                        .collect()
                },
                &mut rng,
            )
            .unwrap();
        assert!(
            check.condition_i,
            "condition (i) failed for f = {f}: inner product {} < bound {}",
            check.inner_product, check.required_lower_bound
        );
    }
}

#[test]
fn resilience_premise_fails_gracefully_when_noise_dominates() {
    // With σ so large that η√d·σ ≥ ‖g‖, the theory makes no promise; the
    // estimator must report sin α ≥ 1 rather than a spurious pass.
    let n = 9;
    let f = 3;
    let d = 16;
    let g = Vector::filled(d, 0.1);
    let sin_alpha = krum_sin_alpha(n, f, d, 1.0, g.norm()).unwrap();
    assert!(sin_alpha >= 1.0);
    let krum = Krum::new(n, f).unwrap();
    let mut rng = ChaCha8Rng::seed_from_u64(1);
    let check = ResilienceEstimator::new(50)
        .unwrap()
        .check(
            &krum,
            &g,
            1.0,
            n,
            f,
            |_, rng| (0..f).map(|_| Vector::gaussian(d, 0.0, 5.0, rng)).collect(),
            &mut rng,
        )
        .unwrap();
    assert!(check.sin_alpha >= 1.0);
    assert!(check.required_lower_bound <= 0.0);
    assert!(!check.condition_i);
}

#[test]
fn batch_helpers_round_trip_through_models() {
    // A Batch built by hand behaves identically to one from the sampler.
    let mut rng = ChaCha8Rng::seed_from_u64(9);
    let ds = generators::gaussian_blobs(30, 3, 2, 2.0, 0.3, &mut rng).unwrap();
    let model = SoftmaxRegression::new(3, 2).unwrap();
    let params = model.init_parameters(InitStrategy::Zeros, &mut rng);
    let from_sampler = BatchSampler::new(ds.clone(), ds.len())
        .unwrap()
        .full_batch();
    let by_hand = Batch {
        features: ds.features().clone(),
        labels: ds.labels().to_vec(),
    };
    assert_eq!(
        model.loss(&params, &from_sampler).unwrap(),
        model.loss(&params, &by_hand).unwrap()
    );
}
