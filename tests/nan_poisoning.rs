//! End-to-end NaN-poisoning coverage (satellite of the async-quorum PR):
//! a registered attack emitting non-finite proposals, run through
//! `Scenario::run()` for **every** registered rule, must yield either a
//! structured error or a fully finite trajectory — never a panic and never
//! a silently bogus (NaN-filled) history.

use krum::aggregation::{RuleSpec, RULE_NAMES};
use krum::attacks::AttackSpec;
use krum::models::EstimatorSpec;
use krum::scenario::{ScenarioBuilder, ScenarioError};

fn poisoned_run(rule: RuleSpec) -> Result<krum::scenario::ScenarioReport, ScenarioError> {
    ScenarioBuilder::new(9, 2)
        .rule(rule)
        .attack(AttackSpec::NonFinite)
        .estimator(EstimatorSpec::GaussianQuadratic { dim: 5, sigma: 0.2 })
        .rounds(12)
        .eval_every(3)
        .seed(11)
        .init_fill(1.0)
        .run()
}

#[test]
fn every_registered_rule_survives_or_errors_structurally_under_nan_poisoning() {
    let mut errored = Vec::new();
    let mut survived = Vec::new();
    for spec in RuleSpec::all() {
        match poisoned_run(spec) {
            Err(e) => {
                // A structured error naming what went wrong — never a panic.
                assert!(!e.to_string().is_empty());
                errored.push(spec.name());
            }
            Ok(report) => {
                // A rule that filters the poison must deliver a *fully*
                // finite trajectory: params, aggregates and losses.
                assert!(
                    report.final_params.is_finite(),
                    "rule {spec} returned non-finite parameters without erroring"
                );
                for r in &report.history.rounds {
                    assert!(
                        r.aggregate_norm.is_finite(),
                        "rule {spec}: non-finite aggregate at round {}",
                        r.round
                    );
                    if let Some(loss) = r.loss {
                        assert!(loss.is_finite(), "rule {spec}: non-finite loss");
                    }
                }
                assert!(!report.summary().diverged, "rule {spec}");
                survived.push(spec.name());
            }
        }
    }
    assert_eq!(errored.len() + survived.len(), RULE_NAMES.len());
    // The robust selection/trimming rules filter a 2-of-9 NaN minority…
    for expected in ["krum", "multi-krum", "median", "trimmed-mean"] {
        assert!(
            survived.contains(&expected),
            "{expected} should survive NaN poisoning, but errored ({survived:?})"
        );
    }
    // …while the linear rules cannot, and must fail structurally rather
    // than silently stepping on NaN.
    assert!(
        errored.contains(&"average"),
        "average must report the poisoned round ({errored:?})"
    );
}

#[test]
fn krum_trajectory_under_nan_poisoning_never_selects_a_byzantine_worker() {
    let report = poisoned_run(RuleSpec::Krum).expect("krum filters the poison");
    let stats = report.history.selection_stats();
    assert_eq!(stats.total(), 12, "every round attributes a selection");
    assert_eq!(
        stats.byzantine_selected(),
        0,
        "a NaN proposal must never win Krum's minimisation"
    );
}
