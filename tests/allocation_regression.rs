//! Allocation regression test for the workspace-backed aggregation path.
//!
//! The `AggregationContext` contract: once the workspace has warmed up on a
//! proposal shape `(n, d)`, repeated `aggregate_in` calls under the
//! sequential execution policy perform **zero heap allocations**. This test
//! installs a counting global allocator and pins that contract for Krum,
//! Multi-Krum, the coordinate-wise median and the trimmed mean (the rules
//! named by the server hot paths), plus the allocation-free kernel shared
//! with `closest-to-barycenter`.
//!
//! The counter is thread-local so the test stays meaningful even if the
//! harness runs other tests concurrently in the same process; for the same
//! reason everything lives in a single `#[test]`.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

use krum::aggregation::{
    AggregationContext, Aggregator, ClosestToBarycenter, CoordinateWiseMedian, ExecutionPolicy,
    Hierarchical, Krum, MultiKrum, StageRule, TrimmedMean,
};
use krum::tensor::Vector;

thread_local! {
    static ALLOCATIONS: Cell<u64> = const { Cell::new(0) };
}

/// Counts every allocation made by the current thread; delegates the actual
/// memory management to the system allocator.
///
/// Deliberately duplicated in `crates/bench/src/bin/round_pipeline.rs`
/// (keep the two in sync): a shared home would have to live in a library
/// crate, and every crate in this workspace forbids `unsafe_code`, which a
/// `GlobalAlloc` impl requires.
struct CountingAllocator;

fn bump() {
    // `try_with` so allocations during thread teardown never panic.
    let _ = ALLOCATIONS.try_with(|c| c.set(c.get() + 1));
}

// SAFETY: a pure pass-through to `System`, which upholds the `GlobalAlloc`
// contract; `bump` only touches an already-initialized thread-local `Cell`
// and never allocates or unwinds, so every method inherits `System`'s
// guarantees unchanged.
unsafe impl GlobalAlloc for CountingAllocator {
    // SAFETY: the caller's `alloc` obligations are forwarded to `System` as-is.
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        bump();
        System.alloc(layout)
    }

    // SAFETY: the caller's `alloc_zeroed` obligations are forwarded to `System` as-is.
    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        bump();
        System.alloc_zeroed(layout)
    }

    // SAFETY: the caller's `realloc` obligations (live ptr, matching layout)
    // are forwarded to `System` as-is.
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        bump();
        System.realloc(ptr, layout, new_size)
    }

    // SAFETY: the caller's `dealloc` obligations (live ptr, matching layout)
    // are forwarded to `System` as-is.
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

fn allocations() -> u64 {
    ALLOCATIONS.with(|c| c.get())
}

/// Deterministic pseudo-random proposals (no RNG crate involvement so the
/// measured region stays simple).
fn proposals(n: usize, dim: usize) -> Vec<Vector> {
    (0..n)
        .map(|w| {
            Vector::from(
                (0..dim)
                    .map(|c| {
                        let x = (w * 31 + c * 7 + 13) as f64;
                        (x * 0.618_033_988_749).fract() * 2.0 - 1.0
                    })
                    .collect::<Vec<f64>>(),
            )
        })
        .collect()
}

#[test]
fn aggregation_path_is_allocation_free_after_warmup() {
    // n = 24 exercises sorts well past any insertion-sort cutoff; d = 257
    // straddles the kernel's 32-lane chunks and the median block size.
    let n = 24;
    let f = 7; // 2f + 2 < n
    let dim = 257;
    let ps = proposals(n, dim);

    let rules: Vec<(&str, Box<dyn Aggregator>)> = vec![
        ("krum", Box::new(Krum::new(n, f).unwrap())),
        ("multi-krum", Box::new(MultiKrum::new(n, f, n - f).unwrap())),
        ("median", Box::new(CoordinateWiseMedian::new())),
        ("trimmed-mean", Box::new(TrimmedMean::new(f))),
        (
            "closest-to-barycenter",
            Box::new(ClosestToBarycenter::new()),
        ),
    ];

    for (name, rule) in &rules {
        // The zero-allocation guarantee is tied to the sequential policy:
        // the thread-pool fan-out necessarily allocates task bookkeeping.
        let mut ctx = AggregationContext::with_policy(ExecutionPolicy::Sequential);

        // Warm-up: grows every buffer to the (n, d) high-water mark.
        for _ in 0..2 {
            rule.aggregate_in(&mut ctx, &ps).unwrap();
        }
        let expected = rule.aggregate_detailed(&ps).unwrap();

        let before = allocations();
        for _ in 0..10 {
            rule.aggregate_in(&mut ctx, &ps).unwrap();
        }
        let after = allocations();
        assert_eq!(
            after - before,
            0,
            "rule `{name}` allocated {} times in 10 warm aggregate_in calls",
            after - before
        );

        // The warm path still computes the right answer.
        assert_eq!(
            ctx.output(),
            &expected,
            "rule `{name}` warm output diverged from the allocating path"
        );
    }

    // Sanity check that the counter actually counts: an allocating call
    // must register.
    let krum = Krum::new(n, f).unwrap();
    let before = allocations();
    let _ = krum.aggregate_detailed(&ps).unwrap();
    assert!(
        allocations() > before,
        "counting allocator failed to observe the allocating path"
    );
}

/// Satellite: the warm-workspace contract must survive **arity churn** — a
/// server closing degraded rounds (or an async engine aggregating a
/// partial quorum) reuses one context across rules rebuilt at `q < n`,
/// then grows back to `n` when the stragglers return. Once every shape
/// has been seen, shrinking and growing between them must not reallocate.
#[test]
fn aggregation_path_survives_arity_churn_without_reallocating() {
    let n = 24;
    let f = 5;
    let dim = 257;
    let ps = proposals(n, dim);
    // Quorum sizes a degraded/async round would actually visit (all keep
    // Krum's 2f + 2 < q precondition at f = 5).
    let arities = [n, 17, 20, n, 13, n];

    let rules: Vec<Box<dyn Aggregator>> = arities
        .iter()
        .map(|&q| Box::new(Krum::new(q, f).unwrap()) as Box<dyn Aggregator>)
        .collect();

    let mut ctx = AggregationContext::with_policy(ExecutionPolicy::Sequential);
    // Warm-up: visit every shape once (high-water mark is (n, dim)).
    for (rule, &q) in rules.iter().zip(&arities) {
        rule.aggregate_in(&mut ctx, &ps[..q]).unwrap();
    }

    let before = allocations();
    for _ in 0..5 {
        for (rule, &q) in rules.iter().zip(&arities) {
            rule.aggregate_in(&mut ctx, &ps[..q]).unwrap();
        }
    }
    let after = allocations();
    assert_eq!(
        after - before,
        0,
        "arity churn allocated {} times across warm shrink/grow cycles",
        after - before
    );

    // Churn keeps answers identical to the allocating path at each arity.
    for (rule, &q) in rules.iter().zip(&arities) {
        let expected = rule.aggregate_detailed(&ps[..q]).unwrap();
        rule.aggregate_in(&mut ctx, &ps[..q]).unwrap();
        assert_eq!(ctx.output(), &expected, "arity {q} diverged when warm");
    }
}

/// Satellite: the hierarchical rule's two-stage workspace obeys the same
/// contract — after one round warms the group slots, the winner table and
/// the outer context, steady-state rounds are allocation-free under the
/// sequential policy.
#[test]
fn hierarchical_aggregation_is_allocation_free_after_warmup() {
    let n = 24;
    let f = 3;
    let dim = 257;
    let ps = proposals(n, dim);
    let rule = Hierarchical::new(n, f, 4, StageRule::Krum, StageRule::Krum).unwrap();

    let mut ctx = AggregationContext::with_policy(ExecutionPolicy::Sequential);
    for _ in 0..2 {
        rule.aggregate_in(&mut ctx, &ps).unwrap();
    }
    let expected = rule.aggregate_detailed(&ps).unwrap();

    let before = allocations();
    for _ in 0..10 {
        rule.aggregate_in(&mut ctx, &ps).unwrap();
    }
    let after = allocations();
    assert_eq!(
        after - before,
        0,
        "hierarchical allocated {} times in 10 warm aggregate_in calls",
        after - before
    );
    assert_eq!(ctx.output(), &expected);
}
