//! Property-based tests on the aggregation rules (cross-crate, via the facade).
//!
//! These encode the invariants the paper's definitions imply:
//! * Krum always returns one of its inputs and never an obvious outlier when
//!   the honest majority is clustered;
//! * Krum is equivariant under translation and permutation-stable up to ties;
//! * mixing rules (average, median, trimmed mean) stay inside the coordinate
//!   envelope of their inputs.

use krum::aggregation::{
    Aggregator, Average, ClosestToBarycenter, CoordinateWiseMedian, Krum, MultiKrum, TrimmedMean,
};
use krum::tensor::Vector;
use proptest::prelude::*;

/// Strategy: a cluster of `honest` vectors near a random centre plus `byz`
/// large outliers, with dimension `dim`.
fn clustered_proposals(
    honest: usize,
    byz: usize,
    dim: usize,
) -> impl Strategy<Value = (Vec<Vector>, usize)> {
    let centre = prop::collection::vec(-5.0f64..5.0, dim);
    let noise = prop::collection::vec(prop::collection::vec(-0.5f64..0.5, dim), honest);
    let outliers = prop::collection::vec(prop::collection::vec(50.0f64..500.0, dim), byz);
    (centre, noise, outliers).prop_map(move |(centre, noise, outliers)| {
        let mut proposals: Vec<Vector> = noise
            .into_iter()
            .map(|n| {
                let v: Vec<f64> = centre.iter().zip(&n).map(|(c, x)| c + x).collect();
                Vector::from(v)
            })
            .collect();
        for o in outliers {
            // Outliers are pushed far away from the centre with random signs.
            let v: Vec<f64> = centre
                .iter()
                .zip(&o)
                .enumerate()
                .map(|(i, (c, x))| if i % 2 == 0 { c + x } else { c - x })
                .collect();
            proposals.push(Vector::from(v));
        }
        (proposals, honest)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn krum_selects_one_of_the_inputs((proposals, honest) in clustered_proposals(8, 3, 6)) {
        let n = proposals.len();
        let krum = Krum::new(n, 3).unwrap();
        let result = krum.aggregate_detailed(&proposals).unwrap();
        let idx = result.selected_index().unwrap();
        prop_assert!(idx < n);
        prop_assert_eq!(&result.value, &proposals[idx]);
        // With a tight honest cluster and far outliers, the selection is honest.
        prop_assert!(idx < honest, "Krum selected outlier {}", idx);
    }

    #[test]
    fn krum_is_translation_equivariant((proposals, _) in clustered_proposals(7, 2, 5),
                                        shift in prop::collection::vec(-10.0f64..10.0, 5)) {
        let n = proposals.len();
        let krum = Krum::new(n, 2).unwrap();
        let shift = Vector::from(shift);
        let shifted: Vec<Vector> = proposals.iter().map(|v| v + &shift).collect();
        let a = krum.aggregate_detailed(&proposals).unwrap();
        let b = krum.aggregate_detailed(&shifted).unwrap();
        // Same index selected, and the value shifts by exactly `shift`.
        prop_assert_eq!(a.selected_index(), b.selected_index());
        prop_assert!((&a.value + &shift).distance(&b.value) < 1e-9);
    }

    #[test]
    fn krum_scores_are_nonnegative_and_finite((proposals, _) in clustered_proposals(9, 2, 4)) {
        let krum = Krum::new(proposals.len(), 2).unwrap();
        let scores = krum.scores(&proposals).unwrap();
        prop_assert_eq!(scores.len(), proposals.len());
        prop_assert!(scores.iter().all(|s| *s >= 0.0 && s.is_finite()));
    }

    #[test]
    fn multi_krum_selected_set_excludes_far_outliers((proposals, honest) in clustered_proposals(9, 3, 5)) {
        let n = proposals.len();
        let mk = MultiKrum::new(n, 3, n - 3).unwrap();
        let result = mk.aggregate_detailed(&proposals).unwrap();
        prop_assert_eq!(result.selected.len(), n - 3);
        // At most the honest count can be selected from honest indices, but no
        // outlier should be among the selected set when outliers are extreme.
        prop_assert!(result.selected.iter().all(|&i| i < honest));
    }

    #[test]
    fn average_is_permutation_invariant((proposals, _) in clustered_proposals(6, 2, 4),
                                        seed in 0u64..1000) {
        use rand::seq::SliceRandom;
        use rand::SeedableRng;
        let avg = Average::new();
        let a = avg.aggregate(&proposals).unwrap();
        let mut shuffled = proposals.clone();
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        shuffled.shuffle(&mut rng);
        let b = avg.aggregate(&shuffled).unwrap();
        prop_assert!(a.distance(&b) < 1e-9);
    }

    #[test]
    fn mixing_rules_stay_in_the_coordinate_envelope((proposals, _) in clustered_proposals(7, 2, 3)) {
        let rules: Vec<Box<dyn Aggregator>> = vec![
            Box::new(Average::new()),
            Box::new(CoordinateWiseMedian::new()),
            Box::new(TrimmedMean::new(2)),
        ];
        for rule in rules {
            let out = rule.aggregate(&proposals).unwrap();
            for c in 0..out.dim() {
                let lo = proposals.iter().map(|v| v[c]).fold(f64::INFINITY, f64::min);
                let hi = proposals.iter().map(|v| v[c]).fold(f64::NEG_INFINITY, f64::max);
                prop_assert!(out[c] >= lo - 1e-9 && out[c] <= hi + 1e-9,
                    "rule {} left the envelope on coordinate {}", rule.name(), c);
            }
        }
    }

    #[test]
    fn median_and_trimmed_mean_ignore_extreme_outliers((proposals, honest) in clustered_proposals(9, 2, 4)) {
        // The honest centre coordinate-wise range is within [-5.5, 5.5]; the
        // robust mixing rules must stay close to it despite the outliers.
        let median = CoordinateWiseMedian::new().aggregate(&proposals).unwrap();
        let trimmed = TrimmedMean::new(2).aggregate(&proposals).unwrap();
        let honest_mean = Vector::mean_of(&proposals[..honest]).unwrap();
        prop_assert!(median.distance(&honest_mean) < 10.0);
        prop_assert!(trimmed.distance(&honest_mean) < 10.0);
    }

    #[test]
    fn closest_to_barycenter_picks_an_input((proposals, _) in clustered_proposals(6, 2, 4)) {
        let rule = ClosestToBarycenter::new();
        let result = rule.aggregate_detailed(&proposals).unwrap();
        let idx = result.selected_index().unwrap();
        prop_assert_eq!(&result.value, &proposals[idx]);
    }

    #[test]
    fn krum_agrees_with_definition_on_random_inputs(
        raw in prop::collection::vec(prop::collection::vec(-100.0f64..100.0, 4), 9)
    ) {
        // Independent re-implementation of Section 4's definition.
        let proposals: Vec<Vector> = raw.into_iter().map(Vector::from).collect();
        let n = proposals.len();
        let f = 2;
        let krum = Krum::new(n, f).unwrap();
        let got = krum.aggregate_detailed(&proposals).unwrap().selected_index().unwrap();
        let mut best = 0usize;
        let mut best_score = f64::INFINITY;
        for i in 0..n {
            let mut dists: Vec<f64> = (0..n)
                .filter(|&j| j != i)
                .map(|j| proposals[i].squared_distance(&proposals[j]))
                .collect();
            dists.sort_by(f64::total_cmp);
            let score: f64 = dists.iter().take(n - f - 2).sum();
            if score < best_score {
                best_score = score;
                best = i;
            }
        }
        prop_assert_eq!(got, best);
    }
}

#[test]
fn krum_and_multikrum_reject_invalid_configurations() {
    assert!(Krum::new(6, 2).is_err());
    assert!(Krum::new(7, 2).is_ok());
    assert!(MultiKrum::new(7, 2, 0).is_err());
    assert!(MultiKrum::new(7, 2, 6).is_err());
    assert!(MultiKrum::new(7, 2, 5).is_ok());
}
