//! Failure-injection and misuse tests: how the stack behaves when workers,
//! attacks or configurations are broken, and how the extension attacks
//! (alternating, Krum-aware) fare in full training runs.

use krum::aggregation::{build_aggregator, Aggregator, Average, Krum, RULE_NAMES};
use krum::attacks::{
    Alternating, Attack, AttackContext, AttackError, GaussianNoise, KrumAware, NoAttack, SignFlip,
};
use krum::dist::{ClusterSpec, LearningRateSchedule, SyncTrainer, TrainingConfig};
use krum::models::{GaussianEstimator, GradientEstimator, ModelError, QuadraticCost};
use krum::tensor::Vector;

fn quadratic_estimators(count: usize, dim: usize, sigma: f64) -> Vec<Box<dyn GradientEstimator>> {
    (0..count)
        .map(|_| {
            Box::new(
                GaussianEstimator::new(QuadraticCost::isotropic(Vector::zeros(dim), 0.0), sigma)
                    .unwrap(),
            ) as Box<dyn GradientEstimator>
        })
        .collect()
}

fn config(rounds: usize, dim: usize) -> TrainingConfig {
    TrainingConfig {
        rounds,
        schedule: LearningRateSchedule::Constant { gamma: 0.1 },
        seed: 77,
        eval_every: 10,
        known_optimum: Some(Vector::zeros(dim)),
    }
}

/// An estimator that returns NaN gradients after a configurable number of
/// calls — modelling a worker whose numerics blow up mid-training.
struct PoisonedEstimator {
    dim: usize,
    poison_after: std::sync::atomic::AtomicUsize,
}

impl PoisonedEstimator {
    fn new(dim: usize, poison_after: usize) -> Self {
        Self {
            dim,
            poison_after: std::sync::atomic::AtomicUsize::new(poison_after),
        }
    }
}

impl GradientEstimator for PoisonedEstimator {
    fn dim(&self) -> usize {
        self.dim
    }

    fn estimate(
        &self,
        params: &Vector,
        _rng: &mut dyn rand::RngCore,
    ) -> Result<Vector, ModelError> {
        let remaining = self
            .poison_after
            .fetch_update(
                std::sync::atomic::Ordering::SeqCst,
                std::sync::atomic::Ordering::SeqCst,
                |v| Some(v.saturating_sub(1)),
            )
            .unwrap_or(0);
        if remaining == 0 {
            Ok(Vector::filled(self.dim, f64::NAN))
        } else {
            Ok(params.clone())
        }
    }

    fn true_gradient(&self, params: &Vector) -> Option<Vector> {
        Some(params.clone())
    }

    fn loss(&self, params: &Vector) -> Option<f64> {
        Some(0.5 * params.squared_norm())
    }
}

#[test]
fn nan_gradients_become_structured_errors_not_silent_garbage() {
    // One honest worker starts emitting NaN after 5 rounds. Averaging would
    // propagate the NaN into the parameters and silently corrupt every later
    // round; the engine must refuse to step instead, naming the round and
    // the rule (and nothing panics).
    let dim = 6;
    let cluster = ClusterSpec::new(5, 0).unwrap();
    let mut estimators = quadratic_estimators(4, dim, 0.1);
    estimators.push(Box::new(PoisonedEstimator::new(dim, 5)));
    let mut trainer = SyncTrainer::new(
        cluster,
        Box::new(Average::new()),
        Box::new(NoAttack::new()),
        estimators,
        config(20, dim),
    )
    .unwrap();
    let err = trainer.run(Vector::filled(dim, 2.0)).unwrap_err();
    assert!(
        matches!(err, krum::dist::TrainError::PoisonedRound { round: 5, .. }),
        "expected a PoisonedRound error at round 5, got: {err}"
    );
    assert!(err.to_string().contains("average"));
}

#[test]
fn krum_filters_a_single_nan_worker() {
    // The same fault under Krum: a NaN proposal has NaN distances to everyone,
    // so its score is NaN and it never wins the minimisation (NaN comparisons
    // are ordered last by total_cmp-based sorting of neighbours); training
    // continues on finite parameters.
    let dim = 6;
    let cluster = ClusterSpec::new(7, 0).unwrap();
    let mut estimators = quadratic_estimators(6, dim, 0.1);
    estimators.push(Box::new(PoisonedEstimator::new(dim, 3)));
    let mut trainer = SyncTrainer::new(
        cluster,
        Box::new(Krum::new(7, 1).unwrap()),
        Box::new(NoAttack::new()),
        estimators,
        config(40, dim),
    )
    .unwrap();
    let (params, history) = trainer.run(Vector::filled(dim, 2.0)).unwrap();
    assert!(params.is_finite(), "Krum should keep the trajectory finite");
    assert!(!history.summary().diverged);
    assert!(params.norm() < 1.0, "‖x‖ = {}", params.norm());
}

/// An attack that deliberately returns the wrong number of vectors.
struct BrokenAttack;

impl Attack for BrokenAttack {
    fn forge(
        &self,
        _ctx: &AttackContext<'_>,
        _rng: &mut dyn rand::RngCore,
    ) -> Result<Vec<Vector>, AttackError> {
        Ok(vec![Vector::zeros(3)]) // always one vector, whatever f is
    }

    fn name(&self) -> String {
        "broken".into()
    }
}

#[test]
fn attacks_returning_the_wrong_count_are_rejected_not_trusted() {
    let dim = 3;
    let cluster = ClusterSpec::new(6, 2).unwrap();
    let mut trainer = SyncTrainer::new(
        cluster,
        Box::new(Average::new()),
        Box::new(BrokenAttack),
        quadratic_estimators(4, dim, 0.1),
        TrainingConfig {
            known_optimum: None,
            ..config(5, dim)
        },
    )
    .unwrap();
    let err = trainer.run(Vector::zeros(dim)).unwrap_err();
    assert!(err.to_string().contains("broken"));
}

#[test]
fn registry_driven_training_sweep_runs_every_rule() {
    // Every rule the registry knows can drive a short training run end-to-end.
    let dim = 8;
    for &spec in RULE_NAMES {
        // Bare `hierarchical` defaults to 4 Krum-in-Krum groups, so it
        // needs a cluster big enough for `2·⌈f/g⌉ + 2 < ⌊n/g⌋` to hold
        // inside every group.
        let (n, f) = if spec == "hierarchical" {
            (24, 3)
        } else {
            (9, 2)
        };
        let rule = build_aggregator(spec, n, f).unwrap();
        let cluster = ClusterSpec::new(n, f).unwrap();
        let mut trainer = SyncTrainer::new(
            cluster,
            rule,
            Box::new(GaussianNoise::new(50.0).unwrap()),
            quadratic_estimators(n - f, dim, 0.2),
            config(15, dim),
        )
        .unwrap();
        let (params, history) = trainer.run(Vector::filled(dim, 1.0)).unwrap();
        assert_eq!(history.len(), 15, "rule {spec}");
        // Robust rules make progress; even averaging stays finite under the
        // (zero-mean) Gaussian attack.
        assert!(
            params.is_finite(),
            "rule {spec} produced non-finite parameters"
        );
    }
}

#[test]
fn alternating_attack_is_survived_by_krum_but_not_by_averaging() {
    let dim = 20;
    let n = 13;
    let f = 3;
    let make_attack = || -> Box<dyn Attack> {
        Box::new(
            Alternating::new(
                vec![
                    Box::new(SignFlip::new(6.0).unwrap()),
                    Box::new(GaussianNoise::new(100.0).unwrap()),
                ],
                5,
            )
            .unwrap(),
        )
    };
    let run = |aggregator: Box<dyn Aggregator>| {
        let cluster = ClusterSpec::new(n, f).unwrap();
        let mut trainer = SyncTrainer::new(
            cluster,
            aggregator,
            make_attack(),
            quadratic_estimators(n - f, dim, 0.3),
            config(200, dim),
        )
        .unwrap();
        trainer.run(Vector::filled(dim, 3.0)).unwrap().0
    };
    let krum_params = run(Box::new(Krum::new(n, f).unwrap()));
    let avg_params = run(Box::new(Average::new()));
    assert!(
        krum_params.norm() < 1.0,
        "krum ‖x‖ = {}",
        krum_params.norm()
    );
    assert!(avg_params.norm() > 3.0 * krum_params.norm());
}

#[test]
fn krum_aware_attack_degrades_but_does_not_break_krum() {
    // The stealth attack biases Krum's trajectory (larger residual error than
    // the attack-free run) but cannot prevent convergence to a small basin —
    // consistent with Proposition 4.2: the forged vectors stay within the
    // honest spread, so the selected vector still points along the gradient.
    let dim = 20;
    let n = 13;
    let f = 3;
    let run = |attack: Box<dyn Attack>| {
        let cluster = ClusterSpec::new(n, f).unwrap();
        let mut trainer = SyncTrainer::new(
            cluster,
            Box::new(Krum::new(n, f).unwrap()),
            attack,
            quadratic_estimators(n - f, dim, 0.3),
            config(300, dim),
        )
        .unwrap();
        trainer.run(Vector::filled(dim, 3.0)).unwrap()
    };
    let (clean_params, _) = run(Box::new(NoAttack::new()));
    let (attacked_params, history) = run(Box::new(KrumAware::new(1.5).unwrap()));
    assert!(
        attacked_params.norm() < 2.0,
        "‖x‖ = {}",
        attacked_params.norm()
    );
    assert!(attacked_params.norm() >= clean_params.norm() * 0.5);
    // The stealth attack gets selected at least occasionally — that is its point.
    assert!(history.selection_stats().total() > 0);
}

#[test]
fn cluster_and_config_misuse_is_rejected_up_front() {
    let dim = 4;
    // f >= n.
    assert!(ClusterSpec::new(4, 4).is_err());
    // Zero rounds.
    let cluster = ClusterSpec::new(5, 1).unwrap();
    let bad = TrainingConfig {
        rounds: 0,
        ..config(1, dim)
    };
    assert!(SyncTrainer::new(
        cluster,
        Box::new(Average::new()),
        Box::new(NoAttack::new()),
        quadratic_estimators(4, dim, 0.1),
        bad,
    )
    .is_err());
    // Krum requiring more workers than the cluster has.
    assert!(Krum::new(5, 2).is_err());
    // Registry rejects a rule/cluster mismatch the same way.
    assert!(build_aggregator("krum", 5, 2).is_err());
}
