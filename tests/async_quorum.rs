//! Integration pins for the async partial-quorum execution strategy
//! (acceptance criteria of the async-quorum PR):
//!
//! * `AsyncQuorum` with `quorum = n` and zero latency reproduces the
//!   Sequential trajectory exactly;
//! * async trajectories are bit-identical across repeated runs of the same
//!   seed, including under a heavy-tailed network with timing-aware
//!   adversaries;
//! * the exported CSV carries well-formed quorum/staleness columns.

use krum::attacks::AttackSpec;
use krum::dist::{LatencyModel, NetworkModel};
use krum::metrics::RoundRecord;
use krum::models::EstimatorSpec;
use krum::scenario::{ScenarioBuilder, ScenarioReport};

fn base(n: usize, f: usize) -> ScenarioBuilder {
    ScenarioBuilder::new(n, f)
        .attack(AttackSpec::SignFlip { scale: 3.0 })
        .estimator(EstimatorSpec::GaussianQuadratic { dim: 6, sigma: 0.3 })
        .rounds(30)
        .eval_every(5)
        .seed(42)
        .init_fill(1.5)
}

fn zero_latency() -> NetworkModel {
    NetworkModel {
        latency: LatencyModel::Constant { nanos: 0 },
        nanos_per_byte: 0.0,
    }
}

fn heavy_tail() -> NetworkModel {
    NetworkModel {
        latency: LatencyModel::Pareto {
            min_nanos: 50_000,
            alpha: 1.1,
        },
        nanos_per_byte: 0.05,
    }
}

#[test]
fn full_quorum_zero_latency_reproduces_the_sequential_trajectory() {
    let sequential = base(9, 2).run().unwrap();
    let quorum = base(9, 2).async_quorum(9, 2, zero_latency()).run().unwrap();
    assert_eq!(quorum.final_params, sequential.final_params);
    assert_eq!(quorum.history.len(), sequential.history.len());
    for (a, b) in quorum.history.rounds.iter().zip(&sequential.history.rounds) {
        assert_eq!(a.aggregate_norm, b.aggregate_norm);
        assert_eq!(a.selected_worker, b.selected_worker);
        assert_eq!(a.distance_to_optimum, b.distance_to_optimum);
        assert_eq!(a.loss, b.loss);
    }
}

#[test]
fn async_trajectories_are_bit_identical_across_repeated_runs() {
    let run = || -> ScenarioReport {
        base(11, 2)
            .attack(AttackSpec::Straggler { scale: 3.0 })
            .async_quorum(9, 2, heavy_tail())
            .run()
            .unwrap()
    };
    let a = run();
    let b = run();
    assert_eq!(a.final_params, b.final_params);
    for (x, y) in a.history.rounds.iter().zip(&b.history.rounds) {
        assert_eq!(x.aggregate_norm, y.aggregate_norm);
        assert_eq!(x.selected_worker, y.selected_worker);
        assert_eq!(x.network_nanos, y.network_nanos);
        assert_eq!(x.quorum_size, y.quorum_size);
        assert_eq!(x.stale_in_quorum, y.stale_in_quorum);
        assert_eq!(x.dropped_stale, y.dropped_stale);
        assert_eq!(x.pending_carryover, y.pending_carryover);
    }
}

#[test]
fn async_csv_export_has_well_formed_staleness_columns() {
    let report = base(9, 2)
        .attack(AttackSpec::LastToRespond { scale: 2.0 })
        .async_quorum(7, 2, heavy_tail())
        .run()
        .unwrap();
    let csv = report.to_csv();
    let lines: Vec<&str> = csv.lines().filter(|l| !l.starts_with('#')).collect();
    let header: Vec<&str> = lines[0].split(',').collect();
    let expected_cells = RoundRecord::csv_header().split(',').count();
    for column in [
        "quorum_size",
        "stale_in_quorum",
        "max_staleness_in_quorum",
        "dropped_stale",
        "pending_carryover",
    ] {
        assert!(header.contains(&column), "missing column {column}");
    }
    let quorum_at = header.iter().position(|&c| c == "quorum_size").unwrap();
    for row in &lines[1..] {
        let cells: Vec<&str> = row.split(',').collect();
        assert_eq!(cells.len(), expected_cells, "row: {row}");
        // Under async execution every row records its quorum size, and it
        // parses as the configured quorum.
        assert_eq!(cells[quorum_at].parse::<usize>().unwrap(), 7, "row: {row}");
    }
    // The last-to-respond adversary is in every quorum; Krum still holds.
    let stats = report.history.selection_stats();
    assert!(stats.total() > 0);
    assert!(report.final_params.is_finite());
}
