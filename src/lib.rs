//! # krum
//!
//! Facade crate for the reproduction of *Brief Announcement: Byzantine-Tolerant
//! Machine Learning* (Blanchard, El Mhamdi, Guerraoui, Stainer — PODC 2017),
//! better known as the **Krum** aggregation rule for distributed SGD.
//!
//! The reproduction is split into focused crates; this facade re-exports their
//! public APIs under one roof so examples and downstream users can depend on a
//! single crate.
//!
//! | Module | Backing crate | Contents |
//! |--------|---------------|----------|
//! | [`tensor`] | `krum-tensor` | dense vectors/matrices, RNG init, statistics |
//! | [`data`] | `krum-data` | synthetic datasets and batching |
//! | [`models`] | `krum-models` | linear/logistic/softmax/MLP models and losses |
//! | [`aggregation`] | `krum-core` | Krum, Multi-Krum and baseline aggregation rules |
//! | [`attacks`] | `krum-attacks` | Byzantine worker strategies |
//! | [`dist`] | `krum-dist` | synchronous parameter-server simulator |
//! | [`metrics`] | `krum-metrics` | round records, histories, exporters |
//! | [`scenario`] | `krum-scenario` | declarative experiment specs, builder and runner |
//! | [`wire`] | `krum-wire` | length-framed binary wire protocol |
//! | [`server`] | `krum-server` | networked aggregation service, worker client, loopback |
//!
//! ## Quickstart
//!
//! ```
//! use krum::aggregation::{Aggregator, Krum};
//! use krum::tensor::Vector;
//!
//! // 7 workers, 2 of them Byzantine, gradients in R^3.
//! let honest = vec![
//!     Vector::from(vec![1.0, 0.0, 0.1]),
//!     Vector::from(vec![0.9, 0.1, 0.0]),
//!     Vector::from(vec![1.1, -0.1, 0.0]),
//!     Vector::from(vec![1.0, 0.1, -0.1]),
//!     Vector::from(vec![0.95, 0.0, 0.05]),
//! ];
//! let mut proposals = honest.clone();
//! proposals.push(Vector::from(vec![-100.0, 50.0, 80.0])); // Byzantine
//! proposals.push(Vector::from(vec![77.0, -3.0, 12.0]));   // Byzantine
//!
//! let krum = Krum::new(7, 2).unwrap();
//! let chosen = krum.aggregate(&proposals).unwrap();
//! // Krum selects one of the honest proposals, never the outliers.
//! assert!(honest.contains(&chosen));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Dense linear algebra (re-export of `krum-tensor`).
pub mod tensor {
    pub use krum_tensor::*;
}

/// Synthetic datasets and batching (re-export of `krum-data`).
pub mod data {
    pub use krum_data::*;
}

/// Learning models, losses and gradients (re-export of `krum-models`).
pub mod models {
    pub use krum_models::*;
}

/// Aggregation rules: Krum, Multi-Krum and baselines (re-export of `krum-core`).
pub mod aggregation {
    pub use krum_core::*;
}

/// Byzantine attack strategies (re-export of `krum-attacks`).
pub mod attacks {
    pub use krum_attacks::*;
}

/// Synchronous distributed-SGD simulator (re-export of `krum-dist`).
pub mod dist {
    pub use krum_dist::*;
}

/// Metrics, histories and exporters (re-export of `krum-metrics`).
pub mod metrics {
    pub use krum_metrics::*;
}

/// Declarative scenario specs, builder and runner (re-export of
/// `krum-scenario`).
pub mod scenario {
    pub use krum_scenario::*;
}

/// The length-framed binary wire protocol (re-export of `krum-wire`).
pub mod wire {
    pub use krum_wire::*;
}

/// The networked aggregation service: server, worker client and the
/// one-process loopback harness (re-export of `krum-server`).
pub mod server {
    pub use krum_server::*;
}

/// Commonly used items across the whole reproduction.
pub mod prelude {
    pub use krum_attacks::prelude::*;
    pub use krum_core::prelude::*;
    pub use krum_data::prelude::*;
    pub use krum_dist::prelude::*;
    pub use krum_metrics::prelude::*;
    pub use krum_models::prelude::*;
    pub use krum_scenario::prelude::*;
    pub use krum_tensor::prelude::*;
}
